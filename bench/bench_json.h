// Shared helper for the machine-readable benchmark records behind
// BENCH_8.json. Each bench appends {bench, metric, value, threads} lines to
// the JSONL file named by DASPOS_BENCH_JSON (tools/bench.sh assembles them
// into the committed JSON array); without the variable the records are
// silently skipped so interactive runs stay side-effect free.
#ifndef DASPOS_BENCH_BENCH_JSON_H_
#define DASPOS_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace daspos_bench {

inline void AppendBenchJson(const std::string& bench,
                            const std::string& metric, double value,
                            int threads) {
  const char* path = std::getenv("DASPOS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) return;
  std::fprintf(file,
               "{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6f, "
               "\"threads\": %d}\n",
               bench.c_str(), metric.c_str(), value, threads);
  std::fclose(file);
}

/// Positive integer from the environment, or `fallback`. Lets bench.sh
/// --smoke shrink problem sizes without a rebuild.
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace daspos_bench

#endif  // DASPOS_BENCH_BENCH_JSON_H_
