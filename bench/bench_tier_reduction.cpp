// E2 — the §3.2 tier-reduction narrative: RAW -> RECO -> AOD ->
// skim/slim derived formats. Regenerates the per-tier size table (bytes per
// event, step reduction factor, cumulative reduction) and measures the
// throughput of each processing step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "conditions/store.h"
#include "event/pdg.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/threadpool.h"
#include "tiers/dataset.h"
#include "workflow/steps.h"

using namespace daspos;

namespace {

constexpr int kEvents = 150;
constexpr uint32_t kRun = 7;

struct ChainOutput {
  WorkflowContext context;
  ConditionsDb conditions;
};

/// Runs the full chain once; the context holds every tier's blob.
std::unique_ptr<ChainOutput> RunChain(double pileup) {
  auto out = std::make_unique<ChainOutput>();
  CalibrationSet calib;
  (void)out->conditions.Append(kCalibrationTag, 1, calib.ToPayload());
  out->context.set_conditions(&out->conditions);

  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 11;
  gen_config.pileup_mean = pileup;
  SimulationConfig sim_config;
  sim_config.seed = 12;

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, kEvents, "gen"), {},
      "gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, kRun, "raw"), {"gen"},
      "raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("aod"), {"reco"},
                         "aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "derived"),
      {"aod"}, "derived");
  auto report = workflow.Execute(&out->context);
  if (!report.ok()) {
    std::fprintf(stderr, "chain failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return out;
}

void BM_ChainStep(benchmark::State& state) {
  // Times one named step in isolation (inputs prepared once).
  static std::unique_ptr<ChainOutput> chain = RunChain(5.0);
  const char* steps[] = {"generation", "simulation", "reconstruction",
                         "aod_reduction", "derivation"};
  const char* inputs[] = {"", "gen", "raw", "reco", "aod"};
  int index = static_cast<int>(state.range(0));

  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 11;
  gen_config.pileup_mean = 5.0;
  SimulationConfig sim_config;
  sim_config.seed = 12;

  std::shared_ptr<WorkflowStep> step;
  switch (index) {
    case 0:
      step = std::make_shared<GenerationStep>(gen_config, kEvents, "x");
      break;
    case 1:
      step = std::make_shared<SimulationStep>(sim_config, kRun, "x");
      break;
    case 2:
      step = std::make_shared<ReconstructionStep>(sim_config.geometry, "x");
      break;
    case 3:
      step = std::make_shared<AodReductionStep>("x");
      break;
    default:
      step = std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "x");
  }
  std::vector<std::string_view> step_inputs;
  if (index > 0) {
    step_inputs.push_back(*chain->context.GetDataset(inputs[index]));
  }
  for (auto _ : state) {
    auto result = step->Run(step_inputs, &chain->context);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
  state.SetLabel(steps[index]);
}
BENCHMARK(BM_ChainStep)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void PrintReductionTable(double pileup) {
  auto chain = RunChain(pileup);
  struct TierRow {
    const char* tier;
    const char* dataset;
  };
  TierRow rows[] = {{"GEN", "gen"},
                    {"RAW", "raw"},
                    {"RECO", "reco"},
                    {"AOD", "aod"},
                    {"DERIVED (skim+slim)", "derived"}};
  TextTable table;
  char title[128];
  std::snprintf(title, sizeof(title),
                "\nTier reduction, Z->mumu, %d events, pileup mu=%.0f:",
                kEvents, pileup);
  table.SetTitle(title);
  table.SetHeader({"tier", "total", "bytes/event", "step factor",
                   "cumulative vs RAW"});
  uint64_t raw_size = chain->context.GetDataset("raw")->size();
  uint64_t previous = 0;
  for (const TierRow& row : rows) {
    uint64_t size = chain->context.GetDataset(row.dataset)->size();
    std::string factor = "-";
    if (previous > 0) {
      factor = FormatDouble(static_cast<double>(previous) / static_cast<double>(size), 3) + "x";
    }
    std::string cumulative =
        std::string(row.dataset) == "gen"
            ? "-"
            : FormatDouble(static_cast<double>(raw_size) / static_cast<double>(size), 3) + "x";
    table.AddRow({row.tier, FormatBytes(size),
                  FormatBytes(size / kEvents), factor, cumulative});
    previous = size;
  }
  std::printf("%s\n", table.Render().c_str());
}

/// Intra-step parallelism over the reduction pipeline (PR 4): the
/// RAW -> RECO -> AOD -> derived steps re-run against a shared worker pool
/// via the workflow context, timing the pipeline at several widths and
/// digest-checking that every width produces the same derived blob.
bool PrintParallelReduction() {
  int n = daspos_bench::EnvInt("DASPOS_BENCH_EVENTS", 2000);

  // One serial pass prepares the RAW input (generation is stateful RNG and
  // stays serial by design).
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 11;
  gen_config.pileup_mean = 10.0;
  SimulationConfig sim_config;
  sim_config.seed = 12;
  GenerationStep generation(gen_config, static_cast<size_t>(n), "gen");
  SimulationStep simulation(sim_config, kRun, "raw");
  ReconstructionStep reconstruction(sim_config.geometry, "reco");
  AodReductionStep aod_reduction("aod");
  DerivationStep derivation(SkimSpec::RequireObjects(ObjectType::kMuon, 2,
                                                     15.0),
                            SlimSpec::LeptonsOnly(15.0), "derived");

  ConditionsDb conditions;
  CalibrationSet calib;
  (void)conditions.Append(kCalibrationTag, 1, calib.ToPayload());
  WorkflowContext context;
  context.set_conditions(&conditions);
  auto gen_blob = generation.Run({}, &context);
  if (!gen_blob.ok()) return false;
  auto raw_blob = simulation.Run({*gen_blob}, &context);
  if (!raw_blob.ok()) return false;

  auto run_pipeline = [&](ThreadPool* pool) {
    context.set_worker_pool(pool);
    double best_ms = 0.0;
    std::string derived;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto reco = reconstruction.Run({*raw_blob}, &context);
      if (!reco.ok()) {
        std::fprintf(stderr, "reconstruction failed: %s\n",
                     reco.status().ToString().c_str());
        std::exit(1);
      }
      auto aod = aod_reduction.Run({*reco}, &context);
      if (!aod.ok()) {
        std::fprintf(stderr, "aod reduction failed: %s\n",
                     aod.status().ToString().c_str());
        std::exit(1);
      }
      auto result = derivation.Run({*aod}, &context);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!result.ok()) {
        std::fprintf(stderr, "derivation failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      derived = std::move(*result);
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    context.set_worker_pool(nullptr);
    return std::make_pair(best_ms, Sha256::HashHex(derived));
  };

  auto [serial_ms, serial_digest] = run_pipeline(nullptr);
  daspos_bench::AppendBenchJson("bench_tier_reduction", "reduction_ms",
                                serial_ms, 1);
  TextTable table;
  table.SetTitle("\nParallel tier reduction (RAW->RECO->AOD->derived, " +
                 std::to_string(n) + " events, byte-identical output):");
  table.SetHeader({"threads", "wall ms", "speedup", "derived digest"});
  table.AddRow({"1 (serial)", FormatDouble(serial_ms, 2), "1.00",
                serial_digest.substr(0, 12)});
  bool deterministic = true;
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto [ms, digest] = run_pipeline(&pool);
    double speedup = serial_ms / ms;
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(speedup, 2), digest.substr(0, 12)});
    daspos_bench::AppendBenchJson("bench_tier_reduction", "reduction_ms", ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_tier_reduction",
                                  "speedup_vs_serial", speedup,
                                  static_cast<int>(threads));
    if (digest != serial_digest) deterministic = false;
  }
  std::printf("%s\n", table.Render().c_str());
  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_tier_reduction: parallel output diverged!\n");
  }
  return deterministic;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E2: data-tier reduction chain (RAW->RECO->AOD->derived) "
              "====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintReductionTable(/*pileup=*/0.0);
  PrintReductionTable(/*pileup=*/20.0);
  std::printf(
      "Shape to reproduce (§3.2): RAW is the largest tier; AOD keeps only\n"
      "refined objects; skimming+slimming shrink it further; pileup inflates\n"
      "RAW/RECO far more than AOD/derived.\n");
  return PrintParallelReduction() ? 0 : 1;
}
