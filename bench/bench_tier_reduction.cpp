// E2 — the §3.2 tier-reduction narrative: RAW -> RECO -> AOD ->
// skim/slim derived formats. Regenerates the per-tier size table (bytes per
// event, step reduction factor, cumulative reduction) and measures the
// throughput of each processing step.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "conditions/store.h"
#include "event/pdg.h"
#include "support/strings.h"
#include "support/table.h"
#include "tiers/dataset.h"
#include "workflow/steps.h"

using namespace daspos;

namespace {

constexpr int kEvents = 150;
constexpr uint32_t kRun = 7;

struct ChainOutput {
  WorkflowContext context;
  ConditionsDb conditions;
};

/// Runs the full chain once; the context holds every tier's blob.
std::unique_ptr<ChainOutput> RunChain(double pileup) {
  auto out = std::make_unique<ChainOutput>();
  CalibrationSet calib;
  (void)out->conditions.Append(kCalibrationTag, 1, calib.ToPayload());
  out->context.set_conditions(&out->conditions);

  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 11;
  gen_config.pileup_mean = pileup;
  SimulationConfig sim_config;
  sim_config.seed = 12;

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, kEvents, "gen"), {},
      "gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, kRun, "raw"), {"gen"},
      "raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("aod"), {"reco"},
                         "aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "derived"),
      {"aod"}, "derived");
  auto report = workflow.Execute(&out->context);
  if (!report.ok()) {
    std::fprintf(stderr, "chain failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return out;
}

void BM_ChainStep(benchmark::State& state) {
  // Times one named step in isolation (inputs prepared once).
  static std::unique_ptr<ChainOutput> chain = RunChain(5.0);
  const char* steps[] = {"generation", "simulation", "reconstruction",
                         "aod_reduction", "derivation"};
  const char* inputs[] = {"", "gen", "raw", "reco", "aod"};
  int index = static_cast<int>(state.range(0));

  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 11;
  gen_config.pileup_mean = 5.0;
  SimulationConfig sim_config;
  sim_config.seed = 12;

  std::shared_ptr<WorkflowStep> step;
  switch (index) {
    case 0:
      step = std::make_shared<GenerationStep>(gen_config, kEvents, "x");
      break;
    case 1:
      step = std::make_shared<SimulationStep>(sim_config, kRun, "x");
      break;
    case 2:
      step = std::make_shared<ReconstructionStep>(sim_config.geometry, "x");
      break;
    case 3:
      step = std::make_shared<AodReductionStep>("x");
      break;
    default:
      step = std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "x");
  }
  std::vector<std::string_view> step_inputs;
  if (index > 0) {
    step_inputs.push_back(*chain->context.GetDataset(inputs[index]));
  }
  for (auto _ : state) {
    auto result = step->Run(step_inputs, &chain->context);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
  state.SetLabel(steps[index]);
}
BENCHMARK(BM_ChainStep)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void PrintReductionTable(double pileup) {
  auto chain = RunChain(pileup);
  struct TierRow {
    const char* tier;
    const char* dataset;
  };
  TierRow rows[] = {{"GEN", "gen"},
                    {"RAW", "raw"},
                    {"RECO", "reco"},
                    {"AOD", "aod"},
                    {"DERIVED (skim+slim)", "derived"}};
  TextTable table;
  char title[128];
  std::snprintf(title, sizeof(title),
                "\nTier reduction, Z->mumu, %d events, pileup mu=%.0f:",
                kEvents, pileup);
  table.SetTitle(title);
  table.SetHeader({"tier", "total", "bytes/event", "step factor",
                   "cumulative vs RAW"});
  uint64_t raw_size = chain->context.GetDataset("raw")->size();
  uint64_t previous = 0;
  for (const TierRow& row : rows) {
    uint64_t size = chain->context.GetDataset(row.dataset)->size();
    std::string factor = "-";
    if (previous > 0) {
      factor = FormatDouble(static_cast<double>(previous) / static_cast<double>(size), 3) + "x";
    }
    std::string cumulative =
        std::string(row.dataset) == "gen"
            ? "-"
            : FormatDouble(static_cast<double>(raw_size) / static_cast<double>(size), 3) + "x";
    table.AddRow({row.tier, FormatBytes(size),
                  FormatBytes(size / kEvents), factor, cumulative});
    previous = size;
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E2: data-tier reduction chain (RAW->RECO->AOD->derived) "
              "====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintReductionTable(/*pileup=*/0.0);
  PrintReductionTable(/*pileup=*/20.0);
  std::printf(
      "Shape to reproduce (§3.2): RAW is the largest tier; AOD keeps only\n"
      "refined objects; skimming+slimming shrink it further; pileup inflates\n"
      "RAW/RECO far more than AOD/derived.\n");
  return 0;
}
