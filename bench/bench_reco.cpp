// E8 — the Reconstruction step of §3.2: per-stage throughput (tracking,
// clustering, full reconstruction) across physics processes and pileup
// levels, with the physics yield counters that make the numbers meaningful.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.h"
#include "detsim/simulation.h"
#include "event/pdg.h"
#include "mc/generator.h"
#include "reco/clustering.h"
#include "reco/reconstruction.h"
#include "reco/tracking.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/threadpool.h"

using namespace daspos;

namespace {

std::vector<RawEvent> MakeRawSample(Process process, double pileup, int n) {
  GeneratorConfig gen_config;
  gen_config.process = process;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.pileup_mean = pileup;
  gen_config.seed = 77;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = 78;
  DetectorSimulation simulation(sim_config);
  std::vector<RawEvent> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(simulation.Simulate(generator.Generate(), 1));
  }
  return out;
}

ReconstructionConfig DefaultReco() {
  SimulationConfig sim_config;
  ReconstructionConfig config;
  config.geometry = sim_config.geometry;
  config.calib = sim_config.calib;
  return config;
}

void BM_Tracking(benchmark::State& state) {
  double pileup = static_cast<double>(state.range(0));
  auto sample = MakeRawSample(Process::kZToLL, pileup, 20);
  ReconstructionConfig config = DefaultReco();
  TrackFinder finder(config.geometry, config.calib);
  size_t index = 0;
  for (auto _ : state) {
    auto tracks = finder.FindTracks(sample[index % sample.size()]);
    ++index;
    benchmark::DoNotOptimize(tracks);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("pileup mu=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Tracking)->Arg(0)->Arg(20)->Arg(50);

void BM_Clustering(benchmark::State& state) {
  auto sample = MakeRawSample(Process::kQcdDijet, 20.0, 20);
  ReconstructionConfig config = DefaultReco();
  CaloClusterer clusterer(config.geometry, config.calib);
  size_t index = 0;
  for (auto _ : state) {
    auto clusters = clusterer.Cluster(sample[index % sample.size()]);
    ++index;
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Clustering);

void BM_FullReconstruction(benchmark::State& state) {
  Process process = static_cast<Process>(state.range(0));
  auto sample = MakeRawSample(process, 10.0, 20);
  Reconstructor reconstructor(DefaultReco());
  size_t index = 0;
  for (auto _ : state) {
    RecoEvent event = reconstructor.Reconstruct(sample[index % sample.size()]);
    ++index;
    benchmark::DoNotOptimize(event);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(GetProcessInfo(process).name);
}
BENCHMARK(BM_FullReconstruction)
    ->Arg(static_cast<int>(Process::kMinimumBias))
    ->Arg(static_cast<int>(Process::kZToLL))
    ->Arg(static_cast<int>(Process::kQcdDijet));

void PrintYields() {
  TextTable table;
  table.SetTitle("\nReconstruction yields (20 events each, pileup mu=10):");
  table.SetHeader({"process", "raw hits/evt", "tracks/evt", "clusters/evt",
                   "objects/evt", "vertices/evt"});
  Reconstructor reconstructor(DefaultReco());
  for (Process process : {Process::kMinimumBias, Process::kZToLL,
                          Process::kWToLNu, Process::kQcdDijet,
                          Process::kHiggsToGammaGamma}) {
    auto sample = MakeRawSample(process, 10.0, 20);
    double hits = 0.0;
    double tracks = 0.0;
    double clusters = 0.0;
    double objects = 0.0;
    double vertices = 0.0;
    for (const RawEvent& raw : sample) {
      RecoEvent event = reconstructor.Reconstruct(raw);
      hits += static_cast<double>(raw.hits.size());
      tracks += static_cast<double>(event.tracks.size());
      clusters += static_cast<double>(event.clusters.size());
      objects += static_cast<double>(event.objects.size());
      vertices += event.vertex_count;
    }
    double n = static_cast<double>(sample.size());
    table.AddRow({GetProcessInfo(process).name, FormatDouble(hits / n, 4),
                  FormatDouble(tracks / n, 3), FormatDouble(clusters / n, 3),
                  FormatDouble(objects / n, 3),
                  FormatDouble(vertices / n, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape to reproduce (§3.2): reconstruction converts raw channel data\n"
      "into recognizable objects, then refined candidates; cost scales with\n"
      "occupancy (pileup), which the tracking benchmark sweep shows.\n");
}

std::string RecoDigest(const std::vector<RecoEvent>& events) {
  Sha256 hasher;
  for (const RecoEvent& event : events) hasher.Update(event.ToRecord());
  return hasher.HexDigest();
}

/// Intra-step data parallelism (PR 4): ReconstructAll over a shared pool vs
/// the serial loop, with a digest check proving the parallel output is
/// byte-identical at every width. Returns false if determinism is broken.
bool PrintParallelScaling() {
  int n = daspos_bench::EnvInt("DASPOS_BENCH_EVENTS", 2000);
  auto sample = MakeRawSample(Process::kZToLL, 10.0, n);
  Reconstructor reconstructor(DefaultReco());

  auto time_run = [&](ThreadPool* pool) {
    double best_ms = 0.0;
    std::vector<RecoEvent> out;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      out = reconstructor.ReconstructAll(sample, pool);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return std::make_pair(best_ms, RecoDigest(out));
  };

  auto [serial_ms, serial_digest] = time_run(nullptr);
  daspos_bench::AppendBenchJson("bench_reco", "reconstruct_ms", serial_ms, 1);
  daspos_bench::AppendBenchJson("bench_reco", "events_per_s",
                                1000.0 * n / serial_ms, 1);

  TextTable table;
  table.SetTitle("\nIntra-step parallel reconstruction (" +
                 std::to_string(n) + " events, byte-identical output):");
  table.SetHeader({"threads", "wall ms", "events/s", "speedup", "digest"});
  table.AddRow({"1 (serial)", FormatDouble(serial_ms, 2),
                FormatDouble(1000.0 * n / serial_ms, 1), "1.00",
                serial_digest.substr(0, 12)});
  bool deterministic = true;
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto [ms, digest] = time_run(&pool);
    double speedup = serial_ms / ms;
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(1000.0 * n / ms, 1),
                  FormatDouble(speedup, 2), digest.substr(0, 12)});
    daspos_bench::AppendBenchJson("bench_reco", "reconstruct_ms", ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_reco", "events_per_s",
                                  1000.0 * n / ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_reco", "speedup_vs_serial", speedup,
                                  static_cast<int>(threads));
    if (digest != serial_digest) deterministic = false;
  }
  std::printf("%s\n", table.Render().c_str());
  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_reco: parallel output diverged from serial!\n");
  }
  return deterministic;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E8: reconstruction throughput and yields ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintYields();
  return PrintParallelScaling() ? 0 : 1;
}
