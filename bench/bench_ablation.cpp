// Ablations of the design choices DESIGN.md calls out:
//   A1 — container fixity verification: the cost of the SHA-256 footer
//        check on every open (the price of trustworthy preservation);
//   A2 — tracking road/fit parameters: minimum hit count vs efficiency,
//        fake rate, and CPU (why min_hits defaults to 5);
//   A3 — provenance granularity: serialized store size vs chain depth.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "mc/generator.h"
#include "reco/tracking.h"
#include "serialize/container.h"
#include "support/strings.h"
#include "support/table.h"
#include "tiers/dataset.h"
#include "workflow/provenance.h"

using namespace daspos;

namespace {

// --------------------------------------------------- A1: fixity at open --

std::string BigContainer() {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 3;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "ablation";
  return WriteGenDataset(info, generator.GenerateMany(400));
}

void BM_OpenVerified(benchmark::State& state) {
  std::string blob = BigContainer();
  for (auto _ : state) {
    auto reader = ContainerReader::Open(blob);
    benchmark::DoNotOptimize(reader);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel("fixity verified");
}
BENCHMARK(BM_OpenVerified);

void BM_OpenUnverified(benchmark::State& state) {
  std::string blob = BigContainer();
  for (auto _ : state) {
    auto reader = ContainerReader::OpenUnverified(blob);
    benchmark::DoNotOptimize(reader);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel("fixity skipped");
}
BENCHMARK(BM_OpenUnverified);

// ------------------------------------------- A2: tracking configuration --

void BM_TrackingMinHits(benchmark::State& state) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.pileup_mean = 20.0;
  gen_config.seed = 4;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = 5;
  DetectorSimulation simulation(sim_config);
  std::vector<RawEvent> sample;
  for (int i = 0; i < 10; ++i) {
    sample.push_back(simulation.Simulate(generator.Generate(), 1));
  }
  TrackingConfig tracking;
  tracking.min_hits = static_cast<int>(state.range(0));
  TrackFinder finder(sim_config.geometry, sim_config.calib, tracking);
  size_t index = 0;
  for (auto _ : state) {
    auto tracks = finder.FindTracks(sample[index % sample.size()]);
    ++index;
    benchmark::DoNotOptimize(tracks);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("min_hits=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TrackingMinHits)->Arg(4)->Arg(5)->Arg(7)->Arg(9);

void PrintTrackingAblation() {
  // Single isolated muons: efficiency; pure-noise + pileup events: fakes.
  SimulationConfig sim_config;
  sim_config.seed = 6;
  sim_config.noise_cells_mean = 0.0;
  DetectorSimulation sim(sim_config);

  TextTable table;
  table.SetTitle("\nA2: tracking min_hits sweep (100 single muons; 30 "
                 "pileup-only events):");
  table.SetHeader({"min_hits", "muon efficiency", "tracks per pileup event "
                   "(mu=20, incl. real soft tracks)"});
  for (int min_hits : {3, 4, 5, 7, 9}) {
    TrackingConfig tracking;
    tracking.min_hits = min_hits;
    TrackFinder finder(sim_config.geometry, sim_config.calib, tracking);

    int found = 0;
    for (int i = 0; i < 100; ++i) {
      GenEvent truth;
      truth.event_number = static_cast<uint64_t>(1000 + i);
      GenParticle mu;
      mu.pdg_id = pdg::kMuon;
      mu.status = 1;
      mu.momentum = FourVector::FromPtEtaPhiM(20.0 + i * 0.3, 0.4, 1.0,
                                              0.105);
      truth.particles.push_back(mu);
      if (!finder.FindTracks(sim.Simulate(truth, 1)).empty()) ++found;
    }

    GeneratorConfig pileup_config;
    pileup_config.process = Process::kMinimumBias;
    pileup_config.pileup_mean = 20.0;
    pileup_config.seed = 7;
    EventGenerator pileup(pileup_config);
    double pileup_tracks = 0.0;
    for (int i = 0; i < 30; ++i) {
      pileup_tracks += static_cast<double>(
          finder.FindTracks(sim.Simulate(pileup.Generate(), 1)).size());
    }
    table.AddRow({std::to_string(min_hits),
                  FormatDouble(found / 100.0, 3),
                  FormatDouble(pileup_tracks / 30.0, 4)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "Loose road requirements admit combinatorial fakes in dense events;\n"
      "tight ones lose hit-starved tracks — min_hits=5 balances both.\n");
}

// ----------------------------------------- A3: provenance store scaling --

void PrintProvenanceScaling() {
  TextTable table;
  table.SetTitle("\nA3: provenance store size vs chain depth:");
  table.SetHeader({"chain depth", "records", "serialized size"});
  for (int depth : {5, 20, 100}) {
    ProvenanceStore store;
    for (int i = 0; i < depth; ++i) {
      ProvenanceRecord record;
      record.dataset = "dataset_" + std::to_string(i);
      record.producer = "step";
      record.producer_version = "1";
      record.config = Json::Object();
      record.config["parameter"] = i;
      record.config_hash = std::string(64, 'a');
      if (i > 0) {
        record.parents = {"dataset_" + std::to_string(i - 1)};
      }
      (void)store.Add(std::move(record));
    }
    table.AddRow({std::to_string(depth), std::to_string(store.size()),
                  FormatBytes(store.Serialize().size())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Linear growth, ~0.3 KiB per step: provenance depth is never\n"
              "the reason to skip capture.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== Ablations: fixity cost, tracking parameters, provenance "
              "scaling ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTrackingAblation();
  PrintProvenanceScaling();
  return 0;
}
