// E7 — the §3.2 constants-handling split: database access from processing
// (most experiments) vs Alice-style text-file snapshots shipped with the
// data. Measures lookup throughput of both backends, verifies payload
// equivalence at the captured run, and prices snapshot capture/parse (the
// portability cost).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "detsim/calib.h"
#include "support/strings.h"
#include "support/table.h"

using namespace daspos;

namespace {

/// A database with many tags and calibration epochs, like a real
/// experiment's conditions service.
ConditionsDb PopulatedDb(int tags, int epochs) {
  ConditionsDb db;
  for (int tag = 0; tag < tags; ++tag) {
    std::string name = "calib/subsystem" + std::to_string(tag);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      CalibrationSet calib;
      calib.version = static_cast<uint32_t>(epoch + 1);
      calib.ecal_gain = 0.02 + 1e-4 * epoch;
      (void)db.Append(name, static_cast<uint32_t>(1 + 100 * epoch),
                      calib.ToPayload());
    }
  }
  return db;
}

void BM_DbLookup(benchmark::State& state) {
  ConditionsDb db = PopulatedDb(20, static_cast<int>(state.range(0)));
  uint32_t run = 0;
  for (auto _ : state) {
    run = (run + 37) % 2000 + 1;
    auto payload = db.GetPayload("calib/subsystem7", run);
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::to_string(state.range(0)) + " IOV epochs");
}
BENCHMARK(BM_DbLookup)->Arg(4)->Arg(64);

void BM_SnapshotLookup(benchmark::State& state) {
  ConditionsDb db = PopulatedDb(20, 8);
  std::vector<std::string> tags = db.Tags();
  auto snapshot = ConditionsSnapshot::Capture(db, 250, tags);
  for (auto _ : state) {
    auto payload = snapshot->GetPayload("calib/subsystem7", 250);
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("text-file snapshot");
}
BENCHMARK(BM_SnapshotLookup);

void BM_SnapshotCapture(benchmark::State& state) {
  ConditionsDb db = PopulatedDb(static_cast<int>(state.range(0)), 8);
  std::vector<std::string> tags = db.Tags();
  for (auto _ : state) {
    auto snapshot = ConditionsSnapshot::Capture(db, 250, tags);
    std::string text = snapshot->Serialize();
    benchmark::DoNotOptimize(text);
  }
  state.SetLabel(std::to_string(state.range(0)) + " tags");
}
BENCHMARK(BM_SnapshotCapture)->Arg(5)->Arg(50);

void BM_SnapshotParse(benchmark::State& state) {
  ConditionsDb db = PopulatedDb(20, 8);
  std::vector<std::string> tags = db.Tags();
  std::string text = ConditionsSnapshot::Capture(db, 250, tags)->Serialize();
  for (auto _ : state) {
    auto parsed = ConditionsSnapshot::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_SnapshotParse);

void PrintComparison() {
  ConditionsDb db = PopulatedDb(20, 8);
  std::vector<std::string> tags = db.Tags();
  auto snapshot = ConditionsSnapshot::Capture(db, 250, tags);
  std::string text = snapshot->Serialize();

  // Equivalence at the captured run.
  int identical = 0;
  for (const std::string& tag : tags) {
    if (*db.GetPayload(tag, 250) == *snapshot->GetPayload(tag, 250)) {
      ++identical;
    }
  }

  TextTable table;
  table.SetTitle("\nBackend comparison (the §3.2 trade-off):");
  table.SetHeader({"property", "conditions database", "text-file snapshot"});
  table.AddRow({"payloads at captured run",
                std::to_string(tags.size()) + " served",
                std::to_string(identical) + "/" +
                    std::to_string(tags.size()) + " byte-identical"});
  table.AddRow({"serves other runs", "yes (any IOV)",
                "no (FailedPrecondition)"});
  table.AddRow({"needs live service at reprocessing", "yes", "no"});
  table.AddRow({"ships with the data", "no", "yes, " +
                    FormatBytes(text.size())});
  table.AddRow({"lookup counting", std::to_string(db.lookup_count()) +
                    " db hits so far", std::to_string(
                    snapshot->lookup_count()) + " local hits"});
  std::printf("%s\n", table.Render().c_str());

  // Cross-check: the snapshot parses back and still serves.
  auto parsed = ConditionsSnapshot::Parse(text);
  std::printf("snapshot round-trip: parse ok=%s, run=%u, tags=%zu\n",
              parsed.ok() ? "yes" : "NO", parsed.ok() ? parsed->run() : 0,
              parsed.ok() ? parsed->Tags().size() : 0);
  std::printf(
      "\nShape to reproduce (§3.2): both strategies give identical physics\n"
      "at the captured run; the snapshot 'can easily be shipped around with\n"
      "the data' (no service dependency) at the price of being run-frozen.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E7: conditions database vs text-file snapshot ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintComparison();
  return 0;
}
