// E5 — prices provenance capture (§3.2: "an external structure to capture
// that provenance chain will need to be created"): chain execution with vs
// without capture, the size of the captured chain, and the gap-detection
// query that finds derived files with missing parentage.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "conditions/store.h"
#include "event/pdg.h"
#include "support/strings.h"
#include "support/table.h"
#include "workflow/steps.h"

using namespace daspos;

namespace {

constexpr int kEvents = 60;

Workflow BuildChain() {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 21;
  SimulationConfig sim_config;
  sim_config.seed = 22;

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, kEvents, "gen"), {},
      "gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, 7, "raw"), {"gen"},
      "raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("aod"), {"reco"},
                         "aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "derived"),
      {"aod"}, "derived");
  return workflow;
}

ConditionsDb MakeConditions() {
  ConditionsDb conditions;
  CalibrationSet calib;
  (void)conditions.Append(kCalibrationTag, 1, calib.ToPayload());
  return conditions;
}

void BM_ChainWithoutProvenance(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  for (auto _ : state) {
    WorkflowContext context;
    context.set_conditions(&conditions);
    auto report = workflow.Execute(&context);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_ChainWithoutProvenance)->Unit(benchmark::kMillisecond);

void BM_ChainWithProvenance(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  for (auto _ : state) {
    WorkflowContext context;
    context.set_conditions(&conditions);
    ProvenanceStore provenance;
    auto report = workflow.Execute(&context, &provenance);
    benchmark::DoNotOptimize(provenance);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_ChainWithProvenance)->Unit(benchmark::kMillisecond);

void BM_AncestryQuery(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  (void)workflow.Execute(&context, &provenance);
  for (auto _ : state) {
    auto ancestry = provenance.Ancestry("derived");
    benchmark::DoNotOptimize(ancestry);
  }
}
BENCHMARK(BM_AncestryQuery);

void PrintProvenanceReport() {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  (void)workflow.Execute(&context, &provenance);

  std::string serialized = provenance.Serialize();
  TextTable table;
  table.SetTitle("\nCaptured provenance chain:");
  table.SetHeader({"dataset", "producer", "parents", "events", "bytes"});
  for (const std::string& dataset : provenance.Datasets()) {
    auto record = provenance.Get(dataset);
    table.AddRow({record->dataset, record->producer,
                  Join(record->parents, ","),
                  std::to_string(record->output_events),
                  FormatBytes(record->output_bytes)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("provenance store: %zu records, %s serialized (%.2f%% of the "
              "data volume it describes)\n",
              provenance.size(), FormatBytes(serialized.size()).c_str(),
              100.0 * static_cast<double>(serialized.size()) /
                  static_cast<double>(context.TotalBytes()));

  // Gap detection: simulate a legacy file whose parent was produced
  // without capture.
  ProvenanceStore broken;
  auto derived = provenance.Get("derived");
  ProvenanceRecord orphan = *derived;
  (void)broken.Add(orphan);
  auto missing = broken.MissingParents();
  std::printf("\ngap detection on a partial store: %zu missing parent(s): ",
              missing.size());
  for (const std::string& parent : missing) std::printf("%s ", parent.c_str());
  std::printf("\n(the §3.2 failure mode an external provenance structure "
              "must catch)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E5: provenance capture cost + gap detection ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintProvenanceReport();
  return 0;
}
