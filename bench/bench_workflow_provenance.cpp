// E5 — prices provenance capture (§3.2: "an external structure to capture
// that provenance chain will need to be created"): chain execution with vs
// without capture, the size of the captured chain, and the gap-detection
// query that finds derived files with missing parentage.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "conditions/store.h"
#include "event/pdg.h"
#include "support/strings.h"
#include "support/table.h"
#include "workflow/steps.h"

using namespace daspos;

namespace {

constexpr int kEvents = 60;

// Thread-count knob for the chain benchmarks: DASPOS_THREADS=N in the
// environment (0 or unset = one worker per hardware thread).
ExecuteOptions OptionsFromEnv() {
  ExecuteOptions options;
  if (const char* env = std::getenv("DASPOS_THREADS")) {
    options.max_threads = static_cast<size_t>(std::atoi(env));
  }
  return options;
}

Workflow BuildChain() {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 21;
  SimulationConfig sim_config;
  sim_config.seed = 22;

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, kEvents, "gen"), {},
      "gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, 7, "raw"), {"gen"},
      "raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("aod"), {"reco"},
                         "aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "derived"),
      {"aod"}, "derived");
  return workflow;
}

ConditionsDb MakeConditions() {
  ConditionsDb conditions;
  CalibrationSet calib;
  (void)conditions.Append(kCalibrationTag, 1, calib.ToPayload());
  return conditions;
}

void BM_ChainWithoutProvenance(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  ExecuteOptions options = OptionsFromEnv();
  for (auto _ : state) {
    WorkflowContext context;
    context.set_conditions(&conditions);
    auto report = workflow.Execute(&context, nullptr, options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_ChainWithoutProvenance)->Unit(benchmark::kMillisecond);

void BM_ChainWithProvenance(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  ExecuteOptions options = OptionsFromEnv();
  for (auto _ : state) {
    WorkflowContext context;
    context.set_conditions(&conditions);
    ProvenanceStore provenance;
    auto report = workflow.Execute(&context, &provenance, options);
    benchmark::DoNotOptimize(provenance);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_ChainWithProvenance)->Unit(benchmark::kMillisecond);

// One shard of a wide skim fan-out: a fixed sleep standing in for I/O-bound
// step latency plus a small checksum pass over the input (the §2.1
// common-format converter fan-out shape).
class ShardStep : public WorkflowStep {
 public:
  explicit ShardStep(int shard, int sleep_ms)
      : shard_(shard), sleep_ms_(sleep_ms) {}
  std::string name() const override {
    return "shard_" + std::to_string(shard_);
  }
  std::string version() const override { return "1"; }
  Json Config() const override {
    Json json = Json::Object();
    json["shard"] = shard_;
    json["sleep_ms"] = sleep_ms_;
    return json;
  }
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext*) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    uint64_t checksum = static_cast<uint64_t>(shard_);
    for (std::string_view input : inputs) {
      for (char c : input) checksum = checksum * 131 + static_cast<uint8_t>(c);
    }
    return std::to_string(checksum);
  }

 private:
  int shard_;
  int sleep_ms_;
};

/// Joins every shard output (barrier step closing the fan-out).
class JoinStep : public WorkflowStep {
 public:
  std::string name() const override { return "join"; }
  std::string version() const override { return "1"; }
  Json Config() const override { return Json::Object(); }
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext*) const override {
    std::string out;
    for (std::string_view input : inputs) {
      out += std::string(input);
      out += '\n';
    }
    return out;
  }
};

constexpr int kFanoutWidth = 16;
constexpr int kShardSleepMs = 5;

Workflow BuildFanout() {
  Workflow workflow;
  (void)workflow.AddStep(std::make_shared<ShardStep>(-1, 0), {}, "source");
  std::vector<std::string> shards;
  for (int i = 0; i < kFanoutWidth; ++i) {
    std::string output = "shard" + std::to_string(i);
    (void)workflow.AddStep(std::make_shared<ShardStep>(i, kShardSleepMs),
                           {"source"}, output);
    shards.push_back(output);
  }
  (void)workflow.AddStep(std::make_shared<JoinStep>(), shards, "joined");
  return workflow;
}

// The headline scaling measurement: the same 16-wide fan-out at 1..N worker
// threads. Wall-clock should drop near-linearly until the width or the
// hardware is exhausted (the shards sleep, so this scales even on one core).
void BM_FanoutExecute(benchmark::State& state) {
  Workflow workflow = BuildFanout();
  ExecuteOptions options;
  options.max_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    WorkflowContext context;
    auto report = workflow.Execute(&context, nullptr, options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kFanoutWidth);
}
BENCHMARK(BM_FanoutExecute)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AncestryQuery(benchmark::State& state) {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  (void)workflow.Execute(&context, &provenance);
  for (auto _ : state) {
    auto ancestry = provenance.Ancestry("derived");
    benchmark::DoNotOptimize(ancestry);
  }
}
BENCHMARK(BM_AncestryQuery);

void PrintProvenanceReport() {
  Workflow workflow = BuildChain();
  ConditionsDb conditions = MakeConditions();
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  auto report = workflow.Execute(&context, &provenance, OptionsFromEnv());
  if (report.ok()) {
    std::printf("%s\n",
                report->RenderTimingTable("per-step chain timing:").c_str());
  }

  std::string serialized = provenance.Serialize();
  TextTable table;
  table.SetTitle("\nCaptured provenance chain:");
  table.SetHeader({"dataset", "producer", "parents", "events", "bytes"});
  for (const std::string& dataset : provenance.Datasets()) {
    auto record = provenance.Get(dataset);
    table.AddRow({record->dataset, record->producer,
                  Join(record->parents, ","),
                  std::to_string(record->output_events),
                  FormatBytes(record->output_bytes)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("provenance store: %zu records, %s serialized (%.2f%% of the "
              "data volume it describes)\n",
              provenance.size(), FormatBytes(serialized.size()).c_str(),
              100.0 * static_cast<double>(serialized.size()) /
                  static_cast<double>(context.TotalBytes()));

  // Gap detection: simulate a legacy file whose parent was produced
  // without capture.
  ProvenanceStore broken;
  auto derived = provenance.Get("derived");
  ProvenanceRecord orphan = *derived;
  (void)broken.Add(orphan);
  auto missing = broken.MissingParents();
  std::printf("\ngap detection on a partial store: %zu missing parent(s): ",
              missing.size());
  for (const std::string& parent : missing) std::printf("%s ", parent.c_str());
  std::printf("\n(the §3.2 failure mode an external provenance structure "
              "must catch)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E5: provenance capture cost + gap detection ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintProvenanceReport();
  return 0;
}
