// E1 — regenerates the paper's Table 1 (outreach features of the four LHC
// experiments) from the implemented Level-2 dialects, measures per-dialect
// codec throughput, and prints the interoperability matrix that motivates
// the common-format converter architecture (§2.1).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "level2/dialects.h"
#include "level2/outreach.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "support/table.h"

using namespace daspos;
using namespace daspos::level2;

namespace {

CommonEvent MakeEvent() {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 5;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = 6;
  DetectorSimulation simulation(sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = sim_config.geometry;
  reco_config.calib = sim_config.calib;
  Reconstructor reconstructor(reco_config);
  return CommonEvent::FromReco(
      reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1)));
}

void BM_DialectEncode(benchmark::State& state) {
  Experiment experiment = static_cast<Experiment>(state.range(0));
  CommonEvent event = MakeEvent();
  const Level2Codec& codec = CodecFor(experiment);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = codec.Encode(event);
    bytes += encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(std::string(ExperimentName(experiment)));
}
BENCHMARK(BM_DialectEncode)->DenseRange(0, 3);

void BM_DialectDecode(benchmark::State& state) {
  Experiment experiment = static_cast<Experiment>(state.range(0));
  const Level2Codec& codec = CodecFor(experiment);
  std::string encoded = codec.Encode(MakeEvent());
  for (auto _ : state) {
    auto decoded = codec.Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(encoded.size()));
  state.SetLabel(std::string(ExperimentName(experiment)));
}
BENCHMARK(BM_DialectDecode)->DenseRange(0, 3);

void BM_ConvertViaCommon(benchmark::State& state) {
  std::string encoded = CodecFor(Experiment::kAtlas).Encode(MakeEvent());
  for (auto _ : state) {
    auto converted =
        ConvertBetween(Experiment::kAtlas, encoded, Experiment::kCms);
    benchmark::DoNotOptimize(converted);
  }
  state.SetLabel("Atlas->common->CMS");
}
BENCHMARK(BM_ConvertViaCommon);

void PrintTable1() {
  auto profiles = AllOutreachProfiles();
  TextTable table;
  table.SetTitle(
      "\nTable 1 (regenerated): outreach features of the four LHC "
      "experiments");
  table.SetHeader({"", "Alice", "Atlas", "CMS", "LHCb"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const OutreachProfile& profile : profiles) {
      cells.push_back(getter(profile));
    }
    table.AddRow(cells);
  };
  row("Event display", [](const OutreachProfile& p) { return p.event_display; });
  row("Geometry description",
      [](const OutreachProfile& p) { return p.geometry_format; });
  row("Analysis tools",
      [](const OutreachProfile& p) { return p.analysis_tools; });
  row("Data format (implemented)",
      [](const OutreachProfile& p) { return p.data_format; });
  row("self-documenting?", [](const OutreachProfile& p) {
    return std::string(p.self_documenting ? "Y" : "N");
  });
  row("Master class uses",
      [](const OutreachProfile& p) { return p.master_class_uses; });
  row("Comments", [](const OutreachProfile& p) { return p.comments; });
  std::printf("%s\n", table.Render().c_str());

  // Per-dialect document size for the same event.
  CommonEvent event = MakeEvent();
  TextTable sizes;
  sizes.SetTitle("Same event, each dialect:");
  sizes.SetHeader({"experiment", "bytes", "decodable by other dialects?"});
  for (Experiment experiment : kAllExperiments) {
    std::string encoded = CodecFor(experiment).Encode(event);
    int foreign_ok = 0;
    for (Experiment other : kAllExperiments) {
      if (other == experiment) continue;
      if (DecodableAs(other, encoded)) ++foreign_ok;
    }
    sizes.AddRow({std::string(ExperimentName(experiment)),
                  std::to_string(encoded.size()),
                  foreign_ok == 0 ? "no (0/3)" :
                      std::to_string(foreign_ok) + "/3"});
  }
  std::printf("%s\n", sizes.Render().c_str());

  // Interop matrix: direct vs via common format.
  TextTable interop;
  interop.SetTitle(
      "Interoperability (paper's point: none direct, all via the common "
      "format):");
  interop.SetHeader({"from \\ to", "Alice", "Atlas", "CMS", "LHCb"});
  for (Experiment from : kAllExperiments) {
    std::vector<std::string> cells = {std::string(ExperimentName(from))};
    std::string encoded = CodecFor(from).Encode(event);
    for (Experiment to : kAllExperiments) {
      if (from == to) {
        cells.push_back("-");
        continue;
      }
      bool direct = DecodableAs(to, encoded);
      bool via_common = ConvertBetween(from, encoded, to).ok();
      cells.push_back(std::string(direct ? "direct" : "") +
                      (via_common ? "via-common" : "FAIL"));
    }
    interop.AddRow(cells);
  }
  std::printf("%s", interop.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E1: Table 1 regeneration + Level-2 codec benchmarks "
              "====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintTable1();
  return 0;
}
