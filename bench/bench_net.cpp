// E10 — dasposd service throughput: the archive protocol served by the
// single-threaded reactor to 1/4/16 concurrent blocking clients, over a
// packfile backend. Two workloads: small Get (read-mostly, the hot
// retrieval path) and PutBatch (bulk ingest). Each reports requests/s and
// p99 per-request latency; every Get response is byte-compared against
// the original payload, so a correctness break fails the run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "archive/pack_store.h"
#include "bench_json.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "support/metrics_registry.h"
#include "support/strings.h"
#include "support/table.h"

using namespace daspos;

namespace {

/// Deterministic pseudo-random payload; incompressible enough that wire
/// cost is honest and unique per seed so PutBatch blobs do not dedupe.
std::string RandomBlob(size_t bytes, uint64_t seed) {
  std::string out;
  out.resize(bytes);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>(x & 0xff);
  }
  return out;
}

// Micro-bench: the frame codec alone (encode a Get request + decode its
// header), so protocol overhead is visible separately from socket I/O.
// Skipped by bench.sh (--benchmark_filter='^$'); run manually if needed.
void BM_FrameCodec(benchmark::State& state) {
  std::string id(64, 'a');
  for (auto _ : state) {
    std::string frame = net::EncodeFrame(net::MessageType::kGet, 7, id);
    auto header = net::DecodeFrameHeader(
        std::string_view(frame.data(), net::kFrameHeaderSize));
    benchmark::DoNotOptimize(header);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(net::kFrameHeaderSize + id.size()));
}
BENCHMARK(BM_FrameCodec);

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * (sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

struct WorkloadResult {
  double requests_per_s = 0.0;
  double p99_ms = 0.0;
  uint64_t requests = 0;
  bool ok = true;
};

/// Fans `clients` threads out against 127.0.0.1:`port`, each driving its
/// own connection through `per_client(thread_index, client, &latencies)`.
/// Wall time covers connect through last join — the elapsed time an
/// operator would see, not per-request bookkeeping — so requests/s
/// reflects the server multiplexing all N connections at once.
WorkloadResult RunClients(
    uint16_t port, int clients,
    const std::function<bool(int, net::Client&, std::vector<double>*)>&
        per_client) {
  WorkloadResult result;
  std::vector<double> all_ms;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> local_ms;
      auto client =
          net::Client::Connect("127.0.0.1:" + std::to_string(port));
      bool ok = client.ok() && per_client(t, *client, &local_ms);
      std::lock_guard<std::mutex> lock(merge_mutex);
      if (!ok) result.ok = false;
      all_ms.insert(all_ms.end(), local_ms.begin(), local_ms.end());
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::sort(all_ms.begin(), all_ms.end());
  result.requests = all_ms.size();
  result.requests_per_s =
      wall_ms > 0.0 ? all_ms.size() / (wall_ms / 1000.0) : 0.0;
  result.p99_ms = Percentile(all_ms, 0.99);
  return result;
}

/// Times one call and appends its latency.
template <typename Fn>
auto Timed(std::vector<double>* latencies_ms, Fn&& fn)
    -> decltype(fn()) {
  auto start = std::chrono::steady_clock::now();
  auto result = fn();
  latencies_ms->push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  return result;
}

// Seeds for PutBatch payloads: globally unique so no blob ever dedupes
// against an earlier run's objects — every batch pays the full hash+write.
std::atomic<uint64_t> g_put_seed{1u << 20};

bool RunServiceBench() {
  bool ok = true;
  int blob_kb = daspos_bench::EnvInt("DASPOS_BENCH_NET_BLOB_KB", 4);
  int objects = daspos_bench::EnvInt("DASPOS_BENCH_NET_OBJECTS", 64);
  int get_requests =
      daspos_bench::EnvInt("DASPOS_BENCH_NET_REQUESTS", 2000);
  int batches = daspos_bench::EnvInt("DASPOS_BENCH_NET_BATCHES", 32);
  int batch_blobs =
      daspos_bench::EnvInt("DASPOS_BENCH_NET_BATCH_BLOBS", 16);
  size_t blob_bytes = static_cast<size_t>(blob_kb) * 1024;

  std::string root = (std::filesystem::temp_directory_path() /
                      "daspos_bench_net_store")
                         .string();
  std::filesystem::remove_all(root);
  PackObjectStore store(root);

  // Pre-load the Get working set directly (no network) and seal it so the
  // serve path reads sealed mmap segments, the steady-state layout.
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(objects));
  for (int i = 0; i < objects; ++i) {
    payloads.push_back(
        RandomBlob(blob_bytes, 9000 + static_cast<uint64_t>(i)));
  }
  std::vector<std::string_view> views(payloads.begin(), payloads.end());
  auto ids = store.PutBatch(views);
  if (!ids.ok()) {
    std::printf("bench_net: preload failed: %s\n",
                ids.status().ToString().c_str());
    return false;
  }
  (void)store.Flush();

  net::ServerOptions options;
  options.backend_name = "pack";
  net::Server server(&store, options);
  Status start_status = server.Start();
  if (!start_status.ok()) {
    std::printf("bench_net: server start failed: %s\n",
                start_status.ToString().c_str());
    return false;
  }
  uint16_t port = server.port();
  Status run_status;
  std::thread loop_thread([&] { run_status = server.Run(); });

  std::vector<int> client_counts = {1, 4, 16};

  TextTable get_table;
  get_table.SetTitle("Small Get (" + std::to_string(objects) +
                     " objects x " + FormatBytes(blob_bytes) +
                     ", pack backend, " + std::to_string(get_requests) +
                     " requests/client, byte-verified):");
  get_table.SetHeader({"clients", "requests", "requests/s", "p99 ms"});
  for (int clients : client_counts) {
    WorkloadResult result = RunClients(
        port, clients,
        [&](int t, net::Client& client, std::vector<double>* lat) {
          for (int r = 0; r < get_requests; ++r) {
            size_t index = static_cast<size_t>(t * 31 + r) %
                           ids->size();
            auto bytes = Timed(
                lat, [&] { return client.Get((*ids)[index]); });
            if (!bytes.ok() || *bytes != payloads[index]) return false;
          }
          return true;
        });
    ok = ok && result.ok;
    get_table.AddRow({std::to_string(clients),
                      std::to_string(result.requests),
                      FormatDouble(result.requests_per_s, 6),
                      FormatDouble(result.p99_ms, 4)});
    daspos_bench::AppendBenchJson("bench_net", "small_get_requests_per_s",
                                  result.requests_per_s, clients);
    daspos_bench::AppendBenchJson("bench_net", "small_get_p99_ms",
                                  result.p99_ms, clients);
  }
  std::printf("%s\n", get_table.Render().c_str());

  TextTable put_table;
  put_table.SetTitle("\nPutBatch (" + std::to_string(batch_blobs) +
                     " unique blobs x " + FormatBytes(blob_bytes) +
                     " per batch, " + std::to_string(batches) +
                     " batches/client):");
  put_table.SetHeader({"clients", "requests", "requests/s", "p99 ms"});
  for (int clients : client_counts) {
    WorkloadResult result = RunClients(
        port, clients,
        [&](int /*t*/, net::Client& client, std::vector<double>* lat) {
          for (int b = 0; b < batches; ++b) {
            std::vector<std::string> blobs;
            blobs.reserve(static_cast<size_t>(batch_blobs));
            for (int i = 0; i < batch_blobs; ++i) {
              blobs.push_back(RandomBlob(
                  blob_bytes, g_put_seed.fetch_add(1)));
            }
            auto batch_ids =
                Timed(lat, [&] { return client.PutBatch(blobs); });
            if (!batch_ids.ok() ||
                batch_ids->size() != blobs.size()) {
              return false;
            }
          }
          return true;
        });
    ok = ok && result.ok;
    put_table.AddRow({std::to_string(clients),
                      std::to_string(result.requests),
                      FormatDouble(result.requests_per_s, 6),
                      FormatDouble(result.p99_ms, 4)});
    daspos_bench::AppendBenchJson("bench_net", "put_batch_requests_per_s",
                                  result.requests_per_s, clients);
    daspos_bench::AppendBenchJson("bench_net", "put_batch_p99_ms",
                                  result.p99_ms, clients);
  }
  std::printf("%s\n", put_table.Render().c_str());

  server.TriggerDrain();
  loop_thread.join();
  if (!run_status.ok()) {
    std::printf("bench_net: server run failed: %s\n",
                run_status.ToString().c_str());
    ok = false;
  }
  std::printf("service identity: %s (%llu requests served)\n",
              ok ? "all responses byte-identical"
                 : "MISMATCH (see above)",
              static_cast<unsigned long long>(server.requests_served()));
  std::filesystem::remove_all(root);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E10: dasposd service throughput ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RegisterStandardMetrics();
  bool ok = RunServiceBench();
  return ok ? 0 : 1;
}
