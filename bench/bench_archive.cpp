// E6 — archive operations at the core of the DASPOS mission: deposit
// (SIP -> AIP) throughput, fixity-audit rate, verified retrieval, and
// format migration, over realistic dataset payloads.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/migrate.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "archive/scrub.h"
#include "bench_json.h"
#include "mc/generator.h"
#include "support/metrics_registry.h"
#include "support/mmap.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/threadpool.h"
#include "tiers/dataset.h"

using namespace daspos;

namespace {

std::string DatasetBlob(int events) {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 33;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "bench_dataset";
  info.producer = "bench";
  return WriteGenDataset(info, generator.GenerateMany(
                                   static_cast<size_t>(events)));
}

SubmissionPackage MakeSubmission(const std::string& blob, int salt) {
  SubmissionPackage sip;
  sip.title = "bench deposit " + std::to_string(salt);
  sip.creator = "bench";
  sip.description = "synthetic dataset";
  sip.files.push_back(
      {"data.dspc", "application/x-daspos-container", blob});
  return sip;
}

void BM_Deposit(benchmark::State& state) {
  std::string blob = DatasetBlob(static_cast<int>(state.range(0)));
  int salt = 0;
  for (auto _ : state) {
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, ++salt));
    benchmark::DoNotOptimize(id);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel(std::to_string(state.range(0)) + " events/file");
}
BENCHMARK(BM_Deposit)->Arg(50)->Arg(500);

void BM_FixityAudit(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(100);
  for (int i = 0; i < state.range(0); ++i) {
    SubmissionPackage sip = MakeSubmission(blob, i);
    sip.files[0].bytes += std::to_string(i);  // distinct objects
    (void)archive.Deposit(sip);
  }
  for (auto _ : state) {
    FixityReport report = archive.AuditFixity();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
  state.SetLabel(std::to_string(state.range(0)) + " packages");
}
BENCHMARK(BM_FixityAudit)->Arg(4)->Arg(32);

void BM_VerifiedRetrieve(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(200);
  auto id = archive.Deposit(MakeSubmission(blob, 0));
  for (auto _ : state) {
    auto package = archive.Retrieve(*id);
    benchmark::DoNotOptimize(package);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_VerifiedRetrieve);

void BM_Migrate(benchmark::State& state) {
  std::string blob = DatasetBlob(200);
  for (auto _ : state) {
    state.PauseTiming();
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, 0));
    state.ResumeTiming();
    auto migrated = archive.Migrate(
        *id,
        [](const PackageFile& file) -> Result<PackageFile> {
          PackageFile out = file;
          out.logical_name += ".v2";
          return out;
        },
        "v1 -> v2");
    benchmark::DoNotOptimize(migrated);
  }
}
BENCHMARK(BM_Migrate)->Unit(benchmark::kMicrosecond);

void PrintSummary() {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string small = DatasetBlob(50);
  std::string large = DatasetBlob(500);
  (void)archive.Deposit(MakeSubmission(small, 1));
  (void)archive.Deposit(MakeSubmission(large, 2));
  // Duplicate data deduplicates in the content store.
  SubmissionPackage duplicate = MakeSubmission(large, 3);
  (void)archive.Deposit(duplicate);

  TextTable table;
  table.SetTitle("\nArchive holdings and store accounting:");
  table.SetHeader({"seq", "title", "files", "package bytes"});
  uint64_t package_total = 0;
  for (const HoldingSummary& holding : archive.Holdings()) {
    table.AddRow({std::to_string(holding.deposit_sequence), holding.title,
                  std::to_string(holding.file_count),
                  FormatBytes(holding.total_bytes)});
    package_total += holding.total_bytes;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("logical package bytes : %s\n",
              FormatBytes(package_total).c_str());
  std::printf("physical store bytes  : %s  (content addressing "
              "deduplicates the shared payload)\n",
              FormatBytes(store.TotalBytes()).c_str());
  FixityReport report = archive.AuditFixity();
  std::printf("fixity: %llu objects checked, clean=%s\n",
              static_cast<unsigned long long>(report.objects_checked),
              report.clean() ? "yes" : "NO");
}

/// Deterministic pseudo-random payload; incompressible enough that read
/// cost is honest and unique per (seed) so PutBatch blobs do not dedupe.
std::string RandomBlob(size_t bytes, uint64_t seed) {
  std::string out;
  out.resize(bytes);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>(x & 0xff);
  }
  return out;
}

double TimeMs(const std::function<void()>& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double MiBPerSec(size_t bytes, double ms) {
  if (ms <= 0.0) return 0.0;
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (ms / 1000.0);
}

/// Archive read fast path (PR 4): cold Get (full SHA-256 re-hash) vs warm
/// Get (verified-digest cache hit: stat check + plain read), plus batched
/// ingest at several pool widths. Returns false if the rotted-blob
/// re-detection check fails. Writes the honestly-cold loose Get time to
/// `loose_cold_ms_out` for the backend comparison section.
bool PrintFastPath(double* loose_cold_ms_out) {
  int blob_mb = daspos_bench::EnvInt("DASPOS_BENCH_BLOB_MB", 32);
  size_t blob_bytes = static_cast<size_t>(blob_mb) * 1024 * 1024;
  std::string root = (std::filesystem::temp_directory_path() /
                      "daspos_bench_archive_store")
                         .string();
  std::filesystem::remove_all(root);
  std::string blob = RandomBlob(blob_bytes, 42);

  FileObjectStore warm_store(root);
  auto id = warm_store.Put(blob);
  if (!id.ok()) {
    std::fprintf(stderr, "put failed: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }

  // Cold: a fresh store directory per rep — write the blob, evict it from
  // the OS page cache, then Get through a fresh instance. Earlier revisions
  // only refreshed the instance, so "cold" replayed warm pages and measured
  // the hash alone; this pays the real read path too.
  double cold_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    std::string cold_root = root + "_cold" + std::to_string(rep);
    std::filesystem::remove_all(cold_root);
    {
      FileObjectStore put_store(cold_root);
      (void)put_store.Put(blob);
    }
    std::string cold_path =
        cold_root + "/" + id->substr(0, 2) + "/" + id->substr(2);
    (void)DropFileCache(cold_path);
    FileObjectStore cold_store(cold_root);
    double ms = TimeMs([&] {
      auto got = cold_store.Get(*id);
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < cold_ms) cold_ms = ms;
    std::filesystem::remove_all(cold_root);
  }
  *loose_cold_ms_out = cold_ms;
  // Warm: same instance; one priming Get records the verified fingerprint,
  // then every timed Get is a cache hit (stat check + read, no hash).
  (void)warm_store.Get(*id);
  double warm_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    double ms = TimeMs([&] {
      auto got = warm_store.Get(*id);
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < warm_ms) warm_ms = ms;
  }
  double warm_speedup = cold_ms / warm_ms;
  const MetricsRegistry& registry = MetricsRegistry::Global();
  uint64_t cache_hits =
      registry.CounterValue(metric_names::kArchiveCacheHitsTotal);
  uint64_t cache_misses =
      registry.CounterValue(metric_names::kArchiveCacheMissesTotal);
  uint64_t cache_invalidations =
      registry.CounterValue(metric_names::kArchiveCacheInvalidationsTotal);

  TextTable table;
  table.SetTitle("\nVerified-digest cache fast path (" +
                 std::to_string(blob_mb) + " MiB blob):");
  table.SetHeader({"path", "wall ms", "MiB/s", "speedup"});
  table.AddRow({"cold Get (read + re-hash)", FormatDouble(cold_ms, 2),
                FormatDouble(MiBPerSec(blob_bytes, cold_ms), 1), "1.00"});
  table.AddRow({"warm Get (cache hit)", FormatDouble(warm_ms, 2),
                FormatDouble(MiBPerSec(blob_bytes, warm_ms), 1),
                FormatDouble(warm_speedup, 2)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("cache counters: %llu hit(s), %llu miss(es), "
              "%llu invalidation(s)\n",
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses),
              static_cast<unsigned long long>(cache_invalidations));
  daspos_bench::AppendBenchJson("bench_archive", "cold_get_ms", cold_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive", "cold_get_mib_s",
                                MiBPerSec(blob_bytes, cold_ms), 1);
  daspos_bench::AppendBenchJson("bench_archive", "warm_get_ms", warm_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive", "warm_get_speedup",
                                warm_speedup, 1);

  // Rot-after-cache: modify the blob behind the warm cache; the stat
  // mismatch must force a re-hash that catches and quarantines the rot.
  std::string path = root + "/" + id->substr(0, 2) + "/" + id->substr(2);
  {
    std::string rotted = blob;
    rotted[rotted.size() / 2] ^= 0x01;
    rotted.push_back('!');  // size change guarantees a stat mismatch
    (void)std::filesystem::remove(path);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(rotted.data(), 1, rotted.size(), f);
      std::fclose(f);
    }
  }
  bool rot_caught = warm_store.Get(*id).status().IsCorruption() &&
                    warm_store.QuarantinedIds().size() == 1;
  std::printf("rot after cache: %s\n",
              rot_caught ? "caught and quarantined" : "MISSED");

  // Batched ingest: PutBatch over a pool vs the serial loop.
  int batch = daspos_bench::EnvInt("DASPOS_BENCH_BATCH_BLOBS", 16);
  size_t each = blob_bytes / 8;
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    payloads.push_back(RandomBlob(each, 1000 + static_cast<uint64_t>(i)));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());
  TextTable ingest_table;
  ingest_table.SetTitle("\nBatched ingest (" + std::to_string(batch) +
                        " blobs x " + FormatBytes(each) + "):");
  ingest_table.SetHeader({"threads", "wall ms", "speedup"});
  std::filesystem::remove_all(root + "_serial");
  FileObjectStore serial_store(root + "_serial");
  double serial_ms = TimeMs([&] {
    auto ids = serial_store.PutBatch(blobs, nullptr);
    benchmark::DoNotOptimize(ids);
  });
  ingest_table.AddRow({"1 (serial)", FormatDouble(serial_ms, 2), "1.00"});
  daspos_bench::AppendBenchJson("bench_archive", "putbatch_ms", serial_ms,
                                1);
  for (size_t threads : {2u, 4u}) {
    std::string tree = root + "_t" + std::to_string(threads);
    std::filesystem::remove_all(tree);
    FileObjectStore store(tree);
    ThreadPool pool(threads);
    double ms = TimeMs([&] {
      auto ids = store.PutBatch(blobs, &pool);
      benchmark::DoNotOptimize(ids);
    });
    ingest_table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                         FormatDouble(serial_ms / ms, 2)});
    daspos_bench::AppendBenchJson("bench_archive", "putbatch_ms", ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_archive", "putbatch_speedup",
                                  serial_ms / ms,
                                  static_cast<int>(threads));
    std::filesystem::remove_all(tree);
  }
  std::printf("%s\n", ingest_table.Render().c_str());
  std::filesystem::remove_all(root);
  std::filesystem::remove_all(root + "_serial");
  return rot_caught;
}

/// Packfile backend vs loose files (PR 9): honestly-cold Get with the
/// segment evicted from the page cache (mmap + XXH64 gate vs open + read +
/// full SHA-256 re-hash), warm mmap Get, replica scrub throughput over each
/// layout, and repack (loose -> pack migration) throughput. Returns false
/// if any cross-backend identity self-check fails.
bool PrintPackBench(double loose_cold_ms) {
  int blob_mb = daspos_bench::EnvInt("DASPOS_BENCH_BLOB_MB", 32);
  size_t blob_bytes = static_cast<size_t>(blob_mb) * 1024 * 1024;
  std::string base = (std::filesystem::temp_directory_path() /
                      "daspos_bench_pack")
                         .string();
  std::string blob = RandomBlob(blob_bytes, 42);
  bool ok = true;

  // Cold: a fresh pack per rep, sealed (Flush) so the reopened store
  // serves it via mmap, with the segment dropped from the page cache.
  double pack_cold_ms = 0.0;
  std::string pack_id;
  for (int rep = 0; rep < 5; ++rep) {
    std::string pack_root = base + "_cold" + std::to_string(rep);
    std::filesystem::remove_all(pack_root);
    {
      PackObjectStore store(pack_root);
      auto id = store.Put(blob);
      if (!id.ok()) {
        std::fprintf(stderr, "pack put failed: %s\n",
                     id.status().ToString().c_str());
        return false;
      }
      pack_id = *id;
      (void)store.Flush();
    }
    (void)DropFileCache(pack_root + "/segments/000000.seg");
    PackObjectStore cold(pack_root);
    double ms = TimeMs([&] {
      auto got = cold.Get(pack_id);
      if (!got.ok() || *got != blob) ok = false;
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < pack_cold_ms) pack_cold_ms = ms;
    std::filesystem::remove_all(pack_root);
  }

  // Warm: repeated Gets through one open store — the segment stays mapped
  // and the kernel pages stay hot, so this is memcpy + checksum.
  double pack_warm_ms = 0.0;
  {
    std::string pack_root = base + "_warm";
    std::filesystem::remove_all(pack_root);
    PackObjectStore store(pack_root);
    (void)store.Put(blob);
    (void)store.Flush();
    PackObjectStore warm(pack_root);
    (void)warm.Get(pack_id);
    for (int rep = 0; rep < 5; ++rep) {
      double ms = TimeMs([&] {
        auto got = warm.Get(pack_id);
        benchmark::DoNotOptimize(got);
      });
      if (rep == 0 || ms < pack_warm_ms) pack_warm_ms = ms;
    }
    std::filesystem::remove_all(pack_root);
  }

  // Both backends must mint the same SHA-256 id for the same bytes.
  {
    std::string loose_root = base + "_ident";
    std::filesystem::remove_all(loose_root);
    FileObjectStore loose(loose_root);
    auto loose_id = loose.Put(blob);
    if (!loose_id.ok() || *loose_id != pack_id) ok = false;
    std::filesystem::remove_all(loose_root);
  }

  double cold_speedup =
      pack_cold_ms > 0.0 ? loose_cold_ms / pack_cold_ms : 0.0;
  TextTable table;
  table.SetTitle("\nPackfile backend vs loose files (" +
                 std::to_string(blob_mb) + " MiB blob, page cache "
                 "dropped for cold reps):");
  table.SetHeader({"path", "wall ms", "MiB/s", "vs loose cold"});
  table.AddRow({"loose cold Get (read + SHA-256)",
                FormatDouble(loose_cold_ms, 2),
                FormatDouble(MiBPerSec(blob_bytes, loose_cold_ms), 1),
                "1.00"});
  table.AddRow({"pack cold Get (mmap + XXH64)",
                FormatDouble(pack_cold_ms, 2),
                FormatDouble(MiBPerSec(blob_bytes, pack_cold_ms), 1),
                FormatDouble(cold_speedup, 2)});
  table.AddRow({"pack warm Get (mapped)", FormatDouble(pack_warm_ms, 2),
                FormatDouble(MiBPerSec(blob_bytes, pack_warm_ms), 1),
                FormatDouble(pack_warm_ms > 0.0
                                 ? loose_cold_ms / pack_warm_ms
                                 : 0.0,
                             2)});
  std::printf("%s\n", table.Render().c_str());
  daspos_bench::AppendBenchJson("bench_archive", "pack_cold_get_ms",
                                pack_cold_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive", "pack_cold_get_mib_s",
                                MiBPerSec(blob_bytes, pack_cold_ms), 1);
  daspos_bench::AppendBenchJson("bench_archive", "pack_warm_get_ms",
                                pack_warm_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive",
                                "pack_cold_speedup_vs_loose", cold_speedup,
                                1);

  // Scrub throughput: the same holdings replicated twice per layout, one
  // stateless full pass each (serial, so the layouts compare like for
  // like). Pack replicas are sealed first so the scrub walks mmap reads.
  int objects = daspos_bench::EnvInt("DASPOS_BENCH_SCRUB_OBJECTS", 256);
  int object_kb = daspos_bench::EnvInt("DASPOS_BENCH_OBJECT_KB", 64);
  size_t object_bytes = static_cast<size_t>(object_kb) * 1024;
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(objects));
  for (int i = 0; i < objects; ++i) {
    payloads.push_back(
        RandomBlob(object_bytes, 7000 + static_cast<uint64_t>(i)));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());

  auto scrub_pass = [&](ObjectStore* a, ObjectStore* b,
                        double* out_ms) -> bool {
    ScrubOptions options;  // stateless full pass, serial
    double ms = TimeMs([&] {
      auto report = ScrubReplicas({a, b}, options);
      if (!report.ok() || report->Verdict() != ScrubVerdict::kPass ||
          report->objects_checked != static_cast<uint64_t>(objects)) {
        ok = false;
      }
      benchmark::DoNotOptimize(report);
    });
    *out_ms = ms;
    return ok;
  };

  double loose_scrub_ms = 0.0;
  double pack_scrub_ms = 0.0;
  std::string l0 = base + "_scrub_l0", l1 = base + "_scrub_l1";
  std::string p0 = base + "_scrub_p0", p1 = base + "_scrub_p1";
  for (const std::string& dir : {l0, l1, p0, p1}) {
    std::filesystem::remove_all(dir);
  }
  FileObjectStore loose0(l0), loose1(l1);
  (void)loose0.PutBatch(blobs, nullptr);
  (void)loose1.PutBatch(blobs, nullptr);
  scrub_pass(&loose0, &loose1, &loose_scrub_ms);
  PackObjectStore pack0(p0), pack1(p1);
  (void)pack0.PutBatch(blobs, nullptr);
  (void)pack1.PutBatch(blobs, nullptr);
  (void)pack0.Flush();
  (void)pack1.Flush();
  scrub_pass(&pack0, &pack1, &pack_scrub_ms);
  double loose_obj_s =
      loose_scrub_ms > 0.0 ? objects / (loose_scrub_ms / 1000.0) : 0.0;
  double pack_obj_s =
      pack_scrub_ms > 0.0 ? objects / (pack_scrub_ms / 1000.0) : 0.0;

  // Repack throughput: migrate the loose replica into a fresh packfile
  // store via copy-verify-swap, the same path `daspos repack` drives.
  std::string repack_root = base + "_repack";
  std::filesystem::remove_all(repack_root);
  double repack_ms = 0.0;
  uint64_t repack_bytes = 0;
  {
    PackObjectStore target(repack_root);
    MigrateOptions options;
    options.state_dir = repack_root + "/migrate-state";
    repack_ms = TimeMs([&] {
      auto report = MigrateGeneration(loose0, target, options);
      if (!report.ok() ||
          report->verified != static_cast<uint64_t>(objects)) {
        ok = false;
      } else {
        repack_bytes = report->bytes_copied;
      }
    });
    (void)target.Flush();
  }
  double repack_mib_s = MiBPerSec(repack_bytes, repack_ms);

  TextTable ops;
  ops.SetTitle("\nScrub + repack throughput (" + std::to_string(objects) +
               " objects x " + FormatBytes(object_bytes) +
               ", 2 replicas, serial):");
  ops.SetHeader({"operation", "wall ms", "rate"});
  ops.AddRow({"scrub loose replicas", FormatDouble(loose_scrub_ms, 2),
              FormatDouble(loose_obj_s, 1) + " obj/s"});
  ops.AddRow({"scrub pack replicas", FormatDouble(pack_scrub_ms, 2),
              FormatDouble(pack_obj_s, 1) + " obj/s"});
  ops.AddRow({"repack loose -> pack", FormatDouble(repack_ms, 2),
              FormatDouble(repack_mib_s, 1) + " MiB/s"});
  std::printf("%s\n", ops.Render().c_str());
  std::printf("backend identity: %s\n",
              ok ? "ids and bytes match across backends"
                 : "MISMATCH (see above)");
  daspos_bench::AppendBenchJson("bench_archive", "scrub_loose_obj_s",
                                loose_obj_s, 1);
  daspos_bench::AppendBenchJson("bench_archive", "scrub_pack_obj_s",
                                pack_obj_s, 1);
  daspos_bench::AppendBenchJson("bench_archive", "repack_mib_s",
                                repack_mib_s, 1);

  for (const std::string& dir : {l0, l1, p0, p1, repack_root}) {
    std::filesystem::remove_all(dir);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E6: preservation-archive operations ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  double loose_cold_ms = 0.0;
  bool ok = PrintFastPath(&loose_cold_ms);
  ok = PrintPackBench(loose_cold_ms) && ok;
  return ok ? 0 : 1;
}
