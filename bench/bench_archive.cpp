// E6 — archive operations at the core of the DASPOS mission: deposit
// (SIP -> AIP) throughput, fixity-audit rate, verified retrieval, and
// format migration, over realistic dataset payloads.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "mc/generator.h"
#include "support/strings.h"
#include "support/table.h"
#include "tiers/dataset.h"

using namespace daspos;

namespace {

std::string DatasetBlob(int events) {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 33;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "bench_dataset";
  info.producer = "bench";
  return WriteGenDataset(info, generator.GenerateMany(
                                   static_cast<size_t>(events)));
}

SubmissionPackage MakeSubmission(const std::string& blob, int salt) {
  SubmissionPackage sip;
  sip.title = "bench deposit " + std::to_string(salt);
  sip.creator = "bench";
  sip.description = "synthetic dataset";
  sip.files.push_back(
      {"data.dspc", "application/x-daspos-container", blob});
  return sip;
}

void BM_Deposit(benchmark::State& state) {
  std::string blob = DatasetBlob(static_cast<int>(state.range(0)));
  int salt = 0;
  for (auto _ : state) {
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, ++salt));
    benchmark::DoNotOptimize(id);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel(std::to_string(state.range(0)) + " events/file");
}
BENCHMARK(BM_Deposit)->Arg(50)->Arg(500);

void BM_FixityAudit(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(100);
  for (int i = 0; i < state.range(0); ++i) {
    SubmissionPackage sip = MakeSubmission(blob, i);
    sip.files[0].bytes += std::to_string(i);  // distinct objects
    (void)archive.Deposit(sip);
  }
  for (auto _ : state) {
    FixityReport report = archive.AuditFixity();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
  state.SetLabel(std::to_string(state.range(0)) + " packages");
}
BENCHMARK(BM_FixityAudit)->Arg(4)->Arg(32);

void BM_VerifiedRetrieve(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(200);
  auto id = archive.Deposit(MakeSubmission(blob, 0));
  for (auto _ : state) {
    auto package = archive.Retrieve(*id);
    benchmark::DoNotOptimize(package);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_VerifiedRetrieve);

void BM_Migrate(benchmark::State& state) {
  std::string blob = DatasetBlob(200);
  for (auto _ : state) {
    state.PauseTiming();
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, 0));
    state.ResumeTiming();
    auto migrated = archive.Migrate(
        *id,
        [](const PackageFile& file) -> Result<PackageFile> {
          PackageFile out = file;
          out.logical_name += ".v2";
          return out;
        },
        "v1 -> v2");
    benchmark::DoNotOptimize(migrated);
  }
}
BENCHMARK(BM_Migrate)->Unit(benchmark::kMicrosecond);

void PrintSummary() {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string small = DatasetBlob(50);
  std::string large = DatasetBlob(500);
  (void)archive.Deposit(MakeSubmission(small, 1));
  (void)archive.Deposit(MakeSubmission(large, 2));
  // Duplicate data deduplicates in the content store.
  SubmissionPackage duplicate = MakeSubmission(large, 3);
  (void)archive.Deposit(duplicate);

  TextTable table;
  table.SetTitle("\nArchive holdings and store accounting:");
  table.SetHeader({"seq", "title", "files", "package bytes"});
  uint64_t package_total = 0;
  for (const HoldingSummary& holding : archive.Holdings()) {
    table.AddRow({std::to_string(holding.deposit_sequence), holding.title,
                  std::to_string(holding.file_count),
                  FormatBytes(holding.total_bytes)});
    package_total += holding.total_bytes;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("logical package bytes : %s\n",
              FormatBytes(package_total).c_str());
  std::printf("physical store bytes  : %s  (content addressing "
              "deduplicates the shared payload)\n",
              FormatBytes(store.TotalBytes()).c_str());
  FixityReport report = archive.AuditFixity();
  std::printf("fixity: %llu objects checked, clean=%s\n",
              static_cast<unsigned long long>(report.objects_checked),
              report.clean() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E6: preservation-archive operations ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
