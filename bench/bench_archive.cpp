// E6 — archive operations at the core of the DASPOS mission: deposit
// (SIP -> AIP) throughput, fixity-audit rate, verified retrieval, and
// format migration, over realistic dataset payloads.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "bench_json.h"
#include "mc/generator.h"
#include "support/metrics_registry.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/threadpool.h"
#include "tiers/dataset.h"

using namespace daspos;

namespace {

std::string DatasetBlob(int events) {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 33;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "bench_dataset";
  info.producer = "bench";
  return WriteGenDataset(info, generator.GenerateMany(
                                   static_cast<size_t>(events)));
}

SubmissionPackage MakeSubmission(const std::string& blob, int salt) {
  SubmissionPackage sip;
  sip.title = "bench deposit " + std::to_string(salt);
  sip.creator = "bench";
  sip.description = "synthetic dataset";
  sip.files.push_back(
      {"data.dspc", "application/x-daspos-container", blob});
  return sip;
}

void BM_Deposit(benchmark::State& state) {
  std::string blob = DatasetBlob(static_cast<int>(state.range(0)));
  int salt = 0;
  for (auto _ : state) {
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, ++salt));
    benchmark::DoNotOptimize(id);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
  state.SetLabel(std::to_string(state.range(0)) + " events/file");
}
BENCHMARK(BM_Deposit)->Arg(50)->Arg(500);

void BM_FixityAudit(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(100);
  for (int i = 0; i < state.range(0); ++i) {
    SubmissionPackage sip = MakeSubmission(blob, i);
    sip.files[0].bytes += std::to_string(i);  // distinct objects
    (void)archive.Deposit(sip);
  }
  for (auto _ : state) {
    FixityReport report = archive.AuditFixity();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
  state.SetLabel(std::to_string(state.range(0)) + " packages");
}
BENCHMARK(BM_FixityAudit)->Arg(4)->Arg(32);

void BM_VerifiedRetrieve(benchmark::State& state) {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string blob = DatasetBlob(200);
  auto id = archive.Deposit(MakeSubmission(blob, 0));
  for (auto _ : state) {
    auto package = archive.Retrieve(*id);
    benchmark::DoNotOptimize(package);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_VerifiedRetrieve);

void BM_Migrate(benchmark::State& state) {
  std::string blob = DatasetBlob(200);
  for (auto _ : state) {
    state.PauseTiming();
    MemoryObjectStore store;
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission(blob, 0));
    state.ResumeTiming();
    auto migrated = archive.Migrate(
        *id,
        [](const PackageFile& file) -> Result<PackageFile> {
          PackageFile out = file;
          out.logical_name += ".v2";
          return out;
        },
        "v1 -> v2");
    benchmark::DoNotOptimize(migrated);
  }
}
BENCHMARK(BM_Migrate)->Unit(benchmark::kMicrosecond);

void PrintSummary() {
  MemoryObjectStore store;
  Archive archive(&store);
  std::string small = DatasetBlob(50);
  std::string large = DatasetBlob(500);
  (void)archive.Deposit(MakeSubmission(small, 1));
  (void)archive.Deposit(MakeSubmission(large, 2));
  // Duplicate data deduplicates in the content store.
  SubmissionPackage duplicate = MakeSubmission(large, 3);
  (void)archive.Deposit(duplicate);

  TextTable table;
  table.SetTitle("\nArchive holdings and store accounting:");
  table.SetHeader({"seq", "title", "files", "package bytes"});
  uint64_t package_total = 0;
  for (const HoldingSummary& holding : archive.Holdings()) {
    table.AddRow({std::to_string(holding.deposit_sequence), holding.title,
                  std::to_string(holding.file_count),
                  FormatBytes(holding.total_bytes)});
    package_total += holding.total_bytes;
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("logical package bytes : %s\n",
              FormatBytes(package_total).c_str());
  std::printf("physical store bytes  : %s  (content addressing "
              "deduplicates the shared payload)\n",
              FormatBytes(store.TotalBytes()).c_str());
  FixityReport report = archive.AuditFixity();
  std::printf("fixity: %llu objects checked, clean=%s\n",
              static_cast<unsigned long long>(report.objects_checked),
              report.clean() ? "yes" : "NO");
}

/// Deterministic pseudo-random payload; incompressible enough that read
/// cost is honest and unique per (seed) so PutBatch blobs do not dedupe.
std::string RandomBlob(size_t bytes, uint64_t seed) {
  std::string out;
  out.resize(bytes);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>(x & 0xff);
  }
  return out;
}

double TimeMs(const std::function<void()>& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Archive read fast path (PR 4): cold Get (full SHA-256 re-hash) vs warm
/// Get (verified-digest cache hit: stat check + plain read), plus batched
/// ingest at several pool widths. Returns false if the rotted-blob
/// re-detection check fails.
bool PrintFastPath() {
  int blob_mb = daspos_bench::EnvInt("DASPOS_BENCH_BLOB_MB", 32);
  size_t blob_bytes = static_cast<size_t>(blob_mb) * 1024 * 1024;
  std::string root = (std::filesystem::temp_directory_path() /
                      "daspos_bench_archive_store")
                         .string();
  std::filesystem::remove_all(root);
  std::string blob = RandomBlob(blob_bytes, 42);

  FileObjectStore warm_store(root);
  auto id = warm_store.Put(blob);
  if (!id.ok()) {
    std::fprintf(stderr, "put failed: %s\n",
                 id.status().ToString().c_str());
    std::exit(1);
  }

  // Cold: a fresh store instance per rep — the digest cache is in-memory
  // and per-instance, so every Get re-hashes the whole blob.
  double cold_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    FileObjectStore cold_store(root);
    double ms = TimeMs([&] {
      auto got = cold_store.Get(*id);
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < cold_ms) cold_ms = ms;
  }
  // Warm: same instance; one priming Get records the verified fingerprint,
  // then every timed Get is a cache hit (stat check + read, no hash).
  (void)warm_store.Get(*id);
  double warm_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    double ms = TimeMs([&] {
      auto got = warm_store.Get(*id);
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < warm_ms) warm_ms = ms;
  }
  double warm_speedup = cold_ms / warm_ms;
  const MetricsRegistry& registry = MetricsRegistry::Global();
  uint64_t cache_hits =
      registry.CounterValue(metric_names::kArchiveCacheHitsTotal);
  uint64_t cache_misses =
      registry.CounterValue(metric_names::kArchiveCacheMissesTotal);
  uint64_t cache_invalidations =
      registry.CounterValue(metric_names::kArchiveCacheInvalidationsTotal);

  TextTable table;
  table.SetTitle("\nVerified-digest cache fast path (" +
                 std::to_string(blob_mb) + " MiB blob):");
  table.SetHeader({"path", "wall ms", "speedup"});
  table.AddRow({"cold Get (re-hash)", FormatDouble(cold_ms, 2), "1.00"});
  table.AddRow({"warm Get (cache hit)", FormatDouble(warm_ms, 2),
                FormatDouble(warm_speedup, 2)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("cache counters: %llu hit(s), %llu miss(es), "
              "%llu invalidation(s)\n",
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses),
              static_cast<unsigned long long>(cache_invalidations));
  daspos_bench::AppendBenchJson("bench_archive", "cold_get_ms", cold_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive", "warm_get_ms", warm_ms, 1);
  daspos_bench::AppendBenchJson("bench_archive", "warm_get_speedup",
                                warm_speedup, 1);

  // Rot-after-cache: modify the blob behind the warm cache; the stat
  // mismatch must force a re-hash that catches and quarantines the rot.
  std::string path = root + "/" + id->substr(0, 2) + "/" + id->substr(2);
  {
    std::string rotted = blob;
    rotted[rotted.size() / 2] ^= 0x01;
    rotted.push_back('!');  // size change guarantees a stat mismatch
    (void)std::filesystem::remove(path);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(rotted.data(), 1, rotted.size(), f);
      std::fclose(f);
    }
  }
  bool rot_caught = warm_store.Get(*id).status().IsCorruption() &&
                    warm_store.QuarantinedIds().size() == 1;
  std::printf("rot after cache: %s\n",
              rot_caught ? "caught and quarantined" : "MISSED");

  // Batched ingest: PutBatch over a pool vs the serial loop.
  int batch = daspos_bench::EnvInt("DASPOS_BENCH_BATCH_BLOBS", 16);
  size_t each = blob_bytes / 8;
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    payloads.push_back(RandomBlob(each, 1000 + static_cast<uint64_t>(i)));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());
  TextTable ingest_table;
  ingest_table.SetTitle("\nBatched ingest (" + std::to_string(batch) +
                        " blobs x " + FormatBytes(each) + "):");
  ingest_table.SetHeader({"threads", "wall ms", "speedup"});
  std::filesystem::remove_all(root + "_serial");
  FileObjectStore serial_store(root + "_serial");
  double serial_ms = TimeMs([&] {
    auto ids = serial_store.PutBatch(blobs, nullptr);
    benchmark::DoNotOptimize(ids);
  });
  ingest_table.AddRow({"1 (serial)", FormatDouble(serial_ms, 2), "1.00"});
  daspos_bench::AppendBenchJson("bench_archive", "putbatch_ms", serial_ms,
                                1);
  for (size_t threads : {2u, 4u}) {
    std::string tree = root + "_t" + std::to_string(threads);
    std::filesystem::remove_all(tree);
    FileObjectStore store(tree);
    ThreadPool pool(threads);
    double ms = TimeMs([&] {
      auto ids = store.PutBatch(blobs, &pool);
      benchmark::DoNotOptimize(ids);
    });
    ingest_table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                         FormatDouble(serial_ms / ms, 2)});
    daspos_bench::AppendBenchJson("bench_archive", "putbatch_ms", ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_archive", "putbatch_speedup",
                                  serial_ms / ms,
                                  static_cast<int>(threads));
    std::filesystem::remove_all(tree);
  }
  std::printf("%s\n", ingest_table.Render().c_str());
  std::filesystem::remove_all(root);
  std::filesystem::remove_all(root + "_serial");
  return rot_caught;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E6: preservation-archive operations ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return PrintFastPath() ? 0 : 1;
}
