// E8 — bit-preservation economics: scrub throughput over replicated
// file stores (with injected rot to exercise the repair path), the cost
// of a read-repair relative to a healthy read, and copy-verify-swap
// migration bandwidth. Each section self-checks (rot repaired, bytes
// verified) so a correctness break fails the bench run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "archive/migrate.h"
#include "archive/object_store.h"
#include "archive/replicated_store.h"
#include "archive/scrub.h"
#include "bench_json.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/threadpool.h"

using namespace daspos;

namespace {

namespace fs = std::filesystem;

/// Deterministic pseudo-random payload, unique per seed so objects do not
/// deduplicate in the content store.
std::string RandomBlob(size_t bytes, uint64_t seed) {
  std::string out;
  out.resize(bytes);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>(x & 0xff);
  }
  return out;
}

double TimeMs(const std::function<void()>& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string BlobPath(const std::string& root, const std::string& id) {
  return root + "/" + id.substr(0, 2) + "/" + id.substr(2);
}

/// Flips one byte of an object's on-disk copy in `root` (silent bit rot).
void Rot(const std::string& root, const std::string& id) {
  const std::string path = BlobPath(root, id);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return;
  int c = std::fgetc(f);
  std::fseek(f, 0, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
}

struct Fleet {
  std::string base;
  std::vector<std::string> roots;
  std::vector<std::string> ids;
};

/// Builds three fresh replica roots under `tag` holding `objects` blobs of
/// `object_bytes` each, then rots every eighth object on the middle
/// replica — the position neither a Get-path read-repair nor the primary
/// replica would heal for free.
Fleet BuildFleet(const std::string& tag, int objects, size_t object_bytes) {
  Fleet fleet;
  fleet.base = (fs::temp_directory_path() / ("daspos_bench_bitpres_" + tag))
                   .string();
  fs::remove_all(fleet.base);
  for (int r = 0; r < 3; ++r) {
    fleet.roots.push_back(fleet.base + "/rep" + std::to_string(r));
  }
  FileObjectStore r0(fleet.roots[0]), r1(fleet.roots[1]),
      r2(fleet.roots[2]);
  ReplicatedObjectStore store({&r0, &r1, &r2});
  for (int i = 0; i < objects; ++i) {
    auto id = store.Put(
        RandomBlob(object_bytes, 7000 + static_cast<uint64_t>(i)));
    if (id.ok()) fleet.ids.push_back(*id);
  }
  for (size_t i = 0; i < fleet.ids.size(); i += 8) {
    Rot(fleet.roots[1], fleet.ids[i]);
  }
  return fleet;
}

/// Scrub throughput: a full fixity pass over three replicas at several
/// pool widths, repairing the injected rot each time. Returns false if a
/// pass misses a repair or does not come back clean.
bool ScrubSection(int objects, size_t object_bytes) {
  const uint64_t expected_repairs =
      (static_cast<uint64_t>(objects) + 7) / 8;
  TextTable table;
  table.SetTitle("\nScrub farm (" + std::to_string(objects) + " objects x " +
                 FormatBytes(object_bytes) + " x 3 replicas, " +
                 std::to_string(expected_repairs) + " rotted):");
  table.SetHeader({"threads", "wall ms", "objects/s", "speedup"});
  bool clean = true;
  double serial_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    Fleet fleet = BuildFleet("scrub_t" + std::to_string(threads), objects,
                             object_bytes);
    FileObjectStore r0(fleet.roots[0]), r1(fleet.roots[1]),
        r2(fleet.roots[2]);
    ScrubOptions options;
    options.cursor_dir = fleet.base + "/cursor";
    ThreadPool pool(threads);
    if (threads > 1) options.pool = &pool;
    Result<ScrubReport> report(ScrubReport{});
    double ms = TimeMs([&] {
      report = ScrubReplicas({&r0, &r1, &r2}, options);
      benchmark::DoNotOptimize(report);
    });
    if (!report.ok() || report->repaired != expected_repairs ||
        report->Verdict() != ScrubVerdict::kPass) {
      std::fprintf(stderr, "scrub t=%zu missed repairs: %s\n", threads,
                   report.ok() ? report->RenderText().c_str()
                               : report.status().ToString().c_str());
      clean = false;
    }
    if (threads == 1) serial_ms = ms;
    double per_s = static_cast<double>(objects) / (ms / 1000.0);
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(per_s, 1), FormatDouble(serial_ms / ms, 2)});
    daspos_bench::AppendBenchJson("bench_bit_preservation", "scrub_ms", ms,
                                  static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_bit_preservation",
                                  "scrub_objects_per_s", per_s,
                                  static_cast<int>(threads));
    if (threads > 1) {
      daspos_bench::AppendBenchJson("bench_bit_preservation",
                                    "scrub_speedup", serial_ms / ms,
                                    static_cast<int>(threads));
    }
    fs::remove_all(fleet.base);
  }
  std::printf("%s\n", table.Render().c_str());
  return clean;
}

/// Read-repair latency: a Get that detects rot on the first replica, falls
/// back, and heals in place, against a Get over healthy replicas. Returns
/// false if the repaired copy does not verify afterwards.
bool ReadRepairSection(size_t object_bytes) {
  Fleet fleet = BuildFleet("readrepair", /*objects=*/16, object_bytes);
  FileObjectStore r0(fleet.roots[0]), r1(fleet.roots[1]),
      r2(fleet.roots[2]);
  ReplicatedObjectStore store({&r0, &r1, &r2});
  // ids[1] is not a multiple-of-8 index, so BuildFleet left its middle
  // replica intact: the timed Get repairs exactly one rotted copy.
  const std::string& id = fleet.ids[1];

  double healthy_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    double ms = TimeMs([&] {
      auto got = store.Get(id);
      benchmark::DoNotOptimize(got);
    });
    if (rep == 0 || ms < healthy_ms) healthy_ms = ms;
  }
  Rot(fleet.roots[0], id);
  double repair_ms = TimeMs([&] {
    auto got = store.Get(id);
    benchmark::DoNotOptimize(got);
  });
  bool healed = r0.Verify(id).ok();

  TextTable table;
  table.SetTitle("\nRead-repair cost (" + FormatBytes(object_bytes) +
                 " object):");
  table.SetHeader({"path", "wall ms"});
  table.AddRow({"healthy Get", FormatDouble(healthy_ms, 3)});
  table.AddRow({"Get + read-repair", FormatDouble(repair_ms, 3)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("rotted primary after repair: %s\n",
              healed ? "verifies clean" : "STILL ROTTED");
  daspos_bench::AppendBenchJson("bench_bit_preservation", "healthy_get_ms",
                                healthy_ms, 1);
  daspos_bench::AppendBenchJson("bench_bit_preservation",
                                "read_repair_get_ms", repair_ms, 1);
  fs::remove_all(fleet.base);
  return healed;
}

/// Copy-verify-swap migration bandwidth: every object copied to a fresh
/// generation and re-hashed on the target before the marker swaps.
/// Returns false if the swap happens without full verification.
bool MigrateSection(int objects, size_t object_bytes) {
  TextTable table;
  table.SetTitle("\nGeneration migration (" + std::to_string(objects) +
                 " objects x " + FormatBytes(object_bytes) + "):");
  table.SetHeader({"threads", "wall ms", "MiB/s", "speedup"});
  bool clean = true;
  double serial_ms = 0.0;
  const double total_mib = static_cast<double>(objects) *
                           static_cast<double>(object_bytes) /
                           (1024.0 * 1024.0);
  for (size_t threads : {1u, 4u}) {
    std::string base = (fs::temp_directory_path() /
                        ("daspos_bench_migrate_t" + std::to_string(threads)))
                           .string();
    fs::remove_all(base);
    FileObjectStore source(base + "/source");
    for (int i = 0; i < objects; ++i) {
      (void)source.Put(
          RandomBlob(object_bytes, 9000 + static_cast<uint64_t>(i)));
    }
    FileObjectStore target(base + "/target");
    MigrateOptions options;
    options.state_dir = base + "/state";
    ThreadPool pool(threads);
    if (threads > 1) options.pool = &pool;
    Result<MigrateReport> report(MigrateReport{});
    double ms = TimeMs([&] {
      report = MigrateGeneration(source, target, options);
      benchmark::DoNotOptimize(report);
    });
    if (!report.ok() ||
        report->verified != static_cast<uint64_t>(objects) ||
        ReadGeneration(options.state_dir) != 1u) {
      std::fprintf(stderr, "migrate t=%zu failed: %s\n", threads,
                   report.ok() ? report->RenderText().c_str()
                               : report.status().ToString().c_str());
      clean = false;
    }
    if (threads == 1) serial_ms = ms;
    double mib_per_s = total_mib / (ms / 1000.0);
    table.AddRow({std::to_string(threads), FormatDouble(ms, 2),
                  FormatDouble(mib_per_s, 1), FormatDouble(serial_ms / ms, 2)});
    daspos_bench::AppendBenchJson("bench_bit_preservation", "migrate_ms",
                                  ms, static_cast<int>(threads));
    daspos_bench::AppendBenchJson("bench_bit_preservation",
                                  "migrate_mib_per_s", mib_per_s,
                                  static_cast<int>(threads));
    if (threads > 1) {
      daspos_bench::AppendBenchJson("bench_bit_preservation",
                                    "migrate_speedup", serial_ms / ms,
                                    static_cast<int>(threads));
    }
    fs::remove_all(base);
  }
  std::printf("%s\n", table.Render().c_str());
  return clean;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E8: bit-preservation operations ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int objects = daspos_bench::EnvInt("DASPOS_BENCH_SCRUB_OBJECTS", 512);
  int object_kb = daspos_bench::EnvInt("DASPOS_BENCH_OBJECT_KB", 256);
  size_t object_bytes = static_cast<size_t>(object_kb) * 1024;
  bool ok = ScrubSection(objects, object_bytes);
  ok = ReadRepairSection(object_bytes * 16) && ok;
  ok = MigrateSection(objects / 2, object_bytes) && ok;
  return ok ? 0 : 1;
}
