// The RECAST use case (§2.3): a theorist submits a new-physics model (a
// heavy Z' at several masses) to the experiment's preserved dimuon search
// through the front end; the closed back end re-runs the full preserved
// chain; the experiment approves; the theorist reads exclusion limits.
#include <cstdio>

#include "core/bridge.h"
#include "event/pdg.h"
#include "recast/frontend.h"
#include "support/table.h"
#include "workflow/steps.h"

using namespace daspos;
using namespace daspos::recast;

namespace {

RecastRequest MakeRequest(const std::string& search, double mass,
                          double xsec_pb) {
  GeneratorConfig model;
  model.process = Process::kZPrimeToLL;
  model.zprime_mass = mass;
  model.zprime_width = 0.03 * mass;
  model.lepton_flavor = pdg::kMuon;
  model.seed = 20140321;

  RecastRequest request;
  request.search_name = search;
  request.requester = "theorist@pheno.example";
  request.model = GeneratorConfigToJson(model);
  request.model_cross_section_pb = xsec_pb;
  request.event_count = 400;
  return request;
}

}  // namespace

int main() {
  std::printf("=== RECAST reinterpretation of a preserved dimuon search ===\n\n");

  // Experiment side: install the preserved search in the closed back end.
  RecastBackEnd backend;
  if (auto s = backend.RegisterSearch(DileptonResonanceSearch()); !s.ok()) {
    std::printf("backend setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  RecastFrontEnd frontend(&backend);
  std::printf("public catalog: ");
  for (const std::string& name : frontend.Catalog()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // Theorist side: scan Z' masses at a fixed model cross section.
  const double xsec_pb = 0.05;
  std::vector<std::string> ids;
  for (double mass : {500.0, 700.0, 900.0, 1100.0, 1300.0}) {
    auto id = frontend.Submit(
        MakeRequest("DASPOS_EXO_14_001", mass, xsec_pb));
    if (!id.ok()) {
      std::printf("submit failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(*id);
  }
  std::printf("submitted %zu requests (sigma = %.3f pb each)\n", ids.size(),
              xsec_pb);

  // Experiment side: process the queue and approve the releases.
  (void)frontend.ProcessQueue();
  for (const std::string& id : ids) (void)frontend.Approve(id);
  std::printf("back end simulated %llu full-chain events\n\n",
              static_cast<unsigned long long>(backend.events_simulated()));

  // Theorist side: read the released limits.
  TextTable table;
  table.SetTitle("Z' exclusion scan (full-simulation RECAST back end)");
  table.SetHeader({"m(Z') [GeV]", "best region", "efficiency", "mu95",
                   "excluded at sigma=0.05pb?"});
  double masses[] = {500.0, 700.0, 900.0, 1100.0, 1300.0};
  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = frontend.GetResult(ids[i]);
    if (!result.ok()) {
      std::printf("result %s withheld: %s\n", ids[i].c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    const RegionResult* best = nullptr;
    for (const RegionResult& region : result->regions) {
      if (region.upper_limit_mu <= 0.0) continue;
      if (best == nullptr || region.upper_limit_mu < best->upper_limit_mu) {
        best = &region;
      }
    }
    char mass_text[32], eff_text[32], limit_text[32];
    std::snprintf(mass_text, sizeof(mass_text), "%.0f", masses[i]);
    std::snprintf(eff_text, sizeof(eff_text), "%.3f",
                  best != nullptr ? best->efficiency : 0.0);
    std::snprintf(limit_text, sizeof(limit_text), "%.3f",
                  result->BestUpperLimit());
    table.AddRow({mass_text, best != nullptr ? best->region : "-", eff_text,
                  limit_text, result->Excluded() ? "YES" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "mu95 < 1 means the model at its nominal cross section is excluded\n"
      "by the preserved data; the analysis never left the experiment.\n");
  return 0;
}
