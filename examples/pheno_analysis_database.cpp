// The Les Houches recommendations in action (§2.3): a phenomenology
// community maintains a common analysis database of declarative analysis
// descriptions ("object definitions, cuts, and all other information
// necessary to reproduce or use the results"). A preserved search is
// deposited once; anyone can later retrieve it, inspect it as text, and run
// the exact cutflow over new model samples — no experiment code base
// required.
#include <cstdio>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "lhada/database.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "tiers/dataset.h"

using namespace daspos;

namespace {

constexpr char kSearchDescription[] = R"(
# Dimuon resonance search, preserved as a Les Houches analysis description.
analysis dimuon_resonance_2014

object muons
  take muon
  select pt > 25
  select abseta < 2.5

cut preselection
  select count(muons) >= 2

cut opposite_sign
  require preselection
  select oppositecharge(muons[0], muons[1])

cut sr_mll_400
  require opposite_sign
  select mass(muons[0], muons[1]) > 400
)";

std::vector<AodEvent> MakeSample(Process process, double zprime_mass,
                                 int n) {
  GeneratorConfig gen_config;
  gen_config.process = process;
  gen_config.zprime_mass = zprime_mass;
  gen_config.zprime_width = 0.03 * zprime_mass;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 31415;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = 27182;
  DetectorSimulation simulation(sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = sim_config.geometry;
  reco_config.calib = sim_config.calib;
  Reconstructor reconstructor(reco_config);
  std::vector<AodEvent> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(AodEvent::FromReco(
        reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1))));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Common analysis database (Les Houches Rec. 1b) ===\n\n");

  // The experiment (or the original analysts) submit the description once.
  lhada::AnalysisDatabase database;
  auto name = database.Submit(kSearchDescription);
  if (!name.ok()) {
    std::printf("submission rejected: %s\n",
                name.status().ToString().c_str());
    return 1;
  }
  std::printf("submitted '%s'; database now holds: ", name->c_str());
  for (const std::string& entry : database.Names()) {
    std::printf("%s ", entry.c_str());
  }
  std::printf("\n\n");

  // A phenomenologist finds it by keyword and reads the canonical text.
  auto hits = database.Search("resonance");
  std::printf("search 'resonance' -> %zu hit(s)\n", hits.size());
  auto document = database.GetDocument(hits.front());
  std::printf("--- canonical preserved description ---\n%s"
              "---------------------------------------\n\n",
              document->c_str());

  // Run the exact preserved cutflow over three samples.
  auto analysis = database.GetAnalysis(hits.front());
  if (!analysis.ok()) {
    std::printf("parse failed: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  struct Scenario {
    const char* label;
    Process process;
    double mass;
  };
  for (const Scenario& scenario :
       {Scenario{"Standard Model Z (background)", Process::kZToLL, 0.0},
        Scenario{"Z' at 600 GeV", Process::kZPrimeToLL, 600.0},
        Scenario{"Z' at 1200 GeV", Process::kZPrimeToLL, 1200.0}}) {
    auto sample = MakeSample(scenario.process, scenario.mass, 300);
    lhada::Cutflow cutflow = analysis->Run(sample);
    std::printf("%s\n%s\n", scenario.label, cutflow.Render().c_str());
  }
  std::printf(
      "The SM background is fully rejected while resonances populate the\n"
      "signal region; at very high mass the opposite-sign efficiency drops —\n"
      "nearly straight TeV tracks suffer charge confusion, a detector effect\n"
      "the cutflow exposes. All reproduced from a text document alone.\n");
  return 0;
}
