// Curation walkthrough (§2.2 / Appendix A): fill in the Data Interview
// Template, render the maturity report, deposit a dataset with its
// documentation in the archive, audit fixity (catching injected bit rot),
// and migrate the holdings to a new format version with lineage.
#include <cstdio>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "event/pdg.h"
#include "interview/interview.h"
#include "mc/generator.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "tiers/dataset.h"

using namespace daspos;

int main() {
  std::printf("=== Archive curation walkthrough ===\n\n");

  // --- the documentation: a filled-in data interview --------------------
  interview::DataInterview interview = interview::ExampleInterviews()[3];
  std::printf("%s\n", interview.RenderReport().c_str());

  // --- a dataset to preserve -------------------------------------------
  GeneratorConfig config;
  config.process = Process::kDMeson;
  config.seed = 99;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "dmeson_gen_run99";
  info.producer = "generation v1.0";
  info.description = "charm sample for the D-lifetime master class";
  std::string dataset_blob = WriteGenDataset(info, generator.GenerateMany(300));

  MemoryObjectStore store;
  Archive archive(&store);
  SubmissionPackage sip;
  sip.title = "D-meson lifetime sample + documentation";
  sip.creator = "LHCb-like outreach team";
  sip.description = info.description;
  sip.keywords = {"charm", "lifetime", "master class"};
  sip.context = interview.ToJson();
  sip.files.push_back({"data/dmeson_gen.dspc",
                       "application/x-daspos-container", dataset_blob});
  sip.files.push_back({"docs/interview.json", "application/json",
                       interview.ToJson().Dump(2)});
  auto archive_id = archive.Deposit(sip);
  if (!archive_id.ok()) {
    std::printf("deposit failed: %s\n",
                archive_id.status().ToString().c_str());
    return 1;
  }
  std::printf("deposited package %s (%s of data)\n\n",
              archive_id->substr(0, 16).c_str(),
              FormatBytes(dataset_blob.size()).c_str());

  // --- fixity: clean audit, inject bit rot, audit again -----------------
  auto clean = archive.AuditFixity();
  std::printf("fixity audit #1: %llu objects, clean=%s\n",
              static_cast<unsigned long long>(clean.objects_checked),
              clean.clean() ? "yes" : "NO");
  std::string data_object_id = Sha256::HashHex(dataset_blob);
  (void)store.CorruptForTesting(data_object_id, dataset_blob.size() / 2);
  auto dirty = archive.AuditFixity();
  std::printf("fixity audit #2 (after injected bit flip): corrupted=%zu "
              "-> damage detected: %s\n",
              dirty.corrupted_objects.size(),
              dirty.clean() ? "NO (BUG!)" : "yes");
  // Repair by re-depositing the good bytes (content addressing heals).
  (void)store.Put(dataset_blob);
  std::printf("re-put pristine bytes: audit #3 clean=%s\n\n",
              archive.AuditFixity().clean() ? "yes" : "NO");

  // --- format migration --------------------------------------------------
  auto migrated_id = archive.Migrate(
      *archive_id,
      [](const PackageFile& file) -> Result<PackageFile> {
        PackageFile out = file;
        if (file.media_type == "application/json") {
          // Stand-in for a real schema migration.
          out.logical_name += ".v2";
        }
        return out;
      },
      "interview schema v1 -> v2");
  if (!migrated_id.ok()) {
    std::printf("migration failed: %s\n",
                migrated_id.status().ToString().c_str());
    return 1;
  }
  std::printf("holdings after migration:\n");
  for (const HoldingSummary& holding : archive.Holdings()) {
    std::printf("  #%llu %-45s %2zu files %10s%s\n",
                static_cast<unsigned long long>(holding.deposit_sequence),
                holding.title.c_str(), holding.file_count,
                FormatBytes(holding.total_bytes).c_str(),
                holding.migrated_from.empty()
                    ? ""
                    : ("  [migrated from " +
                       holding.migrated_from.substr(0, 12) + "...]")
                          .c_str());
  }
  std::printf("\noriginals are retained; lineage is recorded in the AIP.\n");
  return 0;
}
