// Outreach master class (paper §2.1 / Table 1): produce AOD-level events,
// convert them into each experiment's Level-2 dialect, route everything
// through the proposed common format, and run the Z-mass master class on
// the converted data — demonstrating "easy comparison of data from
// different experiments on a common platform".
#include <cstdio>
#include <vector>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "level2/dialects.h"
#include "level2/display.h"
#include "level2/masterclass.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "support/strings.h"

using namespace daspos;
using namespace daspos::level2;

int main() {
  std::printf("=== Z-peak master class on converted Level-2 data ===\n\n");

  // Produce a Z->mumu sample through the full chain.
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 42;
  EventGenerator generator(gen_config);

  SimulationConfig sim_config;
  sim_config.seed = 43;
  DetectorSimulation simulation(sim_config);

  ReconstructionConfig reco_config;
  reco_config.geometry = sim_config.geometry;
  reco_config.calib = sim_config.calib;
  Reconstructor reconstructor(reco_config);

  const int n_events = 600;
  std::vector<CommonEvent> common_events;
  for (int i = 0; i < n_events; ++i) {
    RecoEvent reco =
        reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1));
    common_events.push_back(CommonEvent::FromReco(reco));
  }
  std::printf("produced %d events through gen->sim->reco\n\n", n_events);

  // Export one event to every dialect; sizes differ, content agrees.
  std::printf("one event in each experiment dialect:\n");
  for (Experiment experiment : kAllExperiments) {
    const Level2Codec& codec = CodecFor(experiment);
    std::string encoded = codec.Encode(common_events.front());
    std::printf("  %-6s %-26s %8s  self-documenting: %s\n",
                std::string(ExperimentName(experiment)).c_str(),
                codec.FormatName().c_str(),
                FormatBytes(encoded.size()).c_str(),
                codec.SelfDocumenting() ? "yes" : "no");
  }

  // Route the whole sample through the LHCb dialect and back (a student
  // downloading "LHCb data" into the common analysis portal).
  std::vector<CommonEvent> via_lhcb;
  for (const CommonEvent& event : common_events) {
    std::string lhcb_bytes = CodecFor(Experiment::kLhcb).Encode(event);
    auto decoded = CodecFor(Experiment::kLhcb).Decode(lhcb_bytes);
    if (!decoded.ok()) {
      std::printf("dialect round-trip failed: %s\n",
                  decoded.status().ToString().c_str());
      return 1;
    }
    via_lhcb.push_back(*decoded);
  }

  // Run the master class on the converted sample.
  auto result = ZMassExercise(via_lhcb);
  if (!result.ok()) {
    std::printf("exercise failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nZ-mass master class (on data converted via LHCb dialect):\n");
  std::printf("  candidates in histogram : %.0f\n",
              result->histogram.Integral());
  std::printf("  measured m(Z) = %.2f +- %.2f GeV (PDG: %.4f)\n",
              result->measured, result->uncertainty, result->reference);
  std::printf("  consistent with reference: %s\n",
              result->ConsistentWithReference() ? "yes" : "no");

  // Render one event-display scene (what the student actually looks at).
  Scene scene = BuildScene(common_events.front());
  std::printf("\nevent display scene for run %u event %llu: "
              "%zu tracks, %zu towers (JSON: %s)\n",
              scene.run, static_cast<unsigned long long>(scene.event),
              scene.tracks.size(), scene.towers.size(),
              FormatBytes(scene.ToJson().Dump().size()).c_str());
  return result->ConsistentWithReference() ? 0 : 1;
}
