// The RIVET use case (§2.3): compare two Monte-Carlo generator tunes
// against preserved reference data using an analysis from the public
// repository. The reference travels as YODA-like plain text — the light,
// portable preservation format §2.4 credits RIVET with.
#include <cstdio>

#include "hist/yoda_io.h"
#include "mc/generator.h"
#include "rivet/analysis.h"
#include "rivet/registry.h"

using namespace daspos;
using namespace daspos::rivet;

namespace {

std::vector<Histo1D> RunTune(double activity, uint64_t seed, int events) {
  GeneratorConfig config;
  config.process = Process::kMinimumBias;
  config.tune_activity = activity;
  config.seed = seed;
  EventGenerator generator(config);

  AnalysisHandler handler;
  handler.Add(
      AnalysisRegistry::Global().Create("DASPOS_2014_CHARGED").value());
  handler.Run(generator.GenerateMany(static_cast<size_t>(events)));
  return handler.Finalize();
}

}  // namespace

int main() {
  std::printf("=== RIVET-style generator validation ===\n\n");
  std::printf("repository contents:\n");
  for (const std::string& name : AnalysisRegistry::Global().Names()) {
    auto analysis = AnalysisRegistry::Global().Create(name);
    std::printf("  %-22s %s\n", name.c_str(),
                analysis.ok() ? (*analysis)->Summary().c_str() : "?");
  }

  // "Experimental data": the nominal tune, preserved as text.
  const int n_events = 4000;
  std::string preserved = WriteYoda(RunTune(1.0, 1111, n_events));
  std::printf("\npreserved reference: %zu bytes of plain text\n",
              preserved.size());
  auto reference = ReadYoda(preserved);
  if (!reference.ok()) {
    std::printf("cannot read reference: %s\n",
                reference.status().ToString().c_str());
    return 1;
  }

  // Candidate tunes: one compatible (same physics, new statistics), one
  // with doubled underlying-event activity.
  struct Tune {
    const char* name;
    double activity;
    uint64_t seed;
  };
  for (const Tune& tune : {Tune{"tune-A (nominal)", 1.0, 2222},
                           Tune{"tune-B (2x activity)", 2.0, 3333}}) {
    auto produced = RunTune(tune.activity, tune.seed, n_events);
    auto validation = CompareToReference(produced, *reference);
    if (!validation.ok()) {
      std::printf("comparison failed: %s\n",
                  validation.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s vs reference:\n", tune.name);
    std::printf("  histograms compared : %d\n",
                validation->histograms_compared);
    std::printf("  worst chi2/ndof     : %.2f\n",
                validation->worst_reduced_chi2);
    std::printf("  verdict             : %s\n",
                validation->Compatible(3.0) ? "COMPATIBLE with data"
                                            : "EXCLUDED by data");
  }
  return 0;
}
