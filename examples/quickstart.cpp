// Quickstart: the complete DASPOS loop in one program.
//
//   1. run the standard HEP processing chain (generate -> simulate ->
//      reconstruct -> AOD -> derive) under the workflow engine, with
//      provenance capture and a conditions database;
//   2. capture the physics analysis (a RIVET-style plugin + its reference
//      histograms) as a preservation package;
//   3. deposit the package in the content-addressed archive;
//   4. retrieve it and RE-EXECUTE the analysis, validating bit-identical
//      reproduction against the preserved reference.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "archive/object_store.h"
#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "core/preserved_analysis.h"
#include "event/pdg.h"
#include "interview/interview.h"
#include "support/strings.h"
#include "workflow/steps.h"

using namespace daspos;

int main() {
  std::printf("=== DASPOS quickstart ===\n\n");

  // --- 1. the standard processing chain --------------------------------
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 2014;
  gen_config.pileup_mean = 5.0;

  SimulationConfig sim_config;
  sim_config.seed = 2015;

  ConditionsDb conditions;
  CalibrationSet calib;
  if (auto s = conditions.Append(kCalibrationTag, 1, calib.ToPayload());
      !s.ok()) {
    std::printf("conditions setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, 200, "zmm_gen"), {},
      "zmm_gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, /*run=*/7, "zmm_raw"),
      {"zmm_gen"}, "zmm_raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "zmm_reco"),
      {"zmm_raw"}, "zmm_reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("zmm_aod"),
                         {"zmm_reco"}, "zmm_aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
          SlimSpec::LeptonsOnly(15.0), "zmm_derived"),
      {"zmm_aod"}, "zmm_derived");

  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  auto report = workflow.Execute(&context, &provenance);
  if (!report.ok()) {
    std::printf("workflow failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("processing chain (%zu steps):\n", report->steps.size());
  for (const auto& step : report->steps) {
    std::printf("  %-16s -> %-12s %s\n", step.step.c_str(),
                step.output.c_str(), FormatBytes(step.output_bytes).c_str());
  }
  std::printf("conditions lookups served: %llu\n",
              static_cast<unsigned long long>(conditions.lookup_count()));
  std::printf("provenance records: %zu (missing parents: %zu)\n\n",
              provenance.size(), provenance.MissingParents().size());

  // --- 2. capture the analysis -----------------------------------------
  auto analysis =
      CaptureAnalysis("zll-lineshape-2014", "DASPOS_2014_ZLL", gen_config,
                      /*event_count=*/200);
  if (!analysis.ok()) {
    std::printf("capture failed: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  analysis->physics_summary = "Z -> mu mu line shape (quickstart)";
  analysis->provenance_json = provenance.Serialize();
  auto snapshot =
      ConditionsSnapshot::Capture(conditions, /*run=*/7, {kCalibrationTag});
  if (snapshot.ok()) analysis->conditions_snapshot = snapshot->Serialize();
  analysis->interview = interview::ExampleInterviews()[2].ToJson();
  std::printf("captured analysis '%s' (%zu bytes of reference data)\n",
              analysis->name.c_str(), analysis->reference_yoda.size());

  // --- 3. deposit in the archive ---------------------------------------
  MemoryObjectStore object_store;
  Archive archive(&object_store);
  auto archive_id = DepositAnalysis(&archive, *analysis);
  if (!archive_id.ok()) {
    std::printf("deposit failed: %s\n",
                archive_id.status().ToString().c_str());
    return 1;
  }
  std::printf("deposited as %s\n", archive_id->substr(0, 16).c_str());
  auto audit = archive.AuditFixity();
  std::printf("fixity audit: %llu objects checked, clean=%s\n\n",
              static_cast<unsigned long long>(audit.objects_checked),
              audit.clean() ? "yes" : "NO");

  // --- 4. retrieve and re-execute --------------------------------------
  auto restored = RetrieveAnalysis(archive, *archive_id);
  if (!restored.ok()) {
    std::printf("retrieve failed: %s\n",
                restored.status().ToString().c_str());
    return 1;
  }
  auto reexecution = Reexecute(*restored);
  if (!reexecution.ok()) {
    std::printf("re-execution failed: %s\n",
                reexecution.status().ToString().c_str());
    return 1;
  }
  std::printf("re-execution: %d histograms compared, worst chi2/ndof = %g\n",
              reexecution->histograms_compared,
              reexecution->worst_reduced_chi2);
  std::printf("validation %s\n",
              reexecution->validated ? "PASSED (bit-identical reproduction)"
                                     : "FAILED");
  return reexecution->validated ? 0 : 1;
}
