// daspos — command-line companion for the preservation stack.
//
//   daspos inspect <file>                     identify + summarize a file
//   daspos generate <process> <n> <seed> <out>  produce a GEN dataset
//   daspos holdings <archive-dir>             list archive packages
//   daspos audit <archive-dir>                fixity-audit an archive
//   daspos ingest <archive-dir> <title> <f..> deposit files as a package
//   daspos retrieve <archive-dir> <id> <dir>  extract a package
//   daspos lhada-run <description> <aod>      run a cutflow
//   daspos lhada-check <description>          validate + canonicalize
//   daspos lint [flags] <artifact...>         static preservation checks
//   daspos chain <process> <n> <seed>         run the standard chain
//   daspos metrics [<process> <n> <seed>]     Prometheus metrics dump
//   daspos scrub <replica-store...>           incremental fixity scrub+repair
//   daspos migrate <src-store> <dst-store>    copy-verify-swap migration
//   daspos repack <src-store> <dst-dir>       repack a store into packfiles
//   daspos connect <host:port> <verb> [...]   talk to a running dasposd
//
// Every <archive-store> argument is a backend spec: `file:DIR` (loose
// sharded files), `pack:DIR` (packfiles), `pack+z:DIR` (packfiles with
// block compression), or a bare DIR whose on-disk layout is sniffed.
//
// Exit code 0 on success, 1 on any error (errors go to stderr). `lint`
// exits 1 when any finding reaches the --fail-on threshold (default:
// error), which makes it usable as a CI gate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.h"
#include "archive/backend.h"
#include "archive/migrate.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "archive/scrub.h"
#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "detsim/simulation.h"
#include "reco/reconstruction.h"
#include "hist/yoda_io.h"
#include "level2/common.h"
#include "level2/display.h"
#include "level2/files.h"
#include "lhada/lhada.h"
#include "lint/checks.h"
#include "lint/diagnostics.h"
#include "lint/linter.h"
#include "mc/generator.h"
#include "net/client.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "tiers/dataset.h"
#include "tiers/skimslim.h"
#include "validate/validate.h"
#include "workflow/journal.h"
#include "workflow/steps.h"

using namespace daspos;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "daspos: %s\n", message.c_str());
  return 1;
}

/// Resolves a worker thread count for a command: an explicit --threads=N
/// value wins, then the DASPOS_THREADS environment variable, then the
/// fallback. 0 means one worker per hardware thread; 1 forces strictly
/// serial execution.
Result<size_t> ResolveThreads(const std::string& flag_value,
                              size_t fallback = 1) {
  std::string text = flag_value;
  if (text.empty()) {
    const char* env = std::getenv("DASPOS_THREADS");
    if (env != nullptr && env[0] != '\0') text = env;
  }
  if (text.empty()) return fallback;
  auto parsed = ParseU64(text);
  if (!parsed.ok() || *parsed > 4096) {
    return Status::InvalidArgument("bad thread count '" + text + "'");
  }
  return static_cast<size_t>(*parsed);
}

/// A pool sized for `threads` workers, or null (serial) for threads <= 1.
/// 0 expands to the hardware concurrency.
std::unique_ptr<ThreadPool> MakePool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  daspos inspect <file>\n"
               "  daspos generate <process> <n-events> <seed> <out-file> "
               "[gen|raw|reco|aod]\n"
               "  daspos holdings <archive-store>\n"
               "  daspos audit <archive-store> [--threads=N]\n"
               "  daspos ingest <archive-store> <title> <file...> "
               "[--threads=N]\n"
               "  daspos retrieve <archive-store> <archive-id> <out-dir>\n"
               "  daspos lhada-run <description-file> <aod-file>\n"
               "  daspos lhada-check <description-file>\n"
               "  daspos display <reco-or-aod-file> <event-index>\n"
               "  daspos convert <in-file> <from-exp> <to-exp> <out-file>\n"
               "  daspos export <reco-file> <experiment> <out-file>\n"
               "  daspos chain <process> <n-events> <seed> [threads] "
               "[--threads=N] [--json]\n"
               "               [--retries=N] [--step-timeout=SECONDS] "
               "[--keep-going]\n"
               "               [--journal=DIR] [--resume=DIR] "
               "[--trace-out=FILE]\n"
               "  daspos lint [--json] [--fail-on=info|warning|error] "
               "[--threads=N] <artifact...>\n"
               "  daspos metrics [<process> <n-events> <seed>]\n"
               "  daspos connect <host:port> ping\n"
               "  daspos connect <host:port> put <file>\n"
               "  daspos connect <host:port> get <object-id> <out-file>\n"
               "  daspos connect <host:port> verify <object-id>\n"
               "  daspos connect <host:port> put-batch <file...>\n"
               "  daspos connect <host:port> lint <file...>\n"
               "  daspos connect <host:port> chain <process> <n-events> "
               "<seed>\n"
               "  daspos connect <host:port> stat\n"
               "  daspos scrub <replica-store...> [--cursor=DIR] "
               "[--max-objects=N] [--rate=N]\n"
               "               [--batch=N] [--threads=N] [--json] "
               "[--report=FILE]\n"
               "  daspos migrate <source-store> <target-store> "
               "[--state=DIR] [--batch=N]\n"
               "               [--threads=N] [--inject-faults=SPEC] "
               "[--json]\n"
               "  daspos repack <source-store> <target-dir> [--compress] "
               "[--state=DIR]\n"
               "               [--batch=N] [--threads=N] "
               "[--inject-faults=SPEC] [--json]\n"
               "  daspos validate <archive-store> --capture=NAME "
               "[--process=P] [--events=N]\n"
               "               [--seed=N] [--analyses=A,B]\n"
               "  daspos validate <archive-store> [--json] [--threads=N] "
               "[--retries=N]\n"
               "               [--journal=DIR] [--report=FILE] "
               "[--prometheus=FILE]\n"
               "               [--campaign=NAME] [--analysis=NAME] "
               "[--inject-faults=SPEC]\n"
               "               [--fail-chi2=X] [--warn-chi2=X] "
               "[--warn-ks=X]\n"
               "processes: minbias z_ll w_lnu h_gammagamma qcd_dijet "
               "d_meson zprime_ll\n"
               "threads: --threads=N (or DASPOS_THREADS env) sizes the "
               "worker pool;\n"
               "         0 = one per hardware thread, 1 = strictly serial\n"
               "stores : file:DIR (loose sharded), pack:DIR (packfiles),\n"
               "         pack+z:DIR (compressed packfiles); a bare DIR "
               "sniffs the layout\n");
  return 1;
}

int CmdInspect(const std::string& path) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return Fail(bytes.status().ToString());

  // Self-describing container?
  if (auto reader = ContainerReader::Open(*bytes); reader.ok()) {
    auto info = DatasetInfo::FromJson(reader->metadata());
    std::printf("type    : daspos container (fixity OK)\n");
    std::printf("records : %llu\n",
                static_cast<unsigned long long>(reader->record_count()));
    std::printf("size    : %s\n", FormatBytes(bytes->size()).c_str());
    if (info.ok()) {
      std::printf("tier    : %s\n", std::string(TierName(info->tier)).c_str());
      std::printf("name    : %s\n", info->name.c_str());
      std::printf("producer: %s\n", info->producer.c_str());
      if (!info->parents.empty()) {
        std::printf("parents : %s\n", Join(info->parents, ", ").c_str());
      }
    } else {
      std::printf("metadata: %s\n", reader->metadata().Dump().c_str());
    }
    return 0;
  } else if (ContainerReader::OpenUnverified(*bytes).ok()) {
    std::printf("type    : daspos container, FIXITY FAILED (bit rot?)\n");
    return 1;
  }

  // Conditions snapshot?
  if (auto snapshot = ConditionsSnapshot::Parse(*bytes); snapshot.ok()) {
    std::printf("type: conditions snapshot for run %u, %zu tags:\n",
                snapshot->run(), snapshot->Tags().size());
    for (const std::string& tag : snapshot->Tags()) {
      std::printf("  %s\n", tag.c_str());
    }
    return 0;
  }

  // Preserved histograms?
  if (auto histograms = ReadYoda(*bytes);
      histograms.ok() && !histograms->empty()) {
    std::printf("type: YODA-like histogram set, %zu histograms:\n",
                histograms->size());
    for (const Histo1D& histogram : *histograms) {
      std::printf("  %-40s %d bins, integral %s\n",
                  histogram.path().c_str(), histogram.axis().nbins(),
                  FormatDouble(histogram.Integral(), 6).c_str());
    }
    return 0;
  }

  // Analysis description?
  if (auto description = lhada::AnalysisDescription::Parse(*bytes);
      description.ok()) {
    std::printf("type: analysis description '%s' (%zu objects, %zu cuts)\n",
                description->name().c_str(), description->objects().size(),
                description->cuts().size());
    return 0;
  }
  return Fail("unrecognized file format: " + path);
}

int CmdGenerate(const std::string& process_name, const std::string& count,
                const std::string& seed, const std::string& out,
                const std::string& tier_name) {
  Process process = Process::kMinimumBias;
  bool known = false;
  for (const ProcessInfo& info : AllProcesses()) {
    if (info.name == process_name) {
      process = info.id;
      known = true;
    }
  }
  if (!known) return Fail("unknown process '" + process_name + "'");
  auto n = ParseU64(count);
  if (!n.ok()) return Fail("bad event count '" + count + "'");
  auto seed_value = ParseU64(seed);
  if (!seed_value.ok()) return Fail("bad seed '" + seed + "'");
  if (tier_name != "gen" && tier_name != "raw" && tier_name != "reco" &&
      tier_name != "aod") {
    return Fail("tier must be gen, raw, reco, or aod");
  }

  GeneratorConfig config;
  config.process = process;
  config.seed = *seed_value;
  EventGenerator generator(config);
  std::vector<GenEvent> truth =
      generator.GenerateMany(static_cast<size_t>(*n));

  DatasetInfo info;
  info.name = process_name + "_seed" + seed + "_" + tier_name;
  info.producer = "daspos-cli generate";
  info.description = GetProcessInfo(process).description;

  std::string blob;
  if (tier_name == "gen") {
    info.tier = DataTier::kGen;
    blob = WriteGenDataset(info, truth);
  } else {
    // Run the default detector chain to the requested tier.
    SimulationConfig sim_config;
    sim_config.seed = *seed_value + 1;
    DetectorSimulation simulation(sim_config);
    std::vector<RawEvent> raw;
    raw.reserve(truth.size());
    for (const GenEvent& event : truth) {
      raw.push_back(simulation.Simulate(event, /*run_number=*/1));
    }
    if (tier_name == "raw") {
      info.tier = DataTier::kRaw;
      blob = WriteRawDataset(info, raw);
    } else {
      ReconstructionConfig reco_config;
      reco_config.geometry = sim_config.geometry;
      reco_config.calib = sim_config.calib;
      Reconstructor reconstructor(reco_config);
      std::vector<RecoEvent> reco;
      reco.reserve(raw.size());
      for (const RawEvent& event : raw) {
        reco.push_back(reconstructor.Reconstruct(event));
      }
      if (tier_name == "reco") {
        info.tier = DataTier::kReco;
        blob = WriteRecoDataset(info, reco);
      } else {
        std::vector<AodEvent> aod;
        aod.reserve(reco.size());
        for (const RecoEvent& event : reco) {
          aod.push_back(AodEvent::FromReco(event));
        }
        info.tier = DataTier::kAod;
        blob = WriteAodDataset(info, aod);
      }
    }
  }
  if (auto status = WriteStringToFile(out, blob); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("wrote %s: %llu events at tier %s, %s\n", out.c_str(),
              static_cast<unsigned long long>(*n), tier_name.c_str(),
              FormatBytes(blob.size()).c_str());
  return 0;
}

int CmdHoldings(const std::string& spec) {
  auto store = OpenObjectStore(spec);
  if (!store.ok()) return Fail(store.status().ToString());
  Archive archive(store->get());
  auto recovered = archive.RecoverCatalog();
  if (!recovered.ok()) return Fail(recovered.status().ToString());
  std::printf("%zu package(s) in %s:\n", *recovered, spec.c_str());
  for (const HoldingSummary& holding : archive.Holdings()) {
    std::printf("  %s  %-40s %2zu files %10s%s\n",
                holding.archive_id.substr(0, 12).c_str(),
                holding.title.c_str(), holding.file_count,
                FormatBytes(holding.total_bytes).c_str(),
                holding.migrated_from.empty() ? "" : " (migrated)");
  }
  return 0;
}

int CmdAudit(const std::string& spec, size_t threads) {
  // Store-walk errors around catalog recovery + audit: an unreadable store
  // enumerates as empty, so without this delta the audit of a damaged
  // archive would pass vacuously.
  const uint64_t walk_before = MetricsRegistry::Global().CounterValue(
      metric_names::kArchiveWalkErrorsTotal);
  auto store = OpenObjectStore(spec);
  if (!store.ok()) return Fail(store.status().ToString());
  Archive archive(store->get());
  auto recovered = archive.RecoverCatalog();
  if (!recovered.ok()) return Fail(recovered.status().ToString());
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  FixityReport report = archive.AuditFixity(pool.get());
  const uint64_t walk_errors =
      MetricsRegistry::Global().CounterValue(
          metric_names::kArchiveWalkErrorsTotal) -
      walk_before;
  std::printf("packages: %zu, objects checked: %llu\n", *recovered,
              static_cast<unsigned long long>(report.objects_checked));
  for (const std::string& id : report.corrupted_objects) {
    std::printf("CORRUPTED: %s\n", id.c_str());
  }
  for (const std::string& id : report.missing_objects) {
    std::printf("MISSING  : %s\n", id.c_str());
  }
  if (walk_errors > 0) {
    std::printf("WALK ERRS: %llu (store partially unreadable; audit is "
                "incomplete)\n",
                static_cast<unsigned long long>(walk_errors));
  }
  const bool clean = report.clean() && walk_errors == 0;
  std::printf("verdict: %s\n", clean ? "CLEAN" : "DAMAGED");
  return clean ? 0 : 1;
}

// Deposits local files into the archive as one package. With more than one
// worker the blobs are hashed and stored concurrently (Archive::Deposit's
// batched ingest); the resulting archive id is identical either way.
int CmdIngest(const std::string& spec, const std::string& title,
              const std::vector<std::string>& files, size_t threads) {
  auto store = OpenObjectStore(spec);
  if (!store.ok()) return Fail(store.status().ToString());
  Archive archive(store->get());
  auto recovered = archive.RecoverCatalog();
  if (!recovered.ok()) return Fail(recovered.status().ToString());

  SubmissionPackage package;
  package.title = title;
  package.creator = "daspos-cli ingest";
  for (const std::string& path : files) {
    auto bytes = ReadFileToString(path);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    PackageFile file;
    size_t slash = path.find_last_of('/');
    file.logical_name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    file.bytes = std::move(*bytes);
    package.files.push_back(std::move(file));
  }

  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  auto archive_id = archive.Deposit(package, pool.get());
  if (!archive_id.ok()) return Fail(archive_id.status().ToString());
  uint64_t total_bytes = 0;
  for (const PackageFile& file : package.files) {
    total_bytes += file.bytes.size();
  }
  // This process touched exactly one store, so the global registry totals
  // are this ingest's digest-cache activity.
  const MetricsRegistry& registry = MetricsRegistry::Global();
  std::printf("ingested %zu file(s), %s, as package %s\n",
              package.files.size(), FormatBytes(total_bytes).c_str(),
              archive_id->c_str());
  std::printf(
      "digest cache: %llu hit(s), %llu miss(es), %llu invalidation(s)\n",
      static_cast<unsigned long long>(
          registry.CounterValue(metric_names::kArchiveCacheHitsTotal)),
      static_cast<unsigned long long>(
          registry.CounterValue(metric_names::kArchiveCacheMissesTotal)),
      static_cast<unsigned long long>(registry.CounterValue(
          metric_names::kArchiveCacheInvalidationsTotal)));
  return 0;
}

int CmdRetrieve(const std::string& spec, const std::string& id,
                const std::string& out_dir) {
  auto store = OpenObjectStore(spec);
  if (!store.ok()) return Fail(store.status().ToString());
  Archive archive(store->get());
  auto package = archive.Retrieve(id);
  if (!package.ok()) return Fail(package.status().ToString());
  std::printf("package: %s\n", package->content.title.c_str());
  for (const PackageFile& file : package->content.files) {
    std::string path = out_dir + "/" + file.logical_name;
    if (auto status = WriteStringToFile(path, file.bytes); !status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("  wrote %s (%s)\n", path.c_str(),
                FormatBytes(file.bytes.size()).c_str());
  }
  return 0;
}

int CmdLhadaRun(const std::string& description_path,
                const std::string& aod_path) {
  auto description_text = ReadFileToString(description_path);
  if (!description_text.ok()) return Fail(description_text.status().ToString());
  auto description = lhada::AnalysisDescription::Parse(*description_text);
  if (!description.ok()) return Fail(description.status().ToString());
  auto aod_bytes = ReadFileToString(aod_path);
  if (!aod_bytes.ok()) return Fail(aod_bytes.status().ToString());
  auto events = ReadAodDataset(*aod_bytes);
  if (!events.ok()) return Fail(events.status().ToString());
  lhada::Cutflow cutflow = description->Run(*events);
  std::printf("analysis '%s' over %s\n%s", description->name().c_str(),
              aod_path.c_str(), cutflow.Render().c_str());
  return 0;
}

int CmdLhadaCheck(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return Fail(text.status().ToString());
  auto description = lhada::AnalysisDescription::Parse(*text);
  if (!description.ok()) return Fail(description.status().ToString());
  std::printf("%s", description->Serialize().c_str());
  return 0;
}

int CmdDisplay(const std::string& path, const std::string& index_text) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  auto index = ParseU64(index_text);
  if (!index.ok()) return Fail("bad event index '" + index_text + "'");

  // RECO files carry tracks for the display; AOD gives objects only.
  level2::CommonEvent event;
  if (auto reco = ReadRecoDataset(*bytes); reco.ok()) {
    if (*index >= reco->size()) return Fail("event index out of range");
    event = level2::CommonEvent::FromReco((*reco)[*index]);
  } else if (auto aod = ReadAodDataset(*bytes); aod.ok()) {
    if (*index >= aod->size()) return Fail("event index out of range");
    event = level2::CommonEvent::FromAod((*aod)[*index]);
  } else {
    return Fail("not a RECO or AOD dataset: " + path);
  }
  level2::Scene scene = level2::BuildScene(event);
  std::printf("%s\n", scene.ToJson().Dump(2).c_str());
  return 0;
}

Result<Experiment> ParseExperiment(const std::string& name) {
  for (Experiment experiment : kAllExperiments) {
    if (name == ExperimentName(experiment)) return experiment;
  }
  return Status::InvalidArgument("unknown experiment '" + name +
                                 "' (Alice|Atlas|CMS|LHCb)");
}

int CmdConvert(const std::string& in, const std::string& from_name,
               const std::string& to_name, const std::string& out) {
  auto from = ParseExperiment(from_name);
  if (!from.ok()) return Fail(from.status().ToString());
  auto to = ParseExperiment(to_name);
  if (!to.ok()) return Fail(to.status().ToString());
  auto bytes = ReadFileToString(in);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  auto converted = level2::ConvertEventFile(*from, *bytes, *to);
  if (!converted.ok()) return Fail(converted.status().ToString());
  if (auto status = WriteStringToFile(out, *converted); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("converted %s (%s) -> %s (%s), %s\n", in.c_str(),
              from_name.c_str(), out.c_str(), to_name.c_str(),
              FormatBytes(converted->size()).c_str());
  return 0;
}

int CmdExport(const std::string& in, const std::string& experiment_name,
              const std::string& out) {
  auto experiment = ParseExperiment(experiment_name);
  if (!experiment.ok()) return Fail(experiment.status().ToString());
  auto bytes = ReadFileToString(in);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  auto reco = ReadRecoDataset(*bytes);
  if (!reco.ok()) return Fail("not a RECO dataset: " + reco.status().ToString());
  std::vector<level2::CommonEvent> events;
  events.reserve(reco->size());
  for (const RecoEvent& event : *reco) {
    events.push_back(level2::CommonEvent::FromReco(event));
  }
  std::string file = level2::WriteEventFile(*experiment, events);
  if (auto status = WriteStringToFile(out, file); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("exported %zu events to %s in the %s outreach dialect (%s)\n",
              events.size(), out.c_str(), experiment_name.c_str(),
              FormatBytes(file.size()).c_str());
  return 0;
}

// Flags for `daspos chain` beyond the positional process/count/seed.
struct ChainFlags {
  std::string threads;  // empty -> DASPOS_THREADS env -> hardware default
  bool as_json = false;
  int retries = 0;
  double step_timeout_s = 0.0;
  bool keep_going = false;
  std::string journal_dir;  // checkpoint as the run progresses
  std::string resume_dir;   // checkpoint AND restore prior checkpoints
  std::string fault_spec;   // hidden: --inject-faults=<spec> (CI chaos runs)
  std::string trace_out;    // Chrome trace_event JSON export path
};

Result<Process> ParseProcessName(const std::string& process_name) {
  for (const ProcessInfo& info : AllProcesses()) {
    if (info.name == process_name) return info.id;
  }
  return Status::InvalidArgument("unknown process '" + process_name + "'");
}

// Runs the standard GEN->RAW->RECO->AOD->derived chain in memory on the
// parallel workflow engine and prints the per-step timing table (or, with
// --json, the full execution report as JSON). With a journal the run is
// checkpointed step by step; --resume restores verified checkpoints instead
// of re-executing their steps.
int CmdChain(const std::string& process_name, const std::string& count,
             const std::string& seed, const ChainFlags& flags) {
  auto process = ParseProcessName(process_name);
  if (!process.ok()) return Fail(process.status().ToString());
  auto n = ParseU64(count);
  if (!n.ok()) return Fail("bad event count '" + count + "'");
  auto seed_value = ParseU64(seed);
  if (!seed_value.ok()) return Fail("bad seed '" + seed + "'");
  auto threads = ResolveThreads(flags.threads, /*fallback=*/0);
  if (!threads.ok()) return Fail(threads.status().ToString());

  Workflow workflow = StandardChainWorkflow(
      *process, static_cast<size_t>(*n), *seed_value);

  ConditionsDb conditions;
  CalibrationSet calib;
  if (auto status = conditions.Append(kCalibrationTag, 1, calib.ToPayload());
      !status.ok()) {
    return Fail(status.ToString());
  }
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  ExecuteOptions options;
  options.max_threads = static_cast<size_t>(*threads);
  options.max_step_retries = flags.retries;
  options.step_timeout_ms = flags.step_timeout_s * 1000.0;
  options.keep_going = flags.keep_going;

  std::unique_ptr<RunJournal> journal;
  const std::string journal_dir =
      !flags.resume_dir.empty() ? flags.resume_dir : flags.journal_dir;
  if (!journal_dir.empty()) {
    auto opened = RunJournal::Open(journal_dir);
    if (!opened.ok()) return Fail(opened.status().ToString());
    journal = std::move(*opened);
    options.journal = journal.get();
    options.resume = !flags.resume_dir.empty();
  }
  if (options.resume) {
    // Warn (W104) about checkpoints for steps this workflow does not have;
    // resume ignores them, but the operator should know they exist.
    auto lines = ReadFileToString(RunJournal::LinesPath(journal_dir));
    if (lines.ok()) {
      lint::LintReport journal_lint = lint::CheckJournal(
          lint::JournalSpec::FromJsonLines(*lines), workflow.GraphSpec());
      for (const lint::Diagnostic& diagnostic : journal_lint.diagnostics()) {
        std::fprintf(stderr, "daspos: %s\n", diagnostic.Render().c_str());
      }
    }
  }

  std::unique_ptr<FaultPlan> faults;
  if (!flags.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(flags.fault_spec);
    if (!spec.ok()) return Fail(spec.status().ToString());
    faults = std::make_unique<FaultPlan>(*spec);
    options.step_faults = faults.get();
  }

  const bool tracing = !flags.trace_out.empty();
  if (tracing) Tracer::Global().Enable();
  auto report = workflow.Execute(&context, &provenance, options);
  size_t span_count = 0;
  if (tracing) {
    // Export even when the run failed — a trace of the failure is exactly
    // what the operator wants to open.
    Tracer::Global().Disable();
    std::vector<SpanEvent> spans = Tracer::Global().Drain();
    span_count = spans.size();
    if (auto status =
            WriteStringToFile(flags.trace_out, TraceEventJson(spans));
        !status.ok()) {
      return Fail(status.ToString());
    }
  }
  if (!report.ok()) return Fail(report.status().ToString());

  if (flags.as_json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
    return report->fully_succeeded() ? 0 : 1;
  }
  std::printf("%s\n",
              report->RenderTimingTable("standard chain execution:").c_str());
  size_t resumed = 0;
  for (const WorkflowReport::StepResult& step : report->steps) {
    if (step.from_checkpoint) ++resumed;
  }
  if (resumed > 0) {
    std::printf("resumed %zu step(s) from journal checkpoints in %s\n",
                resumed, journal_dir.c_str());
  }
  if (faults != nullptr) {
    std::printf("fault injection: %llu fault(s) across %llu operation(s)\n",
                static_cast<unsigned long long>(faults->injected()),
                static_cast<unsigned long long>(faults->operations()));
  }
  if (tracing) {
    std::printf("trace: %zu span(s) written to %s\n", span_count,
                flags.trace_out.c_str());
  }
  std::printf("total: %s across %zu datasets in %s ms on %zu thread(s); "
              "%zu provenance record(s) captured\n",
              FormatBytes(context.TotalBytes()).c_str(),
              context.DatasetNames().size(),
              FormatDouble(report->wall_ms, 3).c_str(),
              report->threads_used, provenance.size());
  if (!report->fully_succeeded()) {
    std::printf("partial success: failed [%s], skipped [%s]\n",
                Join(report->failed_steps, ", ").c_str(),
                Join(report->skipped_steps, ", ").c_str());
    return 1;
  }
  return 0;
}

struct ValidateFlags {
  std::string capture;   // campaign name; non-empty selects capture mode
  std::string process = "z_ll";
  std::string events = "200";
  std::string seed = "42";
  std::string analyses;  // comma-separated; empty = every registered one
  bool as_json = false;
  std::string threads;
  int retries = 0;
  std::string fault_spec;       // --inject-faults=<spec> (chaos validation)
  std::string journal_dir;      // per-campaign journals under this root
  std::string report_path;      // JSON report file
  std::string prometheus_path;  // metrics exposition file
  std::string campaign_filter;
  std::string analysis_filter;
  validate::Thresholds thresholds;
};

// The continuous-validation farm. --capture freezes a campaign package
// (chain config + per-analysis reference histograms + dataset digests) into
// the archive; without it, every campaign x analysis cell is re-executed
// through the workflow engine and compared against its archived references.
// Exit: 0 all pass, 2 warnings only, 1 any failure (or unreadable store).
int CmdValidate(const std::string& spec, const ValidateFlags& flags) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  RegisterStandardMetrics(registry);
  const uint64_t walk_before =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal);
  auto store = OpenObjectStore(spec);
  if (!store.ok()) return Fail(store.status().ToString());
  Archive archive(store->get());
  auto recovered = archive.RecoverCatalog();
  if (!recovered.ok()) return Fail(recovered.status().ToString());

  if (!flags.capture.empty()) {
    validate::CampaignSpec spec;
    spec.name = flags.capture;
    auto process = ParseProcessName(flags.process);
    if (!process.ok()) return Fail(process.status().ToString());
    spec.process = *process;
    auto events = ParseU64(flags.events);
    if (!events.ok()) return Fail("bad --events value '" + flags.events + "'");
    spec.events = static_cast<size_t>(*events);
    auto seed = ParseU64(flags.seed);
    if (!seed.ok()) return Fail("bad --seed value '" + flags.seed + "'");
    spec.seed = *seed;
    for (const std::string& analysis : Split(flags.analyses, ',')) {
      std::string trimmed(Trim(analysis));
      if (!trimmed.empty()) spec.analyses.push_back(std::move(trimmed));
    }
    auto id = validate::CaptureCampaign(&archive, std::move(spec));
    if (!id.ok()) return Fail(id.status().ToString());
    std::printf("captured campaign '%s' as %s\n", flags.capture.c_str(),
                id->c_str());
    return 0;
  }

  auto threads = ResolveThreads(flags.threads, /*fallback=*/0);
  if (!threads.ok()) return Fail(threads.status().ToString());
  std::unique_ptr<ThreadPool> pool = MakePool(*threads);
  std::unique_ptr<FaultPlan> faults;
  if (!flags.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(flags.fault_spec);
    if (!spec.ok()) return Fail(spec.status().ToString());
    faults = std::make_unique<FaultPlan>(*spec);
  }

  validate::ValidateOptions options;
  options.thresholds = flags.thresholds;
  options.max_step_retries = flags.retries;
  options.retry_backoff_ms = flags.retries > 0 ? 1.0 : 0.0;
  options.step_faults = faults.get();
  options.journal_root = flags.journal_dir;
  options.pool = pool.get();
  options.campaign_filter = flags.campaign_filter;
  options.analysis_filter = flags.analysis_filter;

  auto report = validate::ValidateArchive(archive, options);
  if (!report.ok()) return Fail(report.status().ToString());

  if (!flags.report_path.empty()) {
    if (auto status =
            WriteStringToFile(flags.report_path, report->ToJson().Dump(2));
        !status.ok()) {
      return Fail(status.ToString());
    }
  }
  if (!flags.prometheus_path.empty()) {
    if (auto status = WriteStringToFile(flags.prometheus_path,
                                        registry.RenderPrometheus());
        !status.ok()) {
      return Fail(status.ToString());
    }
  }
  if (flags.as_json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report->RenderText().c_str());
    if (faults != nullptr) {
      std::printf("fault injection: %llu fault(s) across %llu operation(s)\n",
                  static_cast<unsigned long long>(faults->injected()),
                  static_cast<unsigned long long>(faults->operations()));
    }
  }
  const uint64_t walk_errors =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal) -
      walk_before;
  if (walk_errors > 0) {
    return Fail(std::to_string(walk_errors) +
                " store walk error(s); archive may be unreadable");
  }
  switch (report->Overall()) {
    case validate::Verdict::kPass: return 0;
    case validate::Verdict::kWarn: return 2;
    case validate::Verdict::kFail: return 1;
  }
  return 1;
}

// Static preservation checks over one or more artifacts: workflow
// provenance chains, LHADA descriptions, archive directories, and
// conditions dumps. Artifact kind is detected from content; nothing is
// executed. Exit 0 when no finding reaches the fail-on threshold.
int CmdLint(const std::vector<std::string>& paths, bool as_json,
            lint::Severity fail_on, size_t threads) {
  // Artifacts lint independently; merge in argument order so the report is
  // identical at any thread count.
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  std::vector<lint::LintReport> parts = ParallelMap<lint::LintReport>(
      pool.get(), paths.size(),
      [&paths](size_t i) { return lint::LintPath(paths[i]); });
  lint::LintReport report;
  for (lint::LintReport& part : parts) {
    report.Merge(std::move(part));
  }
  if (as_json) {
    std::printf("%s\n", report.ToJson().Dump(2).c_str());
  } else if (report.empty()) {
    std::printf("lint: %zu artifact(s) clean\n", paths.size());
  } else {
    std::printf("%s", report.RenderText().c_str());
  }
  return report.CountAtLeast(fail_on) > 0 ? 1 : 0;
}

// Prometheus text exposition (version 0.0.4) of the full metric catalogue.
// With the optional positional workload (process, events, seed) the standard
// chain runs first so the dump shows real traffic; without it every
// instrument is present but zero — useful for discovering metric names.
int CmdMetrics(const std::vector<std::string>& args) {
  RegisterStandardMetrics();
  if (!args.empty()) {
    auto process = ParseProcessName(args[0]);
    if (!process.ok()) return Fail(process.status().ToString());
    auto n = ParseU64(args[1]);
    if (!n.ok()) return Fail("bad event count '" + args[1] + "'");
    auto seed = ParseU64(args[2]);
    if (!seed.ok()) return Fail("bad seed '" + args[2] + "'");
    auto threads = ResolveThreads("", /*fallback=*/0);
    if (!threads.ok()) return Fail(threads.status().ToString());

    Workflow workflow =
        StandardChainWorkflow(*process, static_cast<size_t>(*n), *seed);
    ConditionsDb conditions;
    CalibrationSet calib;
    if (auto status =
            conditions.Append(kCalibrationTag, 1, calib.ToPayload());
        !status.ok()) {
      return Fail(status.ToString());
    }
    WorkflowContext context;
    context.set_conditions(&conditions);
    ExecuteOptions options;
    options.max_threads = *threads;
    auto report = workflow.Execute(&context, nullptr, options);
    if (!report.ok()) return Fail(report.status().ToString());
  }
  std::printf("%s", MetricsRegistry::Global().RenderPrometheus().c_str());
  return 0;
}

struct ScrubFlags {
  std::string cursor_dir;
  std::string max_objects;
  std::string rate;
  std::string batch;
  std::string threads;
  std::string report_path;
  bool as_json = false;
};

// Incremental bit-preservation scrub over N replica stores: verify every
// object on every replica, heal rot/holes from a healthy replica, resume an
// interrupted pass from the --cursor directory. Exit mirrors validate:
// 0 pass, 2 warn (truncated pass), 1 fail (unrepairable object or error).
int CmdScrub(const std::vector<std::string>& roots, const ScrubFlags& flags) {
  RegisterStandardMetrics();
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<ObjectStore*> replicas;
  stores.reserve(roots.size());
  for (const std::string& root : roots) {
    auto store = OpenObjectStore(root);
    if (!store.ok()) return Fail(store.status().ToString());
    stores.push_back(std::move(*store));
    replicas.push_back(stores.back().get());
  }
  ScrubOptions options;
  options.cursor_dir = flags.cursor_dir;
  if (!flags.max_objects.empty()) {
    auto value = ParseU64(flags.max_objects);
    if (!value.ok()) {
      return Fail("bad --max-objects value '" + flags.max_objects + "'");
    }
    options.max_objects = static_cast<size_t>(*value);
  }
  if (!flags.rate.empty()) {
    auto value = ParseDouble(flags.rate);
    if (!value.ok() || *value < 0.0) {
      return Fail("bad --rate value '" + flags.rate + "'");
    }
    options.rate_limit_per_s = *value;
  }
  if (!flags.batch.empty()) {
    auto value = ParseU64(flags.batch);
    if (!value.ok() || *value == 0) {
      return Fail("bad --batch value '" + flags.batch + "'");
    }
    options.batch_size = static_cast<size_t>(*value);
  }
  auto threads = ResolveThreads(flags.threads, /*fallback=*/0);
  if (!threads.ok()) return Fail(threads.status().ToString());
  std::unique_ptr<ThreadPool> pool = MakePool(*threads);
  options.pool = pool.get();

  auto report = ScrubReplicas(replicas, options);
  if (!report.ok()) return Fail(report.status().ToString());
  if (!flags.report_path.empty()) {
    if (auto status =
            WriteStringToFile(flags.report_path, report->ToJson().Dump(2));
        !status.ok()) {
      return Fail(status.ToString());
    }
  }
  if (flags.as_json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report->RenderText().c_str());
  }
  switch (report->Verdict()) {
    case ScrubVerdict::kPass: return 0;
    case ScrubVerdict::kWarn: return 2;
    case ScrubVerdict::kFail: return 1;
  }
  return 1;
}

struct MigrateFlags {
  std::string state_dir;
  std::string batch;
  std::string threads;
  std::string fault_spec;
  bool as_json = false;
};

// Copy-verify-swap generation migration from one store root to another.
// Durable state (cursor + generation marker) defaults to
// <target>/migrate-state; a crashed or fault-aborted run resumes from it.
// Exit 0 only after every object re-verified on the target and the
// generation marker swapped.
int CmdMigrate(const std::string& source_spec, const std::string& target_spec,
               const MigrateFlags& flags) {
  RegisterStandardMetrics();
  auto source = OpenObjectStore(source_spec);
  if (!source.ok()) return Fail(source.status().ToString());
  auto parsed_target = ParseStoreSpec(target_spec);
  if (!parsed_target.ok()) return Fail(parsed_target.status().ToString());
  std::unique_ptr<ObjectStore> target = OpenObjectStore(*parsed_target);
  MigrateOptions options;
  // Durable state lands inside the target's root directory (both backends
  // ignore unknown subdirectories), so `migrate pack:dst` needs no --state.
  options.state_dir = flags.state_dir.empty()
                          ? parsed_target->root + "/migrate-state"
                          : flags.state_dir;
  if (!flags.batch.empty()) {
    auto value = ParseU64(flags.batch);
    if (!value.ok() || *value == 0) {
      return Fail("bad --batch value '" + flags.batch + "'");
    }
    options.batch_size = static_cast<size_t>(*value);
  }
  auto threads = ResolveThreads(flags.threads, /*fallback=*/0);
  if (!threads.ok()) return Fail(threads.status().ToString());
  std::unique_ptr<ThreadPool> pool = MakePool(*threads);
  options.pool = pool.get();
  std::unique_ptr<FaultPlan> faults;
  if (!flags.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(flags.fault_spec);
    if (!spec.ok()) return Fail(spec.status().ToString());
    faults = std::make_unique<FaultPlan>(*spec);
    options.faults = faults.get();
  }

  auto report = MigrateGeneration(*source->get(), *target, options);
  if (!report.ok()) {
    // Progress survives in the state dir; rerunning resumes the copy.
    return Fail(report.status().ToString() +
                " (state preserved; rerun to resume)");
  }
  if (auto* pack = dynamic_cast<PackObjectStore*>(target.get())) {
    // Seal the final segment so the next open skips the rebuild scan.
    if (auto status = pack->Flush(); !status.ok()) {
      return Fail(status.ToString());
    }
  }
  if (flags.as_json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report->RenderText().c_str());
    if (faults != nullptr) {
      std::printf("fault injection: %llu fault(s) across %llu operation(s)\n",
                  static_cast<unsigned long long>(faults->injected()),
                  static_cast<unsigned long long>(faults->operations()));
    }
  }
  return 0;
}

struct RepackFlags {
  std::string state_dir;
  std::string batch;
  std::string threads;
  std::string fault_spec;
  bool compress = false;
  bool as_json = false;
};

// Repacks any store into the packfile backend: the copy-verify-swap
// migrator drives the copy (so an interrupted repack resumes from its
// cursor), then the final segment is sealed and the space accounting
// printed. `daspos repack file:src dst` is the upgrade path for stores
// created before the packfile backend existed.
int CmdRepack(const std::string& source_spec, const std::string& target_dir,
              const RepackFlags& flags) {
  RegisterStandardMetrics();
  auto source = OpenObjectStore(source_spec);
  if (!source.ok()) return Fail(source.status().ToString());
  PackOptions pack_options;
  pack_options.compress = flags.compress;
  PackObjectStore target(target_dir, pack_options);
  MigrateOptions options;
  options.state_dir = flags.state_dir.empty() ? target_dir + "/migrate-state"
                                              : flags.state_dir;
  if (!flags.batch.empty()) {
    auto value = ParseU64(flags.batch);
    if (!value.ok() || *value == 0) {
      return Fail("bad --batch value '" + flags.batch + "'");
    }
    options.batch_size = static_cast<size_t>(*value);
  }
  auto threads = ResolveThreads(flags.threads, /*fallback=*/0);
  if (!threads.ok()) return Fail(threads.status().ToString());
  std::unique_ptr<ThreadPool> pool = MakePool(*threads);
  options.pool = pool.get();
  std::unique_ptr<FaultPlan> faults;
  if (!flags.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(flags.fault_spec);
    if (!spec.ok()) return Fail(spec.status().ToString());
    faults = std::make_unique<FaultPlan>(*spec);
    options.faults = faults.get();
  }

  auto report = MigrateGeneration(*source->get(), target, options);
  if (!report.ok()) {
    return Fail(report.status().ToString() +
                " (state preserved; rerun to resume)");
  }
  if (auto status = target.Flush(); !status.ok()) {
    return Fail(status.ToString());
  }
  const uint64_t raw = target.TotalBytes();
  const uint64_t stored = target.StoredBytes();
  if (flags.as_json) {
    std::printf("%s\n", report->ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report->RenderText().c_str());
    if (faults != nullptr) {
      std::printf("fault injection: %llu fault(s) across %llu operation(s)\n",
                  static_cast<unsigned long long>(faults->injected()),
                  static_cast<unsigned long long>(faults->operations()));
    }
  }
  std::printf("packed %zu object(s) into %zu segment(s): %s raw",
              target.Ids().size(), target.SegmentCount(),
              FormatBytes(raw).c_str());
  if (flags.compress && raw > 0) {
    std::printf(", %s stored (%.1f%% saved)", FormatBytes(stored).c_str(),
                100.0 * (1.0 - static_cast<double>(stored) /
                                   static_cast<double>(raw)));
  }
  std::printf("\n");
  return 0;
}

/// `daspos connect <host:port> <verb> [...]` — the network client face of
/// the archive verbs, speaking docs/PROTOCOL.md to a running dasposd.
int CmdConnect(const std::string& host_port,
               const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  auto client = net::Client::Connect(host_port);
  if (!client.ok()) return Fail(client.status().ToString());
  const std::string& verb = args[0];

  if (verb == "ping" && args.size() == 1) {
    if (auto status = client->Ping(); !status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("pong from %s\n", host_port.c_str());
    return 0;
  }
  if (verb == "put" && args.size() == 2) {
    auto bytes = ReadFileToString(args[1]);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    auto id = client->Put(*bytes);
    if (!id.ok()) return Fail(id.status().ToString());
    std::printf("%s  %s (%s)\n", id->c_str(), args[1].c_str(),
                FormatBytes(bytes->size()).c_str());
    return 0;
  }
  if (verb == "get" && args.size() == 3) {
    auto bytes = client->Get(args[1]);
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    if (auto status = WriteStringToFile(args[2], *bytes); !status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("wrote %s (%s)\n", args[2].c_str(),
                FormatBytes(bytes->size()).c_str());
    return 0;
  }
  if (verb == "verify" && args.size() == 2) {
    if (auto status = client->Verify(args[1]); !status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("verified %s\n", args[1].c_str());
    return 0;
  }
  if (verb == "put-batch" && args.size() >= 2) {
    std::vector<std::string> blobs;
    for (size_t i = 1; i < args.size(); ++i) {
      auto bytes = ReadFileToString(args[i]);
      if (!bytes.ok()) return Fail(bytes.status().ToString());
      blobs.push_back(std::move(*bytes));
    }
    auto ids = client->PutBatch(blobs);
    if (!ids.ok()) return Fail(ids.status().ToString());
    for (size_t i = 0; i < ids->size(); ++i) {
      std::printf("%s  %s\n", (*ids)[i].c_str(), args[i + 1].c_str());
    }
    return 0;
  }
  if (verb == "lint" && args.size() >= 2) {
    std::vector<net::LintArtifact> artifacts;
    for (size_t i = 1; i < args.size(); ++i) {
      net::LintArtifact artifact;
      // Submit under the base name: the server lints bytes, not paths.
      const size_t slash = args[i].find_last_of('/');
      artifact.name =
          slash == std::string::npos ? args[i] : args[i].substr(slash + 1);
      auto bytes = ReadFileToString(args[i]);
      if (!bytes.ok()) return Fail(bytes.status().ToString());
      artifact.bytes = std::move(*bytes);
      artifacts.push_back(std::move(artifact));
    }
    auto report = client->Lint(artifacts);
    if (!report.ok()) return Fail(report.status().ToString());
    std::printf("%s\n", report->c_str());
    return 0;
  }
  if (verb == "chain" && args.size() == 4) {
    auto events = ParseU64(args[2]);
    if (!events.ok()) return Fail("bad event count '" + args[2] + "'");
    auto seed = ParseU64(args[3]);
    if (!seed.ok()) return Fail("bad seed '" + args[3] + "'");
    auto report = client->Chain(args[1], *events, *seed);
    if (!report.ok()) return Fail(report.status().ToString());
    std::printf("%s\n", report->c_str());
    return 0;
  }
  if (verb == "stat" && args.size() == 1) {
    auto stat = client->Stat();
    if (!stat.ok()) return Fail(stat.status().ToString());
    std::printf("%s\n", stat->c_str());
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "inspect" && argc == 3) return CmdInspect(argv[2]);
  if (command == "generate" && (argc == 6 || argc == 7)) {
    return CmdGenerate(argv[2], argv[3], argv[4], argv[5],
                       argc == 7 ? argv[6] : "gen");
  }
  if (command == "holdings" && argc == 3) return CmdHoldings(argv[2]);
  if (command == "audit" && (argc == 3 || argc == 4)) {
    std::string threads_text;
    if (argc == 4) {
      std::string arg = argv[3];
      if (arg.rfind("--threads=", 0) != 0) {
        return Fail("unknown audit flag '" + arg + "'");
      }
      threads_text = arg.substr(10);
    }
    auto threads = ResolveThreads(threads_text);
    if (!threads.ok()) return Fail(threads.status().ToString());
    return CmdAudit(argv[2], *threads);
  }
  if (command == "ingest" && argc >= 5) {
    std::string threads_text;
    std::vector<std::string> files;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        threads_text = arg.substr(10);
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown ingest flag '" + arg + "'");
      } else {
        files.push_back(std::move(arg));
      }
    }
    if (files.empty()) return Usage();
    auto threads = ResolveThreads(threads_text);
    if (!threads.ok()) return Fail(threads.status().ToString());
    return CmdIngest(argv[2], argv[3], files, *threads);
  }
  if (command == "retrieve" && argc == 5) {
    return CmdRetrieve(argv[2], argv[3], argv[4]);
  }
  if (command == "lhada-run" && argc == 4) {
    return CmdLhadaRun(argv[2], argv[3]);
  }
  if (command == "lhada-check" && argc == 3) return CmdLhadaCheck(argv[2]);
  if (command == "display" && argc == 4) return CmdDisplay(argv[2], argv[3]);
  if (command == "convert" && argc == 6) {
    return CmdConvert(argv[2], argv[3], argv[4], argv[5]);
  }
  if (command == "export" && argc == 5) {
    return CmdExport(argv[2], argv[3], argv[4]);
  }
  if (command == "lint" && argc >= 3) {
    bool as_json = false;
    lint::Severity fail_on = lint::Severity::kError;
    std::string threads_text;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        as_json = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads_text = arg.substr(10);
      } else if (arg.rfind("--fail-on=", 0) == 0) {
        if (!lint::ParseSeverity(arg.substr(10), &fail_on)) {
          return Fail("bad --fail-on value '" + arg.substr(10) +
                      "' (info|warning|error)");
        }
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown lint flag '" + arg + "'");
      } else {
        paths.push_back(std::move(arg));
      }
    }
    if (paths.empty()) return Usage();
    auto threads = ResolveThreads(threads_text);
    if (!threads.ok()) return Fail(threads.status().ToString());
    return CmdLint(paths, as_json, fail_on, *threads);
  }
  if (command == "chain" && argc >= 5) {
    ChainFlags flags;
    for (int i = 5; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        flags.as_json = true;
      } else if (arg == "--keep-going") {
        flags.keep_going = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = arg.substr(10);
      } else if (arg.rfind("--retries=", 0) == 0) {
        auto retries = ParseU64(arg.substr(10));
        if (!retries.ok() || *retries > 1000) {
          return Fail("bad --retries value '" + arg.substr(10) + "'");
        }
        flags.retries = static_cast<int>(*retries);
      } else if (arg.rfind("--step-timeout=", 0) == 0) {
        auto seconds = ParseDouble(arg.substr(15));
        if (!seconds.ok() || *seconds < 0.0) {
          return Fail("bad --step-timeout value '" + arg.substr(15) + "'");
        }
        flags.step_timeout_s = *seconds;
      } else if (arg.rfind("--journal=", 0) == 0) {
        flags.journal_dir = arg.substr(10);
      } else if (arg.rfind("--resume=", 0) == 0) {
        flags.resume_dir = arg.substr(9);
      } else if (arg.rfind("--inject-faults=", 0) == 0) {
        flags.fault_spec = arg.substr(16);
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        flags.trace_out = arg.substr(12);
        if (flags.trace_out.empty()) {
          return Fail("--trace-out needs a file path");
        }
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown chain flag '" + arg + "'");
      } else {
        flags.threads = std::move(arg);
      }
    }
    return CmdChain(argv[2], argv[3], argv[4], flags);
  }
  if (command == "validate" && argc >= 3) {
    ValidateFlags flags;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        flags.as_json = true;
      } else if (arg.rfind("--capture=", 0) == 0) {
        flags.capture = arg.substr(10);
      } else if (arg.rfind("--process=", 0) == 0) {
        flags.process = arg.substr(10);
      } else if (arg.rfind("--events=", 0) == 0) {
        flags.events = arg.substr(9);
      } else if (arg.rfind("--seed=", 0) == 0) {
        flags.seed = arg.substr(7);
      } else if (arg.rfind("--analyses=", 0) == 0) {
        flags.analyses = arg.substr(11);
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = arg.substr(10);
      } else if (arg.rfind("--retries=", 0) == 0) {
        auto retries = ParseU64(arg.substr(10));
        if (!retries.ok() || *retries > 1000) {
          return Fail("bad --retries value '" + arg.substr(10) + "'");
        }
        flags.retries = static_cast<int>(*retries);
      } else if (arg.rfind("--inject-faults=", 0) == 0) {
        flags.fault_spec = arg.substr(16);
      } else if (arg.rfind("--journal=", 0) == 0) {
        flags.journal_dir = arg.substr(10);
      } else if (arg.rfind("--report=", 0) == 0) {
        flags.report_path = arg.substr(9);
      } else if (arg.rfind("--prometheus=", 0) == 0) {
        flags.prometheus_path = arg.substr(13);
      } else if (arg.rfind("--campaign=", 0) == 0) {
        flags.campaign_filter = arg.substr(11);
      } else if (arg.rfind("--analysis=", 0) == 0) {
        flags.analysis_filter = arg.substr(11);
      } else if (arg.rfind("--fail-chi2=", 0) == 0) {
        auto value = ParseDouble(arg.substr(12));
        if (!value.ok() || *value < 0.0) {
          return Fail("bad --fail-chi2 value '" + arg.substr(12) + "'");
        }
        flags.thresholds.fail_chi2 = *value;
      } else if (arg.rfind("--warn-chi2=", 0) == 0) {
        auto value = ParseDouble(arg.substr(12));
        if (!value.ok() || *value < 0.0) {
          return Fail("bad --warn-chi2 value '" + arg.substr(12) + "'");
        }
        flags.thresholds.warn_chi2 = *value;
      } else if (arg.rfind("--warn-ks=", 0) == 0) {
        auto value = ParseDouble(arg.substr(10));
        if (!value.ok() || *value < 0.0) {
          return Fail("bad --warn-ks value '" + arg.substr(10) + "'");
        }
        flags.thresholds.warn_ks = *value;
      } else {
        return Fail("unknown validate flag '" + arg + "'");
      }
    }
    return CmdValidate(argv[2], flags);
  }
  if (command == "scrub" && argc >= 3) {
    ScrubFlags flags;
    std::vector<std::string> roots;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        flags.as_json = true;
      } else if (arg.rfind("--cursor=", 0) == 0) {
        flags.cursor_dir = arg.substr(9);
      } else if (arg.rfind("--max-objects=", 0) == 0) {
        flags.max_objects = arg.substr(14);
      } else if (arg.rfind("--rate=", 0) == 0) {
        flags.rate = arg.substr(7);
      } else if (arg.rfind("--batch=", 0) == 0) {
        flags.batch = arg.substr(8);
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = arg.substr(10);
      } else if (arg.rfind("--report=", 0) == 0) {
        flags.report_path = arg.substr(9);
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown scrub flag '" + arg + "'");
      } else {
        roots.push_back(std::move(arg));
      }
    }
    if (roots.empty()) return Usage();
    return CmdScrub(roots, flags);
  }
  if (command == "migrate" && argc >= 4) {
    MigrateFlags flags;
    std::vector<std::string> dirs;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        flags.as_json = true;
      } else if (arg.rfind("--state=", 0) == 0) {
        flags.state_dir = arg.substr(8);
      } else if (arg.rfind("--batch=", 0) == 0) {
        flags.batch = arg.substr(8);
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = arg.substr(10);
      } else if (arg.rfind("--inject-faults=", 0) == 0) {
        flags.fault_spec = arg.substr(16);
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown migrate flag '" + arg + "'");
      } else {
        dirs.push_back(std::move(arg));
      }
    }
    if (dirs.size() != 2) return Usage();
    return CmdMigrate(dirs[0], dirs[1], flags);
  }
  if (command == "repack" && argc >= 4) {
    RepackFlags flags;
    std::vector<std::string> dirs;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        flags.as_json = true;
      } else if (arg == "--compress") {
        flags.compress = true;
      } else if (arg.rfind("--state=", 0) == 0) {
        flags.state_dir = arg.substr(8);
      } else if (arg.rfind("--batch=", 0) == 0) {
        flags.batch = arg.substr(8);
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = arg.substr(10);
      } else if (arg.rfind("--inject-faults=", 0) == 0) {
        flags.fault_spec = arg.substr(16);
      } else if (!arg.empty() && arg[0] == '-') {
        return Fail("unknown repack flag '" + arg + "'");
      } else {
        dirs.push_back(std::move(arg));
      }
    }
    if (dirs.size() != 2) return Usage();
    return CmdRepack(dirs[0], dirs[1], flags);
  }
  if (command == "connect" && argc >= 4) {
    std::vector<std::string> args;
    for (int i = 3; i < argc; ++i) args.emplace_back(argv[i]);
    return CmdConnect(argv[2], args);
  }
  if (command == "metrics" && (argc == 2 || argc == 5)) {
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
    return CmdMetrics(args);
  }
  return Usage();
}
