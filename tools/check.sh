#!/bin/bash
# The repo's verification driver: tier-1 tests plus sanitizer passes.
#
#   tools/check.sh            # tier-1 + TSan workflow_test (the default gate)
#   tools/check.sh --all      # tier-1 + ASan + UBSan full suite + TSan
#   tools/check.sh --asan     # ASan build + full ctest suite
#   tools/check.sh --ubsan    # UBSan build + full ctest suite (halt-on-error)
#   tools/check.sh --tsan     # TSan build + workflow_test
#   tools/check.sh --chaos    # TSan build + fault-injection/resume suite
#   tools/check.sh --tier1    # tier-1 only
#   tools/check.sh --no-tsan  # legacy spelling of --tier1
#
# Run from the repository root. Build trees: build/ (tier-1), build-asan/,
# build-ubsan/ (full suite), build-tsan/ (workflow_test only; the rest of
# the suite is single-threaded).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

RUN_TIER1=0 RUN_ASAN=0 RUN_UBSAN=0 RUN_TSAN=0 RUN_CHAOS=0
case "${1:-}" in
  "")         RUN_TIER1=1 RUN_TSAN=1 ;;
  --all)      RUN_TIER1=1 RUN_ASAN=1 RUN_UBSAN=1 RUN_TSAN=1 RUN_CHAOS=1 ;;
  --asan)     RUN_ASAN=1 ;;
  --ubsan)    RUN_UBSAN=1 ;;
  --tsan)     RUN_TSAN=1 ;;
  --chaos)    RUN_CHAOS=1 ;;
  --tier1|--no-tsan) RUN_TIER1=1 ;;
  *) echo "check.sh: unknown flag '$1'" >&2; exit 2 ;;
esac

# One sanitizer pass: configure a dedicated tree, build, run the full suite.
sanitizer_pass() {
  local name="$1" value="$2" tree="build-$1"
  echo "==> ${name}: DASPOS_SANITIZE=${value} build + full ctest"
  cmake -B "$tree" -S . -DDASPOS_SANITIZE="$value" >/dev/null
  cmake --build "$tree" -j"$JOBS"
  ctest --test-dir "$tree" --output-on-failure -j"$JOBS"
}

if [ "$RUN_TIER1" = 1 ]; then
  echo "==> tier-1: configure + build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
fi

# if-blocks, not `[ ... ] && cmd`: under `set -e` a short-circuit && as the
# script's last effective command would exit 1 when the guard is false.
if [ "$RUN_ASAN" = 1 ]; then
  sanitizer_pass asan address
fi
if [ "$RUN_UBSAN" = 1 ]; then
  sanitizer_pass ubsan undefined
fi

if [ "$RUN_TSAN" = 1 ]; then
  echo "==> TSan: DASPOS_SANITIZE=thread build of workflow_test + parallel_test + trace_test + sync_test + net_test"
  cmake -B build-tsan -S . -DDASPOS_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target workflow_test parallel_test trace_test \
    sync_test net_test -j"$JOBS"
  ./build-tsan/tests/workflow_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/trace_test
  # The annotated sync layer itself: CondVar wakeups and scoped-lock
  # semantics under the race detector.
  ./build-tsan/tests/sync_test
  # The dasposd reactor: 16 concurrent clients against the run-to-completion
  # loop — single-threaded by design, and TSan proves no state leaked across
  # the loop/client boundary.
  ./build-tsan/tests/net_test
fi

if [ "$RUN_CHAOS" = 1 ]; then
  # The fault-injection, retry, timeout, keep-going, and checkpoint/resume
  # tests, run wide under TSan: injected faults and retries must not open
  # races in the dispatcher or the journal. The intra-step parallelism and
  # digest-cache suites join the pass: chunked hot loops and the mutex-
  # guarded cache are exactly where new races would hide.
  echo "==> chaos: DASPOS_SANITIZE=thread build + fault-tolerance suite"
  cmake -B build-tsan -S . -DDASPOS_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target workflow_test parallel_test archive_test \
    pack_store_test bit_preservation_test torture_test trace_test \
    validate_test sync_test net_test -j"$JOBS"
  ./build-tsan/tests/workflow_test \
    --gtest_filter='ChaosTest.*:JournalTest.*:WorkflowRetryTest.*:WorkflowKeepGoingTest.*'
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/archive_test \
    --gtest_filter='DigestCacheTest.*:PutBatchTest.*:FileObjectStoreTest.*'
  # The packfile backend under the race detector: concurrent PutBatch
  # preparation on pool workers, lock-free mmap reads of sealed segments,
  # and the const quarantine path all share the store mutex.
  ./build-tsan/tests/pack_store_test
  # The bit-preservation layer under the race detector: quorum writes,
  # read-repair, pool-sharded scrub batches, and parallel copy-verify all
  # mutate replica stores from pool workers.
  ./build-tsan/tests/bit_preservation_test
  # Crash-consistency torture: truncated cursors/journals and migrations
  # aborted at every fault ordinal, rerun to convergence.
  ./build-tsan/tests/torture_test
  # The registry and tracer are lock-light shared state touched from every
  # pool worker; the trace suite hammers them from concurrent threads.
  ./build-tsan/tests/trace_test
  # The validation farm fans campaigns and analyses out over the pool while
  # injecting step faults — the same dispatcher/journal/registry surfaces
  # under a second concurrency shape.
  ./build-tsan/tests/validate_test
  # Sync-layer primitives under contention (the locks everything above
  # depends on).
  ./build-tsan/tests/sync_test
  # The network reactor under hostile input: malformed-frame fuzzing,
  # mid-frame disconnects, and backpressure stalls with 16 live clients.
  ./build-tsan/tests/net_test
fi

echo "check.sh: all green"
