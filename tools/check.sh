#!/bin/bash
# Tier-1 gate plus a ThreadSanitizer pass over the parallel workflow engine.
#
#   tools/check.sh            # build + full ctest + TSan workflow_test
#   tools/check.sh --no-tsan  # tier-1 only
#
# Run from the repository root. Build trees: build/ (tier-1) and
# build-tsan/ (DASPOS_SANITIZE=thread, workflow_test only).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
RUN_TSAN=1
[ "${1:-}" = "--no-tsan" ] && RUN_TSAN=0

echo "==> tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [ "$RUN_TSAN" = 1 ]; then
  echo "==> TSan: DASPOS_SANITIZE=thread build of workflow_test"
  cmake -B build-tsan -S . -DDASPOS_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target workflow_test -j"$JOBS"
  ./build-tsan/tests/workflow_test
fi

echo "check.sh: all green"
