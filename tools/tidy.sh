#!/bin/bash
# clang-tidy over the library sources, using the profile in .clang-tidy.
#
#   tools/tidy.sh [paths...]   # default: every .cc under src/, tools/, tests/
#
# Needs a compile database: configure once with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# Exits 0 (with a notice) when clang-tidy is not installed, so the script
# can sit in CI pipelines whose base image lacks it.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: $TIDY not found; skipping static analysis" >&2
  exit 0
fi

if [ ! -f build/compile_commands.json ]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [ "$#" -gt 0 ]; then
  FILES=("$@")
else
  # tests/ is analyzed too: test helpers hold locks, move values, and spawn
  # threads like production code, and a racy test hides real regressions.
  mapfile -t FILES < <(find src tools tests -name '*.cc' | sort)
fi

"$TIDY" -p build --quiet "${FILES[@]}"
echo "tidy.sh: ${#FILES[@]} file(s) clean"
