#!/bin/bash
# Unified static-analysis driver: one command, one consolidated verdict.
#
#   tools/analyze.sh              # thread-safety build + compile-fail
#                                 # fixtures + clang-tidy
#   tools/analyze.sh --werror     # thread-safety build also under the full
#                                 # DASPOS_WERROR strict-warning set
#   tools/analyze.sh --log FILE   # duplicate all output into FILE (CI
#                                 # uploads it as the diagnostics artifact)
#
# Sections (each PASSes, FAILs, or SKIPs):
#   thread-safety  Clang build of the whole tree with DASPOS_THREAD_SAFETY=ON
#                  (-Wthread-safety -Wthread-safety-beta); any thread-safety
#                  diagnostic fails the section. Tree: build-tsa/.
#   compile-fail   The negative fixtures in tests/compile_fail/ — each known
#                  lock-discipline bug must be REJECTED by the analysis.
#   clang-tidy     tools/tidy.sh over src/, tools/, and tests/ with the
#                  profile in .clang-tidy (pattern checks + clang-analyzer
#                  path-sensitive families).
#
# Clang-only sections SKIP (not fail) when no Clang is installed, so the
# driver is safe to run on GCC-only machines; CI provides Clang and treats
# SKIP-everything as misconfiguration. See docs/STATIC_ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
WERROR=0
LOG_FILE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --werror) WERROR=1 ;;
    --log)
      shift
      [ $# -gt 0 ] || { echo "analyze.sh: --log needs a file" >&2; exit 2; }
      LOG_FILE="$1"
      ;;
    *) echo "analyze.sh: unknown flag '$1'" >&2; exit 2 ;;
  esac
  shift
done

if [ -n "$LOG_FILE" ]; then
  mkdir -p "$(dirname "$LOG_FILE")"
  exec > >(tee "$LOG_FILE") 2>&1
fi

# Section ledger: name -> PASS | FAIL | SKIP, reported together at the end.
SECTIONS=()
record() { SECTIONS+=("$1:$2"); }

find_clangxx() {
  if [ -n "${DASPOS_CLANGXX:-}" ]; then
    echo "$DASPOS_CLANGXX"
    return
  fi
  command -v clang++ || true
}

# ------------------------------------------------------------ thread-safety
CLANGXX="$(find_clangxx)"
if [ -z "$CLANGXX" ]; then
  echo "==> thread-safety: SKIP (no clang++; the analysis is Clang-only)"
  record thread-safety SKIP
else
  echo "==> thread-safety: Clang build with DASPOS_THREAD_SAFETY=ON"
  CLANGC="${CLANGXX%++}"  # clang++ -> clang (best effort; cmake may ignore)
  tsa_flags=(-DDASPOS_THREAD_SAFETY=ON)
  if [ "$WERROR" = 1 ]; then
    tsa_flags+=(-DDASPOS_WERROR=ON)
  fi
  build_log="$(mktemp)"
  tsa_ok=1
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" -DCMAKE_C_COMPILER="$CLANGC" \
    "${tsa_flags[@]}" >/dev/null || tsa_ok=0
  if [ "$tsa_ok" = 1 ]; then
    cmake --build build-tsa -j"$JOBS" 2>&1 | tee "$build_log" || tsa_ok=0
  fi
  # Zero-diagnostic gate: even as plain warnings, any -Wthread-safety*
  # output fails the section (CI need not rebuild with -Werror to enforce).
  if [ "$tsa_ok" = 1 ] && grep -q "\[-Wthread-safety" "$build_log"; then
    echo "analyze.sh: thread-safety diagnostics found:" >&2
    grep "\[-Wthread-safety" "$build_log" >&2
    tsa_ok=0
  fi
  rm -f "$build_log"
  if [ "$tsa_ok" = 1 ]; then
    record thread-safety PASS
  else
    record thread-safety FAIL
  fi
fi

# ------------------------------------------------------------- compile-fail
if [ -z "$CLANGXX" ]; then
  echo "==> compile-fail: SKIP (no clang++)"
  record compile-fail SKIP
else
  echo "==> compile-fail: negative fixtures must be rejected"
  cf_ok=1
  for fixture in tests/compile_fail/*.cc; do
    if DASPOS_CLANGXX="$CLANGXX" bash tests/compile_fail/run.sh \
        "$fixture" src; then
      :
    else
      status=$?
      if [ "$status" = 125 ]; then
        echo "analyze.sh: $fixture skipped unexpectedly" >&2
      fi
      cf_ok=0
    fi
  done
  if [ "$cf_ok" = 1 ]; then
    record compile-fail PASS
  else
    record compile-fail FAIL
  fi
fi

# --------------------------------------------------------------- clang-tidy
if ! command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1; then
  echo "==> clang-tidy: SKIP (not installed)"
  record clang-tidy SKIP
else
  echo "==> clang-tidy: profile in .clang-tidy over src/ tools/ tests/"
  if bash tools/tidy.sh; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
fi

# ------------------------------------------------------------------ verdict
echo
echo "analyze.sh summary:"
failed=0
for entry in "${SECTIONS[@]}"; do
  name="${entry%%:*}"
  verdict="${entry#*:}"
  printf '  %-14s %s\n' "$name" "$verdict"
  if [ "$verdict" = FAIL ]; then
    failed=1
  fi
done
if [ "$failed" = 1 ]; then
  echo "analyze.sh: FAILED"
  exit 1
fi
echo "analyze.sh: all runnable sections green"
