// dasposd — the preservation archive as a network service.
//
//   dasposd <archive-store> [--host=ADDR] [--port=N] [--port-file=FILE]
//           [--max-frame-mb=N] [--outbox-kb=N] [--max-connections=N]
//
// Serves the wire protocol in docs/PROTOCOL.md (Get/Put/Verify/PutBatch,
// remote lint, chain submission, status) against any backend spec
// (`file:DIR`, `pack:DIR`, `pack+z:DIR`, or a bare sniffed DIR) to many
// concurrent clients from a single-threaded reactor.
//
// --port=0 (the default) binds an ephemeral port; the real one is printed
// on the "listening on HOST:PORT" line and, with --port-file, written to
// FILE so scripts can coordinate without parsing stdout.
//
// SIGTERM/SIGINT begin a graceful drain: the listener closes, buffered
// requests finish, every response flushes, then the process exits 0. See
// docs/OPERATIONS.md for the runbook.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "archive/backend.h"
#include "net/server.h"
#include "support/metrics_registry.h"
#include "support/strings.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "dasposd: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dasposd <archive-store> [--host=ADDR] [--port=N] "
               "[--port-file=FILE]\n"
               "          [--max-frame-mb=N] [--outbox-kb=N] "
               "[--max-connections=N]\n"
               "stores : file:DIR (loose sharded), pack:DIR (packfiles),\n"
               "         pack+z:DIR (compressed packfiles); a bare DIR "
               "sniffs the layout\n"
               "drain  : SIGTERM/SIGINT finishes in-flight requests, "
               "flushes, exits 0\n");
  return 1;
}

// The reactor's wakeup pipe, published for the signal handler. write() is
// async-signal-safe; everything else happens on the loop thread.
volatile int g_drain_fd = -1;

void OnSignal(int) {
  const int fd = g_drain_fd;
  if (fd >= 0) {
    const char byte = 'D';
    ssize_t ignored = write(fd, &byte, 1);
    (void)ignored;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();

  std::string spec_text = argv[1];
  daspos::net::ServerOptions options;
  std::string port_file;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      auto port = daspos::ParseU64(arg.substr(7));
      if (!port.ok() || *port > 65535) {
        return Fail("bad --port value '" + arg.substr(7) + "'");
      }
      options.port = static_cast<uint16_t>(*port);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      if (port_file.empty()) return Fail("--port-file needs a path");
    } else if (arg.rfind("--max-frame-mb=", 0) == 0) {
      auto mb = daspos::ParseU64(arg.substr(15));
      if (!mb.ok() || *mb == 0 || *mb > 4096) {
        return Fail("bad --max-frame-mb value '" + arg.substr(15) + "'");
      }
      options.max_frame_bytes = static_cast<size_t>(*mb) << 20;
    } else if (arg.rfind("--outbox-kb=", 0) == 0) {
      auto kb = daspos::ParseU64(arg.substr(12));
      if (!kb.ok() || *kb == 0 || *kb > (4u << 20)) {
        return Fail("bad --outbox-kb value '" + arg.substr(12) + "'");
      }
      options.max_outbox_bytes = static_cast<size_t>(*kb) << 10;
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      auto n = daspos::ParseU64(arg.substr(18));
      if (!n.ok() || *n == 0 || *n > 65536) {
        return Fail("bad --max-connections value '" + arg.substr(18) + "'");
      }
      options.max_connections = static_cast<size_t>(*n);
    } else {
      return Fail("unknown flag '" + arg + "'");
    }
  }

  auto spec = daspos::ParseStoreSpec(spec_text);
  if (!spec.ok()) return Fail(spec.status().ToString());
  options.backend_name = daspos::BackendName(*spec);
  std::unique_ptr<daspos::ObjectStore> store =
      daspos::OpenObjectStore(*spec);

  daspos::RegisterStandardMetrics();
  daspos::net::Server server(store.get(), options);
  if (auto status = server.Start(); !status.ok()) {
    return Fail(status.ToString());
  }

  g_drain_fd = server.drain_fd();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);  // write errors surface as EPIPE, not death

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) return Fail("cannot write --port-file " + port_file);
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
  }
  std::printf("dasposd: serving %s (%s) listening on %s:%u\n",
              spec_text.c_str(), options.backend_name.c_str(),
              options.host.c_str(), static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  if (auto status = server.Run(); !status.ok()) {
    return Fail(status.ToString());
  }
  std::printf("dasposd: drained after %llu request(s), exiting\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
