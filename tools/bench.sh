#!/bin/bash
# Benchmark driver for the committed BENCH_10.json performance record.
#
#   tools/bench.sh           # Release build, full-size measured sections
#   tools/bench.sh --smoke   # tiny-N sizes for CI (perf-smoke job)
#
# Runs the Release-mode benches that carry measured parallel sections
# (bench_reco, bench_tier_reduction, bench_archive,
# bench_bit_preservation, bench_net) with fixed seeds, skips the
# google-benchmark micro-benches (--benchmark_filter='^$' matches no
# name), and assembles the JSONL records the sections append into a JSON
# array at BENCH_10.json. Every section self-checks its output (serial/parallel
# digests, rot repaired, migrated bytes re-hashed, cross-backend id
# identity), so a correctness break fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
SMOKE=0
case "${1:-}" in
  "") ;;
  --smoke) SMOKE=1 ;;
  *) echo "bench.sh: unknown flag '$1'" >&2; exit 2 ;;
esac

echo "==> bench: Release build"
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j"$JOBS" \
  --target bench_reco bench_tier_reduction bench_archive \
  bench_bit_preservation bench_net

JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT
export DASPOS_BENCH_JSON="$JSONL"
if [ "$SMOKE" = 1 ]; then
  export DASPOS_BENCH_EVENTS=100
  export DASPOS_BENCH_BLOB_MB=4
  export DASPOS_BENCH_BATCH_BLOBS=8
  export DASPOS_BENCH_SCRUB_OBJECTS=48
  export DASPOS_BENCH_OBJECT_KB=16
  export DASPOS_BENCH_NET_REQUESTS=200
  export DASPOS_BENCH_NET_BATCHES=4
fi

# Record the host's core count alongside the measurements: parallel
# speedups are bounded by it, so the committed numbers are only
# interpretable next to the hardware they were taken on.
echo "{\"bench\": \"host\", \"metric\": \"hardware_concurrency\", \"value\": $(nproc).0, \"threads\": 1}" >> "$JSONL"

for bench in bench_reco bench_tier_reduction bench_archive \
  bench_bit_preservation bench_net; do
  echo "==> $bench"
  "./build-bench/bench/$bench" --benchmark_filter='^$'
done

OUT=BENCH_10.json
{
  echo '['
  sed '$!s/$/,/; s/^/  /' "$JSONL"
  echo ']'
} > "$OUT"
echo "bench.sh: wrote $OUT ($(grep -c '"metric"' "$OUT") records)"
