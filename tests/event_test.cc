// Unit tests for the event model: four-vector kinematics, PDG helpers, and
// record round-trips of every tier's event type.
#include <gtest/gtest.h>

#include <cmath>

#include "event/aod.h"
#include "event/experiment.h"
#include "event/fourvector.h"
#include "event/pdg.h"
#include "event/raw.h"
#include "event/reco.h"
#include "event/truth.h"

namespace daspos {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------ FourVector --

TEST(FourVectorTest, FromPtEtaPhiM) {
  FourVector v = FourVector::FromPtEtaPhiM(50.0, 1.0, 0.5, 0.105);
  EXPECT_NEAR(v.Pt(), 50.0, 1e-9);
  EXPECT_NEAR(v.Eta(), 1.0, 1e-9);
  EXPECT_NEAR(v.Phi(), 0.5, 1e-9);
  EXPECT_NEAR(v.Mass(), 0.105, 1e-6);
}

TEST(FourVectorTest, MassOfSum) {
  // Two back-to-back 45.6 GeV massless particles -> mass 91.2.
  FourVector a = FourVector::FromPtEtaPhiM(45.6, 0.0, 0.0, 0.0);
  FourVector b = FourVector::FromPtEtaPhiM(45.6, 0.0, kPi, 0.0);
  EXPECT_NEAR((a + b).Mass(), 91.2, 1e-9);
  EXPECT_NEAR(InvariantMass(a, b), 91.2, 1e-9);
}

TEST(FourVectorTest, NegativeMassSquaredClampsToZero) {
  FourVector v(1.0, 0.0, 0.0, 0.5);  // spacelike from rounding or error
  EXPECT_DOUBLE_EQ(v.Mass(), 0.0);
}

TEST(FourVectorTest, EtaOfStraightUpIsClamped) {
  FourVector v(0.0, 0.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(v.Eta(), 20.0);
  FourVector w(0.0, 0.0, -10.0, 10.0);
  EXPECT_DOUBLE_EQ(w.Eta(), -20.0);
}

TEST(FourVectorTest, DeltaPhiWraps) {
  FourVector a = FourVector::FromPtEtaPhiM(10, 0.0, 3.0, 0.0);
  FourVector b = FourVector::FromPtEtaPhiM(10, 0.0, -3.0, 0.0);
  EXPECT_NEAR(DeltaPhi(a, b), 2.0 * kPi - 6.0, 1e-9);
}

TEST(FourVectorTest, DeltaR) {
  FourVector a = FourVector::FromPtEtaPhiM(10, 0.5, 1.0, 0.0);
  FourVector b = FourVector::FromPtEtaPhiM(20, 0.5, 1.0, 0.0);
  EXPECT_NEAR(DeltaR(a, b), 0.0, 1e-9);
  FourVector c = FourVector::FromPtEtaPhiM(10, 1.5, 1.0, 0.0);
  EXPECT_NEAR(DeltaR(a, c), 1.0, 1e-9);
}

TEST(FourVectorTest, EtOfTransverseParticleEqualsE) {
  FourVector v = FourVector::FromPtEtaPhiM(30.0, 0.0, 0.3, 0.0);
  EXPECT_NEAR(v.Et(), v.e(), 1e-9);
}

// ------------------------------------------------------------------- PDG --

TEST(PdgTest, Masses) {
  EXPECT_NEAR(pdg::Mass(pdg::kZ), 91.1876, 1e-4);
  EXPECT_NEAR(pdg::Mass(pdg::kMuon), 0.10566, 1e-5);
  EXPECT_DOUBLE_EQ(pdg::Mass(-pdg::kMuon), pdg::Mass(pdg::kMuon));
  EXPECT_DOUBLE_EQ(pdg::Mass(999999), 0.0);
}

TEST(PdgTest, Charges) {
  EXPECT_DOUBLE_EQ(pdg::Charge(pdg::kElectron), -1.0);
  EXPECT_DOUBLE_EQ(pdg::Charge(-pdg::kElectron), 1.0);
  EXPECT_DOUBLE_EQ(pdg::Charge(pdg::kPiPlus), 1.0);
  EXPECT_DOUBLE_EQ(pdg::Charge(-pdg::kPiPlus), -1.0);
  EXPECT_DOUBLE_EQ(pdg::Charge(pdg::kPhoton), 0.0);
  EXPECT_NEAR(pdg::Charge(pdg::kUp), 2.0 / 3.0, 1e-12);
}

TEST(PdgTest, Names) {
  EXPECT_EQ(pdg::Name(pdg::kMuon), "mu-");
  EXPECT_EQ(pdg::Name(-pdg::kMuon), "mu+");
  EXPECT_EQ(pdg::Name(pdg::kZPrime), "Z'");
  EXPECT_EQ(pdg::Name(123456), "id:123456");
}

TEST(PdgTest, Classification) {
  EXPECT_TRUE(pdg::IsChargedLepton(pdg::kElectron));
  EXPECT_TRUE(pdg::IsNeutrino(-pdg::kNuMu));
  EXPECT_TRUE(pdg::IsLepton(pdg::kTau));
  EXPECT_FALSE(pdg::IsLepton(pdg::kPiPlus));
  EXPECT_TRUE(pdg::IsQuark(pdg::kTop));
  EXPECT_TRUE(pdg::IsHadron(pdg::kProton));
  EXPECT_TRUE(pdg::IsDetectorStable(pdg::kMuon));
  EXPECT_FALSE(pdg::IsDetectorStable(pdg::kZ));
  EXPECT_TRUE(pdg::IsInvisible(pdg::kNuE));
  EXPECT_FALSE(pdg::IsInvisible(pdg::kMuon));
}

TEST(ExperimentTest, NamesMatchTable1) {
  EXPECT_EQ(ExperimentName(Experiment::kAlice), "Alice");
  EXPECT_EQ(ExperimentName(Experiment::kAtlas), "Atlas");
  EXPECT_EQ(ExperimentName(Experiment::kCms), "CMS");
  EXPECT_EQ(ExperimentName(Experiment::kLhcb), "LHCb");
  EXPECT_EQ(kAllExperiments.size(), 4u);
}

// -------------------------------------------------------------- GenEvent --

GenEvent MakeTruthEvent() {
  GenEvent event;
  event.event_number = 42;
  event.process_id = 1;
  event.weight = 0.75;
  GenParticle z;
  z.pdg_id = pdg::kZ;
  z.status = 2;
  z.mother = -1;
  z.momentum = FourVector(1.0, 2.0, 3.0, 95.0);
  GenParticle mu;
  mu.pdg_id = pdg::kMuon;
  mu.status = 1;
  mu.mother = 0;
  mu.momentum = FourVector(10.0, 20.0, 30.0, 40.0);
  mu.vertex_mm = 0.5;
  event.particles = {z, mu};
  return event;
}

TEST(GenEventTest, RecordRoundTrip) {
  GenEvent event = MakeTruthEvent();
  auto restored = GenEvent::FromRecord(event.ToRecord());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->event_number, 42u);
  EXPECT_EQ(restored->process_id, 1);
  EXPECT_DOUBLE_EQ(restored->weight, 0.75);
  ASSERT_EQ(restored->particles.size(), 2u);
  EXPECT_EQ(restored->particles[0].pdg_id, pdg::kZ);
  EXPECT_EQ(restored->particles[1].mother, 0);
  EXPECT_TRUE(restored->particles[1].momentum ==
              event.particles[1].momentum);
  EXPECT_DOUBLE_EQ(restored->particles[1].vertex_mm, 0.5);
}

TEST(GenEventTest, FinalStateFilters) {
  GenEvent event = MakeTruthEvent();
  auto fs = event.FinalState();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pdg_id, pdg::kMuon);
}

TEST(GenEventTest, TrailingBytesRejected) {
  std::string record = MakeTruthEvent().ToRecord() + "junk";
  EXPECT_TRUE(GenEvent::FromRecord(record).status().IsCorruption());
}

TEST(GenEventTest, TruncatedRecordRejected) {
  std::string record = MakeTruthEvent().ToRecord();
  EXPECT_FALSE(GenEvent::FromRecord(record.substr(0, 10)).ok());
}

// -------------------------------------------------------------- RawEvent --

TEST(RawEventTest, RecordRoundTrip) {
  RawEvent raw;
  raw.run_number = 7;
  raw.event_number = 1234567;
  raw.trigger_bits = 0b1010;
  raw.hits.push_back({SubDetector::kTracker, 123456, 40, 1.5f});
  raw.hits.push_back({SubDetector::kEcal, 99, 500, -0.25f});
  raw.hits.push_back({SubDetector::kMuon, 7, 65535, 15.0f});

  auto restored = RawEvent::FromRecord(raw.ToRecord());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->run_number, 7u);
  EXPECT_EQ(restored->event_number, 1234567u);
  EXPECT_EQ(restored->trigger_bits, 0b1010u);
  ASSERT_EQ(restored->hits.size(), 3u);
  EXPECT_EQ(restored->hits[0].detector, SubDetector::kTracker);
  EXPECT_EQ(restored->hits[0].channel, 123456u);
  EXPECT_EQ(restored->hits[2].adc, 65535);
  EXPECT_FLOAT_EQ(restored->hits[1].time_ns, -0.25f);
}

TEST(RawEventTest, BadDetectorIdRejected) {
  RawEvent raw;
  raw.hits.push_back({SubDetector::kTracker, 1, 1, 0.0f});
  std::string record = raw.ToRecord();
  // The detector byte of the first hit follows the fixed header
  // (u32 run + varint event_number(1 byte) + u32 trigger + varint count).
  size_t detector_offset = 4 + 1 + 4 + 1;
  record[detector_offset] = 9;
  EXPECT_TRUE(RawEvent::FromRecord(record).status().IsCorruption());
}

// ------------------------------------------------------------- RecoEvent --

RecoEvent MakeRecoEvent() {
  RecoEvent event;
  event.run_number = 3;
  event.event_number = 55;
  event.trigger_bits = 1;
  event.weight = 2.0;
  event.vertex_count = 4;
  Track track;
  track.momentum = FourVector::FromPtEtaPhiM(25.0, 0.5, 1.0, 0.14);
  track.charge = -1;
  track.hit_count = 9;
  track.chi2 = 7.5;
  track.d0_mm = 0.03;
  event.tracks.push_back(track);
  CaloCluster cluster;
  cluster.energy = 33.0;
  cluster.eta = 0.52;
  cluster.phi = 1.02;
  cluster.em_fraction = 0.93;
  cluster.cell_count = 5;
  event.clusters.push_back(cluster);
  PhysicsObject electron;
  electron.type = ObjectType::kElectron;
  electron.momentum = FourVector::FromPtEtaPhiM(30.0, 0.5, 1.0, 0.0);
  electron.charge = -1;
  electron.isolation = 0.5;
  electron.quality = 0.93;
  event.objects.push_back(electron);
  return event;
}

TEST(RecoEventTest, RecordRoundTrip) {
  RecoEvent event = MakeRecoEvent();
  auto restored = RecoEvent::FromRecord(event.ToRecord());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vertex_count, 4);
  ASSERT_EQ(restored->tracks.size(), 1u);
  EXPECT_EQ(restored->tracks[0].charge, -1);
  EXPECT_DOUBLE_EQ(restored->tracks[0].d0_mm, 0.03);
  ASSERT_EQ(restored->clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(restored->clusters[0].em_fraction, 0.93);
  ASSERT_EQ(restored->objects.size(), 1u);
  EXPECT_EQ(restored->objects[0].type, ObjectType::kElectron);
}

TEST(ObjectTypeTest, Names) {
  EXPECT_EQ(ObjectTypeName(ObjectType::kElectron), "electron");
  EXPECT_EQ(ObjectTypeName(ObjectType::kMet), "met");
}

// -------------------------------------------------------------- AodEvent --

TEST(AodEventTest, FromRecoDropsIntermediateData) {
  RecoEvent reco = MakeRecoEvent();
  AodEvent aod = AodEvent::FromReco(reco);
  EXPECT_EQ(aod.event_number, reco.event_number);
  EXPECT_EQ(aod.objects.size(), reco.objects.size());
  // AOD records are much smaller than RECO records (the §3.2 reduction).
  EXPECT_LT(aod.ToRecord().size(), reco.ToRecord().size());
}

TEST(AodEventTest, RecordRoundTrip) {
  AodEvent aod = AodEvent::FromReco(MakeRecoEvent());
  auto restored = AodEvent::FromRecord(aod.ToRecord());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->objects.size(), 1u);
  EXPECT_EQ(restored->objects[0].type, ObjectType::kElectron);
  EXPECT_EQ(restored->vertex_count, 4);
}

TEST(AodEventTest, ObjectsOfTypeAndMet) {
  AodEvent aod;
  PhysicsObject jet;
  jet.type = ObjectType::kJet;
  PhysicsObject met;
  met.type = ObjectType::kMet;
  met.momentum = FourVector(3.0, 4.0, 0.0, 5.0);
  aod.objects = {jet, met};
  EXPECT_EQ(aod.ObjectsOfType(ObjectType::kJet).size(), 1u);
  EXPECT_EQ(aod.ObjectsOfType(ObjectType::kMuon).size(), 0u);
  ASSERT_NE(aod.Met(), nullptr);
  EXPECT_DOUBLE_EQ(aod.Met()->momentum.Pt(), 5.0);
  AodEvent empty;
  EXPECT_EQ(empty.Met(), nullptr);
}

}  // namespace
}  // namespace daspos
