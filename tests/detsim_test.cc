// Tests for the detector simulation: geometry channel codecs, calibration
// payload round-trip, digitization content, and trigger behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "detsim/calib.h"
#include "detsim/geometry.h"
#include "detsim/simulation.h"
#include "event/pdg.h"
#include "mc/generator.h"

namespace daspos {
namespace {

// ---------------------------------------------------------------- Geometry

TEST(GeometryTest, TrackerChannelRoundTrip) {
  DetectorGeometry geo;
  for (int layer : {0, 3, geo.tracker_layers - 1}) {
    for (int eta : {0, 250, geo.tracker_eta_cells - 1}) {
      for (int phi : {0, 6000, geo.tracker_phi_cells - 1}) {
        uint32_t channel = geo.TrackerChannel(layer, eta, phi);
        int l, e, p;
        geo.DecodeTrackerChannel(channel, &l, &e, &p);
        EXPECT_EQ(l, layer);
        EXPECT_EQ(e, eta);
        EXPECT_EQ(p, phi);
      }
    }
  }
}

TEST(GeometryTest, CaloAndMuonChannelRoundTrip) {
  DetectorGeometry geo;
  uint32_t ec = geo.EcalChannel(42, 99);
  int e, p;
  geo.DecodeEcalChannel(ec, &e, &p);
  EXPECT_EQ(e, 42);
  EXPECT_EQ(p, 99);
  uint32_t hc = geo.HcalChannel(7, 30);
  geo.DecodeHcalChannel(hc, &e, &p);
  EXPECT_EQ(e, 7);
  EXPECT_EQ(p, 30);
  uint32_t mc = geo.MuonChannel(2, 10, 20);
  int l;
  geo.DecodeMuonChannel(mc, &l, &e, &p);
  EXPECT_EQ(l, 2);
  EXPECT_EQ(e, 10);
  EXPECT_EQ(p, 20);
}

TEST(GeometryTest, CellCentersInvertCellLookup) {
  DetectorGeometry geo;
  for (double eta : {-2.4, -1.0, 0.0, 0.7, 2.4}) {
    int cell = geo.TrackerEtaCell(eta);
    EXPECT_NEAR(geo.TrackerEtaCellCenter(cell), eta,
                2.0 * geo.tracker_eta_max / geo.tracker_eta_cells);
  }
  for (double phi : {-3.0, -1.5, 0.0, 1.5, 3.0}) {
    int cell = geo.EcalPhiCell(phi);
    double width = 2.0 * 3.14159265358979 / geo.ecal_phi_cells;
    double diff = std::fabs(geo.EcalPhiCellCenter(cell) - phi);
    if (diff > 3.14159265) diff = 2.0 * 3.14159265358979 - diff;
    EXPECT_LT(diff, width);
  }
}

TEST(GeometryTest, LayerRadiiIncrease) {
  DetectorGeometry geo;
  for (int l = 1; l < geo.tracker_layers; ++l) {
    EXPECT_GT(geo.TrackerLayerRadius(l), geo.TrackerLayerRadius(l - 1));
  }
}

TEST(GeometryTest, PresetsDiffer) {
  auto alice = DetectorGeometry::Preset(Experiment::kAlice);
  auto atlas = DetectorGeometry::Preset(Experiment::kAtlas);
  auto cms = DetectorGeometry::Preset(Experiment::kCms);
  auto lhcb = DetectorGeometry::Preset(Experiment::kLhcb);
  EXPECT_EQ(alice.name, "Alice");
  EXPECT_LT(alice.tracker_eta_max, atlas.tracker_eta_max);
  EXPECT_GT(cms.field_tesla, atlas.field_tesla);
  EXPECT_GT(lhcb.tracker_eta_max, 4.0);
  EXPECT_LT(cms.ecal_stochastic, atlas.ecal_stochastic);
}

// ------------------------------------------------------------- Calibration

TEST(CalibTest, PayloadRoundTrip) {
  CalibrationSet calib;
  calib.version = 12;
  calib.ecal_gain = 0.0213;
  calib.hcal_gain = 0.0507;
  calib.tracker_phi_offset = -0.00125;
  calib.ecal_noise_adc = 2.5;
  calib.ecal_zs_threshold = 10;
  auto restored = CalibrationSet::FromPayload(calib.ToPayload());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == calib);
}

TEST(CalibTest, PayloadToleratesCommentsAndUnknownKeys) {
  std::string payload =
      "# calibration snapshot\nversion = 3\nfuture_key = 1.5\n"
      "ecal_gain = 0.02\n";
  auto restored = CalibrationSet::FromPayload(payload);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->version, 3u);
}

TEST(CalibTest, PayloadErrors) {
  EXPECT_TRUE(CalibrationSet::FromPayload("ecal_gain = 0.02\n")
                  .status()
                  .IsCorruption());  // missing version
  EXPECT_TRUE(CalibrationSet::FromPayload("version 3\n")
                  .status()
                  .IsCorruption());  // missing '='
  EXPECT_FALSE(CalibrationSet::FromPayload("version = abc\n").ok());
}

// ------------------------------------------------------------- Simulation

SimulationConfig TestConfig() {
  SimulationConfig config;
  config.seed = 17;
  config.noise_cells_mean = 5.0;
  return config;
}

TEST(SimulationTest, DeterministicPerEvent) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  EventGenerator gen(gen_config);
  GenEvent truth = gen.Generate();

  DetectorSimulation sim(TestConfig());
  RawEvent r1 = sim.Simulate(truth, 1);
  RawEvent r2 = sim.Simulate(truth, 1);
  ASSERT_EQ(r1.hits.size(), r2.hits.size());
  for (size_t i = 0; i < r1.hits.size(); ++i) {
    EXPECT_EQ(r1.hits[i].channel, r2.hits[i].channel);
    EXPECT_EQ(r1.hits[i].adc, r2.hits[i].adc);
  }
  EXPECT_EQ(r1.trigger_bits, r2.trigger_bits);
}

TEST(SimulationTest, MuonLeavesTrackerAndMuonHits) {
  GenEvent truth;
  truth.event_number = 1;
  GenParticle mu;
  mu.pdg_id = pdg::kMuon;
  mu.status = 1;
  mu.momentum = FourVector::FromPtEtaPhiM(40.0, 0.5, 1.0, 0.105);
  truth.particles.push_back(mu);

  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 0.0;
  DetectorSimulation sim(config);
  RawEvent raw = sim.Simulate(truth, 1);

  int tracker = 0;
  int muon = 0;
  for (const RawHit& hit : raw.hits) {
    if (hit.detector == SubDetector::kTracker) ++tracker;
    if (hit.detector == SubDetector::kMuon) ++muon;
  }
  EXPECT_GE(tracker, 7);  // 10 layers at 97% efficiency
  EXPECT_GE(muon, 2);
  EXPECT_TRUE(raw.trigger_bits & TriggerBits::kMuon);
}

TEST(SimulationTest, PhotonLeavesEcalOnlyNoTrack) {
  GenEvent truth;
  truth.event_number = 2;
  GenParticle gamma;
  gamma.pdg_id = pdg::kPhoton;
  gamma.status = 1;
  gamma.momentum = FourVector::FromPtEtaPhiM(50.0, 0.2, -1.0, 0.0);
  truth.particles.push_back(gamma);

  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 0.0;
  DetectorSimulation sim(config);
  RawEvent raw = sim.Simulate(truth, 1);

  int tracker = 0;
  int ecal = 0;
  for (const RawHit& hit : raw.hits) {
    if (hit.detector == SubDetector::kTracker) ++tracker;
    if (hit.detector == SubDetector::kEcal) ++ecal;
  }
  EXPECT_EQ(tracker, 0);
  EXPECT_GE(ecal, 1);
  EXPECT_TRUE(raw.trigger_bits & TriggerBits::kEGamma);
}

TEST(SimulationTest, NeutrinoIsInvisible) {
  GenEvent truth;
  truth.event_number = 3;
  GenParticle nu;
  nu.pdg_id = pdg::kNuMu;
  nu.status = 1;
  nu.momentum = FourVector::FromPtEtaPhiM(100.0, 0.0, 0.0, 0.0);
  truth.particles.push_back(nu);

  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 0.0;
  DetectorSimulation sim(config);
  EXPECT_TRUE(sim.Simulate(truth, 1).hits.empty());
}

TEST(SimulationTest, OutOfAcceptanceParticleLeavesNothing) {
  GenEvent truth;
  truth.event_number = 4;
  GenParticle pi;
  pi.pdg_id = pdg::kPiPlus;
  pi.status = 1;
  pi.momentum = FourVector::FromPtEtaPhiM(10.0, 4.5, 0.0, 0.14);  // |eta|>3
  truth.particles.push_back(pi);

  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 0.0;
  DetectorSimulation sim(config);
  EXPECT_TRUE(sim.Simulate(truth, 1).hits.empty());
}

TEST(SimulationTest, NoiseProducesHitsInEmptyEvents) {
  GenEvent truth;
  truth.event_number = 5;
  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 30.0;
  DetectorSimulation sim(config);
  RawEvent raw = sim.Simulate(truth, 1);
  EXPECT_GT(raw.hits.size(), 10u);
  for (const RawHit& hit : raw.hits) {
    EXPECT_EQ(hit.detector, SubDetector::kEcal);
    EXPECT_GE(hit.adc, config.calib.ecal_zs_threshold);
  }
}

TEST(SimulationTest, MinBiasPrescaleFires) {
  GenEvent truth;
  truth.event_number = 2000;  // divisible by the default prescale of 1000
  SimulationConfig config = TestConfig();
  DetectorSimulation sim(config);
  EXPECT_TRUE(sim.Simulate(truth, 1).trigger_bits & TriggerBits::kMinBias);
  truth.event_number = 2001;
  EXPECT_FALSE(sim.Simulate(truth, 1).trigger_bits & TriggerBits::kMinBias);
}

TEST(SimulationTest, HtTriggerFiresOnDijets) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kQcdDijet;
  gen_config.seed = 23;
  EventGenerator gen(gen_config);
  DetectorSimulation sim(TestConfig());
  int fired = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    RawEvent raw = sim.Simulate(gen.Generate(), 1);
    if (raw.trigger_bits & TriggerBits::kJetHt) ++fired;
  }
  // The steeply falling dijet pT spectrum means only the tail exceeds the
  // HT threshold; ~10-25% is the expected rate.
  EXPECT_GT(fired, n / 20);
  EXPECT_LT(fired, n / 2);
}

TEST(SimulationTest, DisplacedParticleShiftsInnerHits) {
  // Two identical pions, one from a displaced vertex: their innermost-layer
  // phi cells must differ via the d0/r term.
  SimulationConfig config = TestConfig();
  config.noise_cells_mean = 0.0;
  config.geometry.tracker_hit_efficiency = 1.0;
  DetectorSimulation sim(config);

  auto make_event = [](double vertex_mm) {
    GenEvent truth;
    truth.event_number = 6;
    GenParticle d0;  // mother flying along x
    d0.pdg_id = pdg::kD0;
    d0.status = 2;
    d0.momentum = FourVector(5.0, 0.0, 0.0, std::sqrt(25.0 + 1.865 * 1.865));
    truth.particles.push_back(d0);
    GenParticle pi;
    pi.pdg_id = pdg::kPiPlus;
    pi.status = 1;
    pi.mother = 0;
    // Direction tilted from the mother: nonzero impact parameter.
    pi.momentum = FourVector::FromPtEtaPhiM(3.0, 0.0, 0.5, 0.14);
    pi.vertex_mm = vertex_mm;
    truth.particles.push_back(pi);
    return truth;
  };

  RawEvent prompt = sim.Simulate(make_event(0.0), 1);
  RawEvent displaced = sim.Simulate(make_event(5.0), 1);
  ASSERT_EQ(prompt.hits.size(), displaced.hits.size());
  bool any_differ = false;
  for (size_t i = 0; i < prompt.hits.size(); ++i) {
    if (prompt.hits[i].detector == SubDetector::kTracker &&
        prompt.hits[i].channel != displaced.hits[i].channel) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(SimulationTest, MisalignmentShiftsTrackerHits) {
  GenEvent truth;
  truth.event_number = 7;
  GenParticle mu;
  mu.pdg_id = pdg::kMuon;
  mu.status = 1;
  mu.momentum = FourVector::FromPtEtaPhiM(40.0, 0.0, 1.0, 0.105);
  truth.particles.push_back(mu);

  SimulationConfig aligned = TestConfig();
  aligned.noise_cells_mean = 0.0;
  aligned.geometry.tracker_hit_efficiency = 1.0;
  SimulationConfig misaligned = aligned;
  misaligned.calib.tracker_phi_offset = 0.01;

  RawEvent r_aligned = DetectorSimulation(aligned).Simulate(truth, 1);
  RawEvent r_misaligned = DetectorSimulation(misaligned).Simulate(truth, 1);
  ASSERT_EQ(r_aligned.hits.size(), r_misaligned.hits.size());
  int differing = 0;
  for (size_t i = 0; i < r_aligned.hits.size(); ++i) {
    if (r_aligned.hits[i].detector == SubDetector::kTracker &&
        r_aligned.hits[i].channel != r_misaligned.hits[i].channel) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 5);
}

}  // namespace
}  // namespace daspos
