#include "support/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace daspos {
namespace {

// The annotated primitives must behave exactly like the std types they
// wrap; these tests exercise the runtime semantics (the compile-time side
// is covered by the DASPOS_THREAD_SAFETY build and tests/compile_fail/).
// Run under TSan via tools/check.sh --tsan.

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  EXPECT_TRUE(mu.TryLock());
  // Non-recursive: a second TryLock from another thread must fail while
  // this thread holds the lock.
  bool second = true;
  std::thread prober([&] {
    second = mu.TryLock();
    if (second) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, GuardsCrossThreadIncrements) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  { MutexLock lock(mu); }
  // If the scoped lock leaked, this would deadlock.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ReleasableMutexLockTest, EarlyReleaseThenScopeExit) {
  Mutex mu;
  {
    ReleasableMutexLock lock(mu);
    lock.Release();
    // Released early: the mutex must be free while `lock` is still live.
    EXPECT_TRUE(mu.TryLock());
    mu.Unlock();
  }
  // And the destructor must not have double-unlocked.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ManyReadersOneWriter) {
  SharedMutex mu;
  int value = 0;
  constexpr int kReaders = 4;
  constexpr int kWrites = 500;
  std::vector<std::thread> threads;
  std::vector<int> observed_bad(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < kWrites; ++i) {
        ReaderMutexLock lock(mu);
        // Writers add 2 under the exclusive lock, so a reader must never
        // observe an odd value.
        if (value % 2 != 0) ++observed_bad[r];
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kWrites; ++i) {
      WriterMutexLock lock(mu);
      ++value;
      ++value;
    }
  });
  for (std::thread& thread : threads) thread.join();
  for (int bad : observed_bad) EXPECT_EQ(bad, 0);
  EXPECT_EQ(value, 2 * kWrites);
}

TEST(CondVarTest, WaitWakesOnNotifyOne) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  // A two-thread ping-pong: each side waits for the other's token. Under
  // TSan this exercises the Wait/Notify paths for missed-wakeup races.
  Mutex mu;
  CondVar cv;
  int turn = 0;
  constexpr int kRounds = 200;
  std::thread partner([&] {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(mu);
      while (turn % 2 != 1) cv.Wait(mu);
      ++turn;
      cv.NotifyOne();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    MutexLock lock(mu);
    while (turn % 2 != 0) cv.Wait(mu);
    ++turn;
    cv.NotifyOne();
  }
  partner.join();
  MutexLock lock(mu);
  EXPECT_EQ(turn, 2 * kRounds);
}

}  // namespace
}  // namespace daspos
