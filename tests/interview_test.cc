// Tests for the Data Interview Template module: maturity grids, interview
// validation, JSON round-trip, report rendering, and the example profiles.
#include <gtest/gtest.h>

#include "interview/interview.h"
#include "interview/maturity.h"

namespace daspos {
namespace interview {
namespace {

// ---------------------------------------------------------------- Maturity

TEST(MaturityTest, AxisNames) {
  EXPECT_EQ(MaturityAxisName(MaturityAxis::kDataManagement),
            "data management & disaster recovery");
  EXPECT_EQ(MaturityAxisName(MaturityAxis::kSharing), "sharing");
  EXPECT_EQ(kAllMaturityAxes.size(), 5u);
}

class MaturityLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MaturityLevelSweep, EveryAxisLevelHasText) {
  auto [axis_index, level] = GetParam();
  MaturityAxis axis = kAllMaturityAxes[static_cast<size_t>(axis_index)];
  auto description = MaturityLevelDescription(axis, level);
  ASSERT_TRUE(description.ok());
  EXPECT_FALSE(description->empty());
}

INSTANTIATE_TEST_SUITE_P(Grid, MaturityLevelSweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(1, 6)));

TEST(MaturityTest, LevelOutOfRangeRejected) {
  EXPECT_TRUE(MaturityLevelDescription(MaturityAxis::kPreservation, 0)
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(MaturityLevelDescription(MaturityAxis::kPreservation, 6)
                  .status()
                  .IsOutOfRange());
}

TEST(MaturityTest, AppendixWordingPresent) {
  auto level5 = MaturityLevelDescription(MaturityAxis::kDataDescription, 5);
  ASSERT_TRUE(level5.ok());
  EXPECT_NE(level5->find("understood by other researchers"),
            std::string::npos);
  auto level1 = MaturityLevelDescription(MaturityAxis::kDataDescription, 1);
  ASSERT_TRUE(level1.ok());
  EXPECT_NE(level1->find("unfamiliar concept"), std::string::npos);
}

TEST(MaturityAssessmentTest, GetSetAndOverall) {
  MaturityAssessment assessment;
  assessment.SetLevel(MaturityAxis::kPreservation, 4);
  EXPECT_EQ(assessment.Level(MaturityAxis::kPreservation), 4);
  EXPECT_TRUE(assessment.Validate().ok());
  // 1+1+4+1+1 = 8 / 5 axes.
  EXPECT_DOUBLE_EQ(assessment.Overall(), 1.6);
}

TEST(MaturityAssessmentTest, ValidationRejectsBadLevels) {
  MaturityAssessment assessment;
  assessment.access = 0;
  EXPECT_TRUE(assessment.Validate().IsOutOfRange());
  assessment.access = 6;
  EXPECT_TRUE(assessment.Validate().IsOutOfRange());
}

// --------------------------------------------------------------- Interview

TEST(InterviewTest, ExamplesAreValidAndDistinct) {
  auto interviews = ExampleInterviews();
  ASSERT_EQ(interviews.size(), 4u);
  for (const DataInterview& interview : interviews) {
    EXPECT_TRUE(interview.Validate().ok());
    EXPECT_GE(interview.lifecycle.size(), 3u);
    EXPECT_FALSE(interview.sharing.empty());
  }
  // CMS (approved data policy, §4) should out-rank Alice (in discussion).
  EXPECT_GT(interviews[2].maturity.Overall(),
            interviews[0].maturity.Overall());
  // CMS's public release shows up as an extra sharing row.
  EXPECT_GT(interviews[2].sharing.size(), interviews[0].sharing.size());
}

TEST(InterviewTest, ValidationRules) {
  DataInterview interview = ExampleInterviews()[0];
  interview.respondent.clear();
  EXPECT_TRUE(interview.Validate().IsInvalidArgument());

  interview = ExampleInterviews()[0];
  interview.lifecycle.clear();
  EXPECT_TRUE(interview.Validate().IsInvalidArgument());

  interview = ExampleInterviews()[0];
  interview.lifecycle[0].name.clear();
  EXPECT_TRUE(interview.Validate().IsInvalidArgument());

  interview = ExampleInterviews()[0];
  interview.maturity.sharing = 7;
  EXPECT_TRUE(interview.Validate().IsOutOfRange());
}

TEST(InterviewTest, JsonRoundTrip) {
  DataInterview interview = ExampleInterviews()[2];  // CMS
  auto restored = DataInterview::FromJson(interview.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->experiment, Experiment::kCms);
  EXPECT_EQ(restored->respondent, interview.respondent);
  ASSERT_EQ(restored->lifecycle.size(), interview.lifecycle.size());
  EXPECT_EQ(restored->lifecycle[1].external_software,
            interview.lifecycle[1].external_software);
  EXPECT_EQ(restored->lifecycle[1].total_bytes,
            interview.lifecycle[1].total_bytes);
  EXPECT_EQ(restored->sharing.size(), interview.sharing.size());
  for (MaturityAxis axis : kAllMaturityAxes) {
    EXPECT_EQ(restored->maturity.Level(axis), interview.maturity.Level(axis));
  }
  EXPECT_EQ(restored->backups, interview.backups);
  EXPECT_EQ(restored->generation_process_documented,
            interview.generation_process_documented);
}

TEST(InterviewTest, FromJsonValidates) {
  Json bad = Json::Object();
  bad["respondent"] = "x";
  EXPECT_FALSE(DataInterview::FromJson(bad).ok());  // no lifecycle
}

TEST(InterviewTest, ReportRendersAllSections) {
  DataInterview interview = ExampleInterviews()[1];  // Atlas
  std::string report = interview.RenderReport();
  EXPECT_NE(report.find("Data/Software Interview: Atlas"), std::string::npos);
  EXPECT_NE(report.find("Data lifecycle"), std::string::npos);
  EXPECT_NE(report.find("Data sharing grid"), std::string::npos);
  EXPECT_NE(report.find("Maturity self-assessment"), std::string::npos);
  EXPECT_NE(report.find("Overall maturity"), std::string::npos);
  // Every axis row appears.
  for (MaturityAxis axis : kAllMaturityAxes) {
    EXPECT_NE(report.find(std::string(MaturityAxisName(axis))),
              std::string::npos);
  }
  // The level meaning text is quoted in the grid.
  EXPECT_NE(report.find("systematically organized"), std::string::npos);
}

}  // namespace
}  // namespace interview
}  // namespace daspos
