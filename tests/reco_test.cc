// Tests for reconstruction: track finding (efficiency, charge, momentum
// resolution), calorimeter clustering, candidate building, and the
// end-to-end physics sanity of the full gen -> sim -> reco chain.
#include <gtest/gtest.h>

#include <cmath>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "hist/histo1d.h"
#include "mc/generator.h"
#include "reco/clustering.h"
#include "reco/reconstruction.h"
#include "reco/tracking.h"

namespace daspos {
namespace {

SimulationConfig QuietSim() {
  SimulationConfig config;
  config.seed = 31;
  config.noise_cells_mean = 0.0;
  return config;
}

GenEvent SingleParticle(int pdg_id, double pt, double eta, double phi,
                        uint64_t event_number = 1) {
  GenEvent truth;
  truth.event_number = event_number;
  GenParticle particle;
  particle.pdg_id = pdg_id;
  particle.status = 1;
  particle.momentum = FourVector::FromPtEtaPhiM(pt, eta, phi,
                                                pdg::Mass(pdg_id));
  truth.particles.push_back(particle);
  return truth;
}

// ---------------------------------------------------------------- Tracking

TEST(TrackingTest, SingleMuonReconstructs) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  TrackFinder finder(sim_config.geometry, sim_config.calib);

  int found = 0;
  double sum_rel_dpt = 0.0;
  int charge_correct = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    double pt = 10.0 + i * 0.5;
    GenEvent truth = SingleParticle(pdg::kMuon, pt, 0.3, 1.0, 100 + static_cast<uint64_t>(i));
    RawEvent raw = sim.Simulate(truth, 1);
    auto tracks = finder.FindTracks(raw);
    if (tracks.empty()) continue;
    ++found;
    const Track& track = tracks.front();
    sum_rel_dpt += std::fabs(track.momentum.Pt() - pt) / pt;
    if (track.charge == -1) ++charge_correct;  // mu- bends one way
  }
  EXPECT_GT(found, 90);
  EXPECT_LT(sum_rel_dpt / found, 0.10);          // few-% pt resolution
  EXPECT_GT(charge_correct, found * 9 / 10);     // charge from bend sign
}

TEST(TrackingTest, OppositeChargesBendOppositely) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  TrackFinder finder(sim_config.geometry, sim_config.calib);

  GenEvent plus = SingleParticle(-pdg::kMuon, 30.0, 0.5, 0.0, 11);
  GenEvent minus = SingleParticle(pdg::kMuon, 30.0, 0.5, 0.0, 12);
  auto t_plus = finder.FindTracks(sim.Simulate(plus, 1));
  auto t_minus = finder.FindTracks(sim.Simulate(minus, 1));
  ASSERT_FALSE(t_plus.empty());
  ASSERT_FALSE(t_minus.empty());
  EXPECT_EQ(t_plus.front().charge, 1);
  EXPECT_EQ(t_minus.front().charge, -1);
}

TEST(TrackingTest, NeutralParticleLeavesNoTrack) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  TrackFinder finder(sim_config.geometry, sim_config.calib);
  GenEvent truth = SingleParticle(pdg::kPhoton, 50.0, 0.0, 0.5, 13);
  EXPECT_TRUE(finder.FindTracks(sim.Simulate(truth, 1)).empty());
}

TEST(TrackingTest, WrongAlignmentConstantsDegradeResolution) {
  // Simulate with a misaligned detector; reconstruct once with the matching
  // constants and once with defaults. §3.2's conditions dependency.
  SimulationConfig sim_config = QuietSim();
  sim_config.calib.tracker_phi_offset = 0.004;
  DetectorSimulation sim(sim_config);

  CalibrationSet right = sim_config.calib;
  CalibrationSet wrong = sim_config.calib;
  wrong.tracker_phi_offset = 0.0;

  TrackFinder with_right(sim_config.geometry, right);
  TrackFinder with_wrong(sim_config.geometry, wrong);

  double err_right = 0.0;
  double err_wrong = 0.0;
  int n_right = 0;
  int n_wrong = 0;
  for (int i = 0; i < 50; ++i) {
    GenEvent truth = SingleParticle(pdg::kMuon, 25.0, 0.2, 0.8, 200 + static_cast<uint64_t>(i));
    RawEvent raw = sim.Simulate(truth, 1);
    auto tr = with_right.FindTracks(raw);
    auto tw = with_wrong.FindTracks(raw);
    if (!tr.empty()) {
      err_right += std::fabs(tr.front().momentum.Phi() - 0.8);
      ++n_right;
    }
    if (!tw.empty()) {
      err_wrong += std::fabs(tw.front().momentum.Phi() - 0.8);
      ++n_wrong;
    }
  }
  ASSERT_GT(n_right, 0);
  ASSERT_GT(n_wrong, 0);
  // The wrong constants shift phi0 by about the misalignment.
  EXPECT_LT(err_right / n_right, 0.002);
  EXPECT_GT(err_wrong / n_wrong, 0.003);
}

TEST(TrackingTest, DisplacedTrackHasLargerD0) {
  SimulationConfig sim_config = QuietSim();
  sim_config.geometry.tracker_hit_efficiency = 1.0;
  DetectorSimulation sim(sim_config);
  TrackFinder finder(sim_config.geometry, sim_config.calib);

  auto event_with_displacement = [&](double vertex_mm, uint64_t num) {
    GenEvent truth;
    truth.event_number = num;
    GenParticle mother;
    mother.pdg_id = pdg::kD0;
    mother.status = 2;
    mother.momentum = FourVector(6.0, 0.0, 0.0, std::sqrt(36.0 + 3.48));
    truth.particles.push_back(mother);
    GenParticle pi;
    pi.pdg_id = pdg::kPiPlus;
    pi.status = 1;
    pi.mother = 0;
    pi.momentum = FourVector::FromPtEtaPhiM(4.0, 0.0, 0.4, 0.14);
    pi.vertex_mm = vertex_mm;
    truth.particles.push_back(pi);
    return truth;
  };

  double sum_d0_prompt = 0.0;
  double sum_d0_displaced = 0.0;
  int n = 0;
  for (int i = 0; i < 40; ++i) {
    auto tp = finder.FindTracks(
        sim.Simulate(event_with_displacement(0.0, 300 + static_cast<uint64_t>(i)), 1));
    auto td = finder.FindTracks(
        sim.Simulate(event_with_displacement(4.0, 400 + static_cast<uint64_t>(i)), 1));
    if (tp.empty() || td.empty()) continue;
    sum_d0_prompt += std::fabs(tp.front().d0_mm);
    sum_d0_displaced += std::fabs(td.front().d0_mm);
    ++n;
  }
  ASSERT_GT(n, 20);
  EXPECT_GT(sum_d0_displaced / n, 2.0 * (sum_d0_prompt / n));
}

// -------------------------------------------------------------- Clustering

TEST(ClusteringTest, PhotonMakesEmRichCluster) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  CaloClusterer clusterer(sim_config.geometry, sim_config.calib);

  GenEvent truth = SingleParticle(pdg::kPhoton, 60.0, 0.3, -0.5, 21);
  auto clusters = clusterer.Cluster(sim.Simulate(truth, 1));
  ASSERT_FALSE(clusters.empty());
  const CaloCluster& leading = clusters.front();
  EXPECT_NEAR(leading.energy, truth.particles[0].momentum.e(),
              0.25 * truth.particles[0].momentum.e());
  EXPECT_GT(leading.em_fraction, 0.9);
  EXPECT_NEAR(leading.eta, 0.3, 0.1);
}

TEST(ClusteringTest, ChargedPionMakesHadronicCluster) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  CaloClusterer clusterer(sim_config.geometry, sim_config.calib);

  GenEvent truth = SingleParticle(pdg::kPiPlus, 40.0, -0.4, 2.0, 22);
  auto clusters = clusterer.Cluster(sim.Simulate(truth, 1));
  ASSERT_FALSE(clusters.empty());
  EXPECT_LT(clusters.front().em_fraction, 0.5);
}

TEST(ClusteringTest, TwoSeparatedPhotonsMakeTwoClusters) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  CaloClusterer clusterer(sim_config.geometry, sim_config.calib);

  GenEvent truth;
  truth.event_number = 23;
  for (double phi : {0.0, 3.0}) {
    GenParticle gamma;
    gamma.pdg_id = pdg::kPhoton;
    gamma.status = 1;
    gamma.momentum = FourVector::FromPtEtaPhiM(40.0, 0.0, phi, 0.0);
    truth.particles.push_back(gamma);
  }
  auto clusters = clusterer.Cluster(sim.Simulate(truth, 1));
  int energetic = 0;
  for (const CaloCluster& c : clusters) {
    if (c.energy > 20.0) ++energetic;
  }
  EXPECT_EQ(energetic, 2);
}

TEST(ClusteringTest, MuonSegmentsRequireTwoLayers) {
  SimulationConfig sim_config = QuietSim();
  sim_config.geometry.muon_hit_efficiency = 1.0;
  DetectorSimulation sim(sim_config);
  CaloClusterer clusterer(sim_config.geometry, sim_config.calib);

  GenEvent truth = SingleParticle(pdg::kMuon, 30.0, 0.6, 0.2, 24);
  auto segments = clusterer.MuonSegments(sim.Simulate(truth, 1));
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].layer_count, sim_config.geometry.muon_layers);
  EXPECT_NEAR(segments[0].eta, 0.6, 0.1);
}

// ---------------------------------------------------------- Reconstruction

ReconstructionConfig MatchingReco(const SimulationConfig& sim_config) {
  ReconstructionConfig config;
  config.geometry = sim_config.geometry;
  config.calib = sim_config.calib;
  return config;
}

TEST(ReconstructionTest, ZToMuMuMassPeak) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 41;
  EventGenerator gen(gen_config);

  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  Histo1D mass("/reco_mll", 40, 71.0, 111.0);
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    RecoEvent event = reco.Reconstruct(sim.Simulate(gen.Generate(), 1));
    std::vector<const PhysicsObject*> muons;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kMuon) muons.push_back(&obj);
    }
    if (muons.size() < 2) continue;
    if (muons[0]->charge * muons[1]->charge != -1) continue;
    mass.Fill(InvariantMass(muons[0]->momentum, muons[1]->momentum));
  }
  // Acceptance x efficiency leaves a solid fraction of dimuon events, and
  // the peak sits at the Z pole within resolution.
  EXPECT_GT(mass.entries(), static_cast<uint64_t>(n / 4));
  EXPECT_NEAR(mass.Mean(), 91.2, 3.0);
}

TEST(ReconstructionTest, HiggsPhotonPairReconstructs) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kHiggsToGammaGamma;
  gen_config.seed = 42;
  EventGenerator gen(gen_config);

  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  Histo1D mass("/reco_mgg", 40, 105.0, 145.0);
  for (int i = 0; i < 300; ++i) {
    RecoEvent event = reco.Reconstruct(sim.Simulate(gen.Generate(), 1));
    std::vector<const PhysicsObject*> photons;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kPhoton && obj.momentum.Pt() > 20.0) {
        photons.push_back(&obj);
      }
    }
    if (photons.size() < 2) continue;
    mass.Fill(InvariantMass(photons[0]->momentum, photons[1]->momentum));
  }
  EXPECT_GT(mass.entries(), 50u);
  EXPECT_NEAR(mass.Mean(), 125.25, 4.0);
  // Detector resolution dominates: reconstructed width >> natural 4 MeV.
  EXPECT_GT(mass.StdDev(), 0.5);
}

TEST(ReconstructionTest, DijetEventYieldsJets) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kQcdDijet;
  gen_config.seed = 43;
  EventGenerator gen(gen_config);

  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  int events_with_jets = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    RecoEvent event = reco.Reconstruct(sim.Simulate(gen.Generate(), 1));
    int jets = 0;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kJet) ++jets;
    }
    if (jets >= 1) ++events_with_jets;
  }
  EXPECT_GT(events_with_jets, n / 2);
}

TEST(ReconstructionTest, WEventHasMet) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kWToLNu;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 44;
  EventGenerator gen(gen_config);

  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  double sum_met_w = 0.0;
  int n_w = 0;
  for (int i = 0; i < 100; ++i) {
    RecoEvent event = reco.Reconstruct(sim.Simulate(gen.Generate(), 1));
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kMet) {
        sum_met_w += obj.momentum.Pt();
        ++n_w;
      }
    }
  }
  ASSERT_GT(n_w, 0);
  // The escaping neutrino produces sizable MET on average.
  EXPECT_GT(sum_met_w / n_w, 15.0);
}

TEST(ReconstructionTest, EveryEventHasExactlyOneMet) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kMinimumBias;
  EventGenerator gen(gen_config);
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));
  for (int i = 0; i < 20; ++i) {
    RecoEvent event = reco.Reconstruct(sim.Simulate(gen.Generate(), 1));
    int met = 0;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kMet) ++met;
    }
    EXPECT_EQ(met, 1);
  }
}

TEST(ReconstructionTest, ElectronGetsChargeAndIsolation) {
  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  GenEvent truth = SingleParticle(pdg::kElectron, 45.0, 0.1, 0.3, 51);
  RecoEvent event = reco.Reconstruct(sim.Simulate(truth, 1));
  const PhysicsObject* electron = nullptr;
  for (const PhysicsObject& obj : event.objects) {
    if (obj.type == ObjectType::kElectron) electron = &obj;
  }
  ASSERT_NE(electron, nullptr);
  EXPECT_EQ(electron->charge, -1);
  EXPECT_LT(electron->isolation, 1.0);  // nothing else in the event
  EXPECT_NEAR(electron->momentum.e(), 45.0 * std::cosh(0.1), 10.0);
}

TEST(ReconstructionTest, PileupRaisesVertexCount) {
  GeneratorConfig no_pu;
  no_pu.process = Process::kZToLL;
  no_pu.seed = 45;
  GeneratorConfig with_pu = no_pu;
  with_pu.pileup_mean = 30.0;

  SimulationConfig sim_config = QuietSim();
  DetectorSimulation sim(sim_config);
  Reconstructor reco(MatchingReco(sim_config));

  EventGenerator g0(no_pu);
  EventGenerator g30(with_pu);
  int v0 = 0;
  int v30 = 0;
  for (int i = 0; i < 20; ++i) {
    v0 += reco.Reconstruct(sim.Simulate(g0.Generate(), 1)).vertex_count;
    v30 += reco.Reconstruct(sim.Simulate(g30.Generate(), 1)).vertex_count;
  }
  EXPECT_GT(v30, 2 * v0);
}

}  // namespace
}  // namespace daspos
