// Tests for the statistics library: minimizer, likelihood fits, sideband
// subtraction, and counting limits.
#include <gtest/gtest.h>

#include <cmath>

#include "hist/histo1d.h"
#include "stats/fits.h"
#include "stats/limits.h"
#include "stats/minimize.h"
#include "support/rng.h"

namespace daspos {
namespace {

// ---------------------------------------------------------------- Minimize

TEST(MinimizeTest, Quadratic1D) {
  auto fn = [](const std::vector<double>& p) {
    return (p[0] - 3.0) * (p[0] - 3.0) + 1.0;
  };
  MinimizeResult result = Minimize(fn, {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.parameters[0], 3.0, 1e-4);
  EXPECT_NEAR(result.value, 1.0, 1e-6);
}

TEST(MinimizeTest, Rosenbrock2D) {
  auto fn = [](const std::vector<double>& p) {
    double a = 1.0 - p[0];
    double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  MinimizeOptions options;
  options.max_iterations = 10000;
  MinimizeResult result = Minimize(fn, {-1.0, 1.0}, options);
  EXPECT_NEAR(result.parameters[0], 1.0, 1e-3);
  EXPECT_NEAR(result.parameters[1], 1.0, 1e-3);
}

TEST(MinimizeTest, EmptyParametersTrivial) {
  auto fn = [](const std::vector<double>&) { return 7.0; };
  MinimizeResult result = Minimize(fn, {});
  EXPECT_TRUE(result.converged);
}

TEST(MinimizeTest, RespectsBarriers) {
  // Minimum of x^2 but forbidden below 2: should settle at the barrier.
  auto fn = [](const std::vector<double>& p) {
    if (p[0] < 2.0) return 1e12;
    return p[0] * p[0];
  };
  MinimizeResult result = Minimize(fn, {5.0});
  EXPECT_NEAR(result.parameters[0], 2.0, 0.05);
}

// -------------------------------------------------------------------- Fits

TEST(FitsTest, GaussianPeakRecovered) {
  Histo1D histogram("/h", 60, 60.0, 120.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) histogram.Fill(rng.Gauss(91.2, 2.8));
  for (int i = 0; i < 2000; ++i) histogram.Fill(rng.Uniform(60.0, 120.0));

  auto fit = FitGaussianPeak(histogram, 90.0, 3.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->mean, 91.2, 0.2);
  EXPECT_NEAR(fit->sigma, 2.8, 0.3);
  EXPECT_NEAR(fit->amplitude, 5000.0, 400.0);
  EXPECT_NEAR(fit->background_per_bin, 2000.0 / 60.0, 8.0);
}

TEST(FitsTest, PeakFitOnPureBackgroundFindsNoNarrowPeak) {
  // On a flat spectrum a wide Gaussian and a linear background are
  // degenerate descriptions; what must NOT happen is a significant narrow
  // peak appearing from nothing.
  Histo1D histogram("/h", 40, 100.0, 180.0);
  Rng rng(2);
  for (int i = 0; i < 4000; ++i) histogram.Fill(rng.Uniform(100.0, 180.0));
  auto fit = FitGaussianPeak(histogram, 140.0, 5.0);
  ASSERT_TRUE(fit.ok());
  bool narrow_fake_peak = fit->amplitude > 500.0 && fit->sigma < 5.0;
  EXPECT_FALSE(narrow_fake_peak)
      << "amplitude " << fit->amplitude << ", sigma " << fit->sigma;
}

TEST(FitsTest, EmptyHistogramRejected) {
  Histo1D histogram("/h", 10, 0.0, 1.0);
  EXPECT_FALSE(FitGaussianPeak(histogram, 0.5, 0.1).ok());
  EXPECT_FALSE(FitExponentialDecay(histogram, 1.0).ok());
}

TEST(FitsTest, ExponentialLifetimeRecovered) {
  Histo1D histogram("/h", 50, 0.0, 2.0);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) histogram.Fill(rng.Exponential(0.35));
  auto fit = FitExponentialDecay(histogram, 0.5);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->lifetime, 0.35, 0.02);
}

TEST(FitsTest, ExponentialBadGuessRejected) {
  Histo1D histogram("/h", 10, 0.0, 1.0);
  histogram.Fill(0.5);
  EXPECT_FALSE(FitExponentialDecay(histogram, -1.0).ok());
}

class ExponentialLifetimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialLifetimeSweep, RecoversTrueValue) {
  double tau = GetParam();
  Histo1D histogram("/h", 50, 0.0, 5.0 * tau);
  Rng rng(17);
  for (int i = 0; i < 30000; ++i) histogram.Fill(rng.Exponential(tau));
  auto fit = FitExponentialDecay(histogram, tau * 2.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->lifetime, tau, 0.05 * tau);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExponentialLifetimeSweep,
                         ::testing::Values(0.05, 0.123, 0.5, 2.0, 10.0));

TEST(FitsTest, SidebandSubtraction) {
  Histo1D histogram("/h", 40, 100.0, 180.0);
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) histogram.Fill(rng.Uniform(100.0, 180.0));
  for (int i = 0; i < 600; ++i) histogram.Fill(rng.Gauss(125.0, 1.8));
  auto result = SidebandSubtract(histogram, 120.0, 130.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->signal_yield, 600.0, 4.0 * result->signal_error);
  EXPECT_GT(result->background_estimate, 300.0);
}

TEST(FitsTest, SidebandWindowValidation) {
  Histo1D histogram("/h", 10, 0.0, 10.0);
  histogram.Fill(5.0);
  EXPECT_FALSE(SidebandSubtract(histogram, 6.0, 4.0).ok());
  EXPECT_FALSE(SidebandSubtract(histogram, -1.0, 4.0).ok());
  EXPECT_FALSE(SidebandSubtract(histogram, 1.0, 11.0).ok());
}

// ------------------------------------------------------------------ Limits

TEST(LimitsTest, UpperLimitBasicProperties) {
  CountingExperiment experiment;
  experiment.observed = 3.0;
  experiment.background = 3.0;
  experiment.signal_per_mu = 10.0;
  auto limit = UpperLimit(experiment);
  ASSERT_TRUE(limit.ok());
  EXPECT_GT(*limit, 0.0);
  EXPECT_LT(*limit, 2.0);  // 10 signal events would be a glaring excess
}

TEST(LimitsTest, LimitScalesInverselyWithSignal) {
  CountingExperiment weak;
  weak.observed = 5.0;
  weak.background = 5.0;
  weak.signal_per_mu = 2.0;
  CountingExperiment strong = weak;
  strong.signal_per_mu = 20.0;
  auto weak_limit = UpperLimit(weak);
  auto strong_limit = UpperLimit(strong);
  ASSERT_TRUE(weak_limit.ok());
  ASSERT_TRUE(strong_limit.ok());
  EXPECT_GT(*weak_limit, 5.0 * *strong_limit);
}

TEST(LimitsTest, ExcessWeakensLimit) {
  CountingExperiment no_excess;
  no_excess.observed = 5.0;
  no_excess.background = 5.0;
  no_excess.signal_per_mu = 5.0;
  CountingExperiment excess = no_excess;
  excess.observed = 15.0;
  auto limit_no = UpperLimit(no_excess);
  auto limit_yes = UpperLimit(excess);
  ASSERT_TRUE(limit_no.ok());
  ASSERT_TRUE(limit_yes.ok());
  EXPECT_GT(*limit_yes, *limit_no);
}

TEST(LimitsTest, CredibilityMonotonic) {
  CountingExperiment experiment;
  experiment.observed = 4.0;
  experiment.background = 4.0;
  experiment.signal_per_mu = 3.0;
  auto l90 = UpperLimit(experiment, 0.90);
  auto l99 = UpperLimit(experiment, 0.99);
  ASSERT_TRUE(l90.ok());
  ASSERT_TRUE(l99.ok());
  EXPECT_LT(*l90, *l99);
}

TEST(LimitsTest, Validation) {
  CountingExperiment experiment;
  experiment.signal_per_mu = 0.0;
  EXPECT_FALSE(UpperLimit(experiment).ok());
  experiment.signal_per_mu = 1.0;
  EXPECT_FALSE(UpperLimit(experiment, 0.0).ok());
  EXPECT_FALSE(UpperLimit(experiment, 1.0).ok());
  experiment.observed = -1.0;
  EXPECT_FALSE(UpperLimit(experiment).ok());
}

TEST(LimitsTest, ExpectedLimitUsesBackgroundAsObservation) {
  CountingExperiment experiment;
  experiment.observed = 50.0;  // big excess
  experiment.background = 5.0;
  experiment.signal_per_mu = 5.0;
  auto observed = UpperLimit(experiment);
  auto expected = ExpectedLimit(experiment);
  ASSERT_TRUE(observed.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(*observed, *expected);
}

TEST(LimitsTest, DiscoverySignificance) {
  EXPECT_DOUBLE_EQ(DiscoverySignificance(5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(DiscoverySignificance(3.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(DiscoverySignificance(5.0, 0.0), 0.0);
  double z = DiscoverySignificance(25.0, 10.0);
  EXPECT_GT(z, 3.9);
  EXPECT_LT(z, 4.8);
  // More excess -> more significance.
  EXPECT_GT(DiscoverySignificance(40.0, 10.0), z);
}

}  // namespace
}  // namespace daspos
