// Tests for the workflow engine and provenance capture: dataflow ordering,
// failure propagation, provenance records/ancestry/gap detection, the full
// standard chain, and reproduction via captured configuration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "conditions/store.h"
#include "event/pdg.h"
#include "support/fault.h"
#include "tiers/dataset.h"
#include "workflow/engine.h"
#include "workflow/journal.h"
#include "workflow/provenance.h"
#include "workflow/steps.h"

namespace daspos {
namespace {

// --------------------------------------------------------------- Provenance

ProvenanceRecord MakeRecord(const std::string& dataset,
                            std::vector<std::string> parents) {
  ProvenanceRecord record;
  record.dataset = dataset;
  record.producer = "step";
  record.producer_version = "1.0";
  record.config = Json::Object();
  record.config_hash = "deadbeef";
  record.parents = std::move(parents);
  return record;
}

TEST(ProvenanceStoreTest, AddGet) {
  ProvenanceStore store;
  ASSERT_TRUE(store.Add(MakeRecord("a", {})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("b", {"a"})).ok());
  auto b = store.Get("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->parents.size(), 1u);
  EXPECT_EQ(b->sequence, 2u);
  EXPECT_TRUE(store.Get("c").status().IsNotFound());
  EXPECT_TRUE(store.Add(MakeRecord("a", {})).IsAlreadyExists());
  EXPECT_TRUE(store.Add(MakeRecord("", {})).IsInvalidArgument());
}

TEST(ProvenanceStoreTest, AncestryWalksTransitively) {
  ProvenanceStore store;
  ASSERT_TRUE(store.Add(MakeRecord("gen", {})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("raw", {"gen"})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("reco", {"raw"})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("aod", {"reco"})).ok());
  auto ancestry = store.Ancestry("aod");
  ASSERT_TRUE(ancestry.ok());
  ASSERT_EQ(ancestry->size(), 3u);
  EXPECT_EQ((*ancestry)[0], "reco");
  EXPECT_EQ((*ancestry)[2], "gen");
  EXPECT_TRUE(store.Ancestry("nope").status().IsNotFound());
}

TEST(ProvenanceStoreTest, GapDetection) {
  ProvenanceStore store;
  // 'derived' references 'aod' which was produced without provenance
  // capture — the §3.2 failure mode.
  ASSERT_TRUE(store.Add(MakeRecord("derived", {"aod"})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("plots", {"derived", "reference"})).ok());
  auto missing = store.MissingParents();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], "aod");
  EXPECT_EQ(missing[1], "reference");
}

TEST(ProvenanceStoreTest, NoGapsWhenChainComplete) {
  ProvenanceStore store;
  ASSERT_TRUE(store.Add(MakeRecord("gen", {})).ok());
  ASSERT_TRUE(store.Add(MakeRecord("raw", {"gen"})).ok());
  EXPECT_TRUE(store.MissingParents().empty());
}

TEST(ProvenanceStoreTest, SerializeParseRoundTrip) {
  ProvenanceStore store;
  ProvenanceRecord record = MakeRecord("aod", {"reco"});
  record.config = Json::Object();
  record.config["seed"] = 42;
  record.output_bytes = 1000;
  record.output_events = 7;
  ASSERT_TRUE(store.Add(record).ok());
  ASSERT_TRUE(store.Add(MakeRecord("derived", {"aod"})).ok());

  auto parsed = ProvenanceStore::Parse(store.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  auto restored = parsed->Get("aod");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->config.Get("seed").as_int(), 42);
  EXPECT_EQ(restored->output_events, 7u);
  EXPECT_EQ(restored->sequence, 1u);
  EXPECT_EQ(parsed->Datasets().front(), "aod");
}

TEST(ProvenanceStoreTest, ParseErrors) {
  EXPECT_FALSE(ProvenanceStore::Parse("{}").ok());
  EXPECT_FALSE(ProvenanceStore::Parse("[{}]").ok());
  EXPECT_FALSE(ProvenanceStore::Parse("not json").ok());
}

// ------------------------------------------------------------------ Engine

/// Minimal test step: concatenates inputs and appends its tag. An optional
/// sleep perturbs completion order under parallel execution, so the
/// determinism tests exercise real out-of-order completion.
class TagStep : public WorkflowStep {
 public:
  explicit TagStep(std::string tag, bool fail = false, int sleep_ms = 0)
      : tag_(std::move(tag)), fail_(fail), sleep_ms_(sleep_ms) {}
  std::string name() const override { return "tag_" + tag_; }
  std::string version() const override { return "1"; }
  Json Config() const override {
    Json json = Json::Object();
    json["tag"] = tag_;
    return json;
  }
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext*) const override {
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    if (fail_) return Status::IOError("step failed deliberately");
    std::string out;
    for (std::string_view input : inputs) out += std::string(input) + "|";
    return out + tag_;
  }

 private:
  std::string tag_;
  bool fail_;
  int sleep_ms_;
};

TEST(WorkflowTest, ExecutesInDataOrder) {
  Workflow workflow;
  // Register out of order: c(b), b(a), a().
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("c"), {"b"}, "c").ok());
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("b"), {"a"}, "b").ok());
  ASSERT_TRUE(workflow.AddStep(std::make_shared<TagStep>("a"), {}, "a").ok());

  WorkflowContext context;
  auto report = workflow.Execute(&context);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->steps.size(), 3u);
  EXPECT_EQ(*context.GetDataset("c"), "a|b|c");
}

TEST(WorkflowTest, DuplicateOutputRejected) {
  Workflow workflow;
  ASSERT_TRUE(workflow.AddStep(std::make_shared<TagStep>("a"), {}, "x").ok());
  EXPECT_TRUE(workflow.AddStep(std::make_shared<TagStep>("b"), {}, "x")
                  .IsAlreadyExists());
}

TEST(WorkflowTest, MissingInputBlocksExecution) {
  Workflow workflow;
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("a"), {"ghost"}, "a").ok());
  WorkflowContext context;
  auto report = workflow.Execute(&context);
  EXPECT_TRUE(report.status().IsFailedPrecondition());
  EXPECT_NE(report.status().message().find("tag_a"), std::string::npos);
}

TEST(WorkflowTest, StepFailurePropagates) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("a", /*fail=*/true), {},
                           "a")
                  .ok());
  WorkflowContext context;
  EXPECT_TRUE(workflow.Execute(&context).status().IsIOError());
}

TEST(WorkflowTest, ProvenanceCapturedPerStep) {
  Workflow workflow;
  ASSERT_TRUE(workflow.AddStep(std::make_shared<TagStep>("a"), {}, "a").ok());
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("b"), {"a"}, "b").ok());
  WorkflowContext context;
  ProvenanceStore provenance;
  ASSERT_TRUE(workflow.Execute(&context, &provenance).ok());
  EXPECT_EQ(provenance.size(), 2u);
  auto record = provenance.Get("b");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->producer, "tag_b");
  EXPECT_EQ(record->parents, std::vector<std::string>{"a"});
  EXPECT_EQ(record->config_hash.size(), 64u);
  EXPECT_TRUE(provenance.MissingParents().empty());
}

TEST(WorkflowTest, SelfCycleRejectedAtAddStep) {
  Workflow workflow;
  auto status =
      workflow.AddStep(std::make_shared<TagStep>("a"), {"x", "a"}, "a");
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("self-cycle"), std::string::npos);
  EXPECT_NE(status.message().find("tag_a"), std::string::npos);
  EXPECT_EQ(workflow.step_count(), 0u);
}

TEST(WorkflowTest, BlockedDiagnosticNamesMissingInputs) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("a"), {"ghost", "wraith"},
                           "a")
                  .ok());
  // b waits on a, so it is blocked transitively: its missing input is "a".
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("b"), {"a"}, "b").ok());
  WorkflowContext context;
  auto report = workflow.Execute(&context);
  ASSERT_TRUE(report.status().IsFailedPrecondition());
  const std::string& message = report.status().message();
  EXPECT_NE(message.find("tag_a"), std::string::npos);
  EXPECT_NE(message.find("ghost"), std::string::npos);
  EXPECT_NE(message.find("wraith"), std::string::npos);
  EXPECT_NE(message.find("tag_b"), std::string::npos);
  EXPECT_NE(message.find("missing inputs"), std::string::npos);
}

// ------------------------------------------------------- parallel engine

Workflow FanoutWorkflow(int width) {
  Workflow workflow;
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("src"), {}, "src")
                  .ok());
  std::vector<std::string> shards;
  for (int i = 0; i < width; ++i) {
    std::string output = "w" + std::to_string(i);
    // Staggered sleeps: later-registered shards finish first under
    // parallel execution, the worst case for ordering determinism.
    EXPECT_TRUE(workflow
                    .AddStep(std::make_shared<TagStep>(
                                 output, /*fail=*/false,
                                 /*sleep_ms=*/(width - i) % 4),
                             {"src"}, output)
                    .ok());
    shards.push_back(output);
  }
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("join"), shards, "join")
                  .ok());
  return workflow;
}

TEST(WorkflowTest, ParallelFanoutMatchesSerialOrdering) {
  Workflow workflow = FanoutWorkflow(16);

  WorkflowContext serial_context;
  ProvenanceStore serial_provenance;
  ExecuteOptions serial_options;
  serial_options.max_threads = 1;
  auto serial = workflow.Execute(&serial_context, &serial_provenance,
                                 serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->threads_used, 1u);

  WorkflowContext parallel_context;
  ProvenanceStore parallel_provenance;
  ExecuteOptions parallel_options;
  parallel_options.max_threads = 4;
  auto parallel = workflow.Execute(&parallel_context, &parallel_provenance,
                                   parallel_options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->threads_used, 4u);

  // The report sequence and the serialized provenance chain are
  // byte-identical regardless of thread count.
  ASSERT_EQ(serial->steps.size(), parallel->steps.size());
  for (size_t i = 0; i < serial->steps.size(); ++i) {
    EXPECT_EQ(serial->steps[i].step, parallel->steps[i].step);
    EXPECT_EQ(serial->steps[i].output, parallel->steps[i].output);
    EXPECT_EQ(serial->steps[i].output_bytes, parallel->steps[i].output_bytes);
  }
  EXPECT_EQ(serial_provenance.Serialize(), parallel_provenance.Serialize());
  EXPECT_EQ(*serial_context.GetDataset("join"),
            *parallel_context.GetDataset("join"));
}

TEST(WorkflowTest, MidGraphFailureStopsDispatch) {
  Workflow workflow;
  ASSERT_TRUE(workflow.AddStep(std::make_shared<TagStep>("a"), {}, "a").ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("b", /*fail=*/true),
                           {"a"}, "b")
                  .ok());
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("c"), {"b"}, "c").ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.max_threads = 4;
  auto report = workflow.Execute(&context, nullptr, options);
  EXPECT_TRUE(report.status().IsIOError());
  EXPECT_TRUE(context.HasDataset("a"));
  EXPECT_FALSE(context.HasDataset("b"));
  // Dispatch stopped at the failure: the dependent step never ran.
  EXPECT_FALSE(context.HasDataset("c"));
}

/// Exercises the thread-safe context from inside running steps: every step
/// reads a shared dataset and publishes an extra side dataset while its
/// siblings do the same concurrently.
class SideEffectStep : public WorkflowStep {
 public:
  explicit SideEffectStep(std::string tag) : tag_(std::move(tag)) {}
  std::string name() const override { return "side_" + tag_; }
  std::string version() const override { return "1"; }
  Json Config() const override {
    Json json = Json::Object();
    json["tag"] = tag_;
    return json;
  }
  Result<std::string> Run(const std::vector<std::string_view>&,
                          WorkflowContext* context) const override {
    auto shared = context->GetDataset("shared");
    if (!shared.ok()) return shared.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto put = context->PutDataset("extra_" + tag_, std::string(*shared));
    if (!put.ok()) return put;
    (void)context->TotalBytes();  // concurrent read-side traversal
    return std::string(*shared) + ":" + tag_;
  }

 private:
  std::string tag_;
};

TEST(WorkflowTest, ConcurrentContextAccessFromSteps) {
  Workflow workflow;
  constexpr int kSteps = 8;
  for (int i = 0; i < kSteps; ++i) {
    std::string tag = std::to_string(i);
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<SideEffectStep>(tag), {},
                             "out_" + tag)
                    .ok());
  }
  WorkflowContext context;
  ASSERT_TRUE(context.PutDataset("shared", "payload").ok());
  ExecuteOptions options;
  options.max_threads = 4;
  auto report = workflow.Execute(&context, nullptr, options);
  ASSERT_TRUE(report.ok()) << report.status();
  for (int i = 0; i < kSteps; ++i) {
    std::string tag = std::to_string(i);
    EXPECT_EQ(*context.GetDataset("out_" + tag), "payload:" + tag);
    EXPECT_EQ(*context.GetDataset("extra_" + tag), "payload");
  }
  EXPECT_EQ(context.DatasetNames().size(), 1u + 2u * kSteps);
}

TEST(WorkflowTest, ReportCarriesMetricsAndJson) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("a", /*fail=*/false,
                                                     /*sleep_ms=*/2),
                           {}, "a")
                  .ok());
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<TagStep>("b"), {"a"}, "b").ok());
  WorkflowContext context;
  auto report = workflow.Execute(&context);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->steps.size(), 2u);
  EXPECT_GE(report->steps[0].wall_ms, 1.0);  // slept ~2ms
  EXPECT_GT(report->steps[0].output_bytes, 0u);
  EXPECT_GE(report->wall_ms, report->steps[0].wall_ms);
  EXPECT_GE(report->threads_used, 1u);

  Json json = report->ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Get("steps").size(), 2u);
  EXPECT_EQ(json.Get("steps").at(0).Get("step").as_string(), "tag_a");
  EXPECT_GE(json.Get("steps").at(0).Get("wall_ms").as_number(), 1.0);

  std::string table = report->RenderTimingTable("timing:");
  EXPECT_NE(table.find("tag_a"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(WorkflowContextTest, DatasetStorage) {
  WorkflowContext context;
  ASSERT_TRUE(context.PutDataset("x", "bytes").ok());
  EXPECT_TRUE(context.PutDataset("x", "other").IsAlreadyExists());
  EXPECT_TRUE(context.PutDataset("", "y").IsInvalidArgument());
  EXPECT_TRUE(context.HasDataset("x"));
  EXPECT_EQ(*context.GetDataset("x"), "bytes");
  EXPECT_TRUE(context.GetDataset("y").status().IsNotFound());
  EXPECT_EQ(context.TotalBytes(), 5u);
}

// -------------------------------------------------------- standard chain

ConditionsDb StandardConditions(const CalibrationSet& calib) {
  ConditionsDb db;
  EXPECT_TRUE(db.Append(kCalibrationTag, 1, calib.ToPayload()).ok());
  return db;
}

Workflow StandardChain(uint64_t seed, size_t events) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = seed;

  SimulationConfig sim_config;
  sim_config.seed = seed + 1;
  sim_config.noise_cells_mean = 5.0;

  Workflow workflow;
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<GenerationStep>(
                               gen_config, events, "zmm_gen"),
                           {}, "zmm_gen")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<SimulationStep>(sim_config, 7,
                                                            "zmm_raw"),
                           {"zmm_gen"}, "zmm_raw")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<ReconstructionStep>(
                               sim_config.geometry, "zmm_reco"),
                           {"zmm_raw"}, "zmm_reco")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<AodReductionStep>("zmm_aod"),
                           {"zmm_reco"}, "zmm_aod")
                  .ok());
  EXPECT_TRUE(
      workflow
          .AddStep(std::make_shared<DerivationStep>(
                       SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0),
                       SlimSpec::LeptonsOnly(10.0), "zmm_derived"),
                   {"zmm_aod"}, "zmm_derived")
          .ok());
  return workflow;
}

TEST(StandardChainTest, RunsEndToEndWithProvenance) {
  CalibrationSet calib;
  ConditionsDb conditions = StandardConditions(calib);
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;

  Workflow workflow = StandardChain(81, 40);
  auto report = workflow.Execute(&context, &provenance);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->steps.size(), 5u);

  // Tier sizes decrease monotonically RAW -> RECO -> AOD -> derived.
  uint64_t raw = context.GetDataset("zmm_raw")->size();
  uint64_t reco = context.GetDataset("zmm_reco")->size();
  uint64_t aod = context.GetDataset("zmm_aod")->size();
  uint64_t derived = context.GetDataset("zmm_derived")->size();
  EXPECT_GT(raw, reco);
  EXPECT_GT(reco, aod);
  EXPECT_GT(aod, derived);

  // Provenance chain is complete and walks back to generation.
  EXPECT_TRUE(provenance.MissingParents().empty());
  auto ancestry = provenance.Ancestry("zmm_derived");
  ASSERT_TRUE(ancestry.ok());
  EXPECT_EQ(ancestry->size(), 4u);
  EXPECT_EQ(ancestry->back(), "zmm_gen");

  // The reconstruction consulted the conditions database.
  EXPECT_GT(conditions.lookup_count(), 0u);
}

TEST(StandardChainTest, ReconstructionFailsWithoutConditions) {
  WorkflowContext context;  // no conditions provider
  Workflow workflow = StandardChain(82, 5);
  auto report = workflow.Execute(&context);
  EXPECT_TRUE(report.status().IsFailedPrecondition());
  EXPECT_NE(report.status().message().find("conditions"), std::string::npos);
}

TEST(StandardChainTest, ReproductionFromCapturedConfig) {
  // Run the chain, capture provenance, then re-run generation from the
  // captured config: byte-identical output (the preservation property).
  CalibrationSet calib;
  ConditionsDb conditions = StandardConditions(calib);
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  Workflow workflow = StandardChain(83, 20);
  ASSERT_TRUE(workflow.Execute(&context, &provenance).ok());

  auto record = provenance.Get("zmm_gen");
  ASSERT_TRUE(record.ok());
  auto config = GeneratorConfigFromJson(record->config.Get("generator"));
  ASSERT_TRUE(config.ok());
  size_t events =
      static_cast<size_t>(record->config.Get("event_count").as_int());

  GenerationStep replay(*config, events, "zmm_gen");
  auto replayed = replay.Run({}, &context);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, *context.GetDataset("zmm_gen"));
}

TEST(MergeStepTest, ConcatenatesSameTierDatasets) {
  // Two generation batches merged into one sample (the §3.1 compile step).
  GeneratorConfig config_a;
  config_a.process = Process::kZToLL;
  config_a.seed = 91;
  GeneratorConfig config_b = config_a;
  config_b.seed = 92;

  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<GenerationStep>(config_a, 10,
                                                            "batch_a"),
                           {}, "batch_a")
                  .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<GenerationStep>(config_b, 15,
                                                            "batch_b"),
                           {}, "batch_b")
                  .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<MergeStep>("merged"),
                           {"batch_a", "batch_b"}, "merged")
                  .ok());
  WorkflowContext context;
  ProvenanceStore provenance;
  ASSERT_TRUE(workflow.Execute(&context, &provenance).ok());

  DatasetInfo info;
  auto merged = ReadGenDataset(*context.GetDataset("merged"), &info);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->size(), 25u);
  ASSERT_EQ(info.parents.size(), 2u);
  EXPECT_EQ(info.parents[0], "batch_a");
  EXPECT_EQ(info.parents[1], "batch_b");
  // Events from both batches survive byte-identically.
  auto batch_a = ReadGenDataset(*context.GetDataset("batch_a"));
  ASSERT_TRUE(batch_a.ok());
  EXPECT_EQ((*merged)[0].ToRecord(), (*batch_a)[0].ToRecord());
  // Provenance records the two-parent merge.
  auto record = provenance.Get("merged");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->parents.size(), 2u);
  EXPECT_EQ(record->output_events, 25u);
}

TEST(MergeStepTest, RejectsMixedTiersAndEmptyInput) {
  GeneratorConfig config;
  config.seed = 93;
  GenerationStep generate(config, 5, "gen");
  WorkflowContext context;
  auto gen_blob = generate.Run({}, &context);
  ASSERT_TRUE(gen_blob.ok());

  // A RAW dataset to mix in.
  SimulationConfig sim_config;
  SimulationStep simulate(sim_config, 1, "raw");
  auto raw_blob = simulate.Run({*gen_blob}, &context);
  ASSERT_TRUE(raw_blob.ok());

  MergeStep merge("merged");
  EXPECT_TRUE(merge.Run({}, &context).status().IsInvalidArgument());
  auto mixed = merge.Run({*gen_blob, *raw_blob}, &context);
  EXPECT_TRUE(mixed.status().IsInvalidArgument());
  // Single input is a valid (if trivial) merge.
  auto single = merge.Run({*gen_blob}, &context);
  ASSERT_TRUE(single.ok());
  auto events = ReadGenDataset(*single);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 5u);
}

TEST(GeneratorConfigJsonTest, RoundTrip) {
  GeneratorConfig config;
  config.process = Process::kZPrimeToLL;
  config.seed = 777;
  config.pileup_mean = 12.5;
  config.zprime_mass = 850.0;
  config.zprime_width = 25.0;
  config.tune_activity = 1.3;
  config.lepton_flavor = pdg::kElectron;
  auto restored = GeneratorConfigFromJson(GeneratorConfigToJson(config));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->process, config.process);
  EXPECT_EQ(restored->seed, config.seed);
  EXPECT_DOUBLE_EQ(restored->zprime_mass, config.zprime_mass);
  EXPECT_EQ(restored->lepton_flavor, config.lepton_flavor);
  EXPECT_TRUE(GeneratorConfigFromJson(Json::Object()).status()
                  .IsInvalidArgument());
}

// ------------------------------------------------ fault tolerance (PR 3)

/// TagStep that counts Run invocations and can fail its first N attempts —
/// the shape of a transient infrastructure hiccup.
class FlakyStep : public WorkflowStep {
 public:
  FlakyStep(std::string tag, std::shared_ptr<std::atomic<int>> runs,
            int failures_before_success = 0)
      : tag_(std::move(tag)),
        runs_(std::move(runs)),
        failures_before_success_(failures_before_success) {}
  std::string name() const override { return "flaky_" + tag_; }
  std::string version() const override { return "1"; }
  Json Config() const override {
    Json json = Json::Object();
    json["tag"] = tag_;
    return json;
  }
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext*) const override {
    int attempt = ++*runs_;
    if (attempt <= failures_before_success_) {
      return Status::IOError("transient hiccup on attempt " +
                             std::to_string(attempt));
    }
    std::string out;
    for (std::string_view input : inputs) out += std::string(input) + "|";
    return out + tag_;
  }

 private:
  std::string tag_;
  std::shared_ptr<std::atomic<int>> runs_;
  int failures_before_success_;
};

std::string TempRunDir(const std::string& label) {
  return (std::filesystem::temp_directory_path() /
          ("daspos_wf_" + label + "_" + std::to_string(::getpid())))
      .string();
}

TEST(WorkflowTest, DuplicateStepNameRejected) {
  Workflow workflow;
  ASSERT_TRUE(workflow.AddStep(std::make_shared<TagStep>("a"), {}, "x").ok());
  auto status = workflow.AddStep(std::make_shared<TagStep>("a"), {}, "y");
  EXPECT_TRUE(status.IsAlreadyExists());
  EXPECT_NE(status.message().find("tag_a"), std::string::npos);
  EXPECT_EQ(workflow.step_count(), 1u);
}

TEST(WorkflowRetryTest, FlakyStepSucceedsWithinBudget) {
  Workflow workflow;
  auto runs = std::make_shared<std::atomic<int>>(0);
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<FlakyStep>(
                               "a", runs, /*failures_before_success=*/2),
                           {}, "a")
                  .ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.max_step_retries = 3;
  options.retry_backoff_ms = 0.0;
  auto report = workflow.Execute(&context, nullptr, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(runs->load(), 3);
  ASSERT_EQ(report->steps.size(), 1u);
  EXPECT_EQ(report->steps[0].attempts, 3);
  EXPECT_EQ(*context.GetDataset("a"), "a");
}

TEST(WorkflowRetryTest, RetriesExhaustedPropagatesLastError) {
  Workflow workflow;
  auto runs = std::make_shared<std::atomic<int>>(0);
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<FlakyStep>(
                               "a", runs, /*failures_before_success=*/10),
                           {}, "a")
                  .ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.max_step_retries = 2;
  options.retry_backoff_ms = 0.0;
  auto report = workflow.Execute(&context, nullptr, options);
  EXPECT_TRUE(report.status().IsIOError());
  EXPECT_EQ(runs->load(), 3);  // first attempt + 2 retries
}

TEST(WorkflowRetryTest, StepTimeoutBecomesDeadlineExceeded) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("slow", /*fail=*/false,
                                                     /*sleep_ms=*/40),
                           {}, "slow")
                  .ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.step_timeout_ms = 1.0;  // the 40ms sleep cannot fit
  auto report = workflow.Execute(&context, nullptr, options);
  EXPECT_TRUE(report.status().IsDeadlineExceeded());
  // A timed-out attempt's output is discarded, not half-committed.
  EXPECT_FALSE(context.HasDataset("slow"));
}

TEST(WorkflowKeepGoingTest, IndependentBranchesSurviveAFailure) {
  // doomed -> dependent is one branch; healthy is independent.
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("doomed", /*fail=*/true),
                           {}, "doomed")
                  .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("dependent"), {"doomed"},
                           "dependent")
                  .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<TagStep>("healthy"), {}, "healthy")
                  .ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.keep_going = true;
  auto report = workflow.Execute(&context, nullptr, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->fully_succeeded());
  EXPECT_EQ(report->failed_steps,
            std::vector<std::string>{"tag_doomed"});
  EXPECT_EQ(report->skipped_steps,
            std::vector<std::string>{"tag_dependent"});
  // The independent branch completed and is in the report.
  EXPECT_EQ(*context.GetDataset("healthy"), "healthy");
  ASSERT_EQ(report->steps.size(), 1u);
  EXPECT_EQ(report->steps[0].output, "healthy");
  EXPECT_FALSE(context.HasDataset("doomed"));
  EXPECT_FALSE(context.HasDataset("dependent"));
}

TEST(ChaosTest, FanoutUnderInjectedFaultsMatchesFaultFreeRun) {
  Workflow workflow = FanoutWorkflow(16);

  WorkflowContext clean_context;
  ProvenanceStore clean_provenance;
  ExecuteOptions clean_options;
  clean_options.max_threads = 4;
  auto clean = workflow.Execute(&clean_context, &clean_provenance,
                                clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // 30% of step attempts fail at the injection point; with enough retries
  // the run must converge to the byte-identical fault-free result.
  auto spec = FaultSpec::Parse("seed=11,rate=0.3");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  WorkflowContext chaos_context;
  ProvenanceStore chaos_provenance;
  ExecuteOptions chaos_options;
  chaos_options.max_threads = 4;
  chaos_options.max_step_retries = 25;
  chaos_options.retry_backoff_ms = 0.0;
  chaos_options.step_faults = &plan;
  auto chaos = workflow.Execute(&chaos_context, &chaos_provenance,
                                chaos_options);
  ASSERT_TRUE(chaos.ok()) << chaos.status();

  EXPECT_GT(plan.injected(), 0u);
  EXPECT_EQ(chaos_provenance.Serialize(), clean_provenance.Serialize());
  EXPECT_EQ(*chaos_context.GetDataset("join"),
            *clean_context.GetDataset("join"));
  ASSERT_EQ(chaos->steps.size(), clean->steps.size());
  for (size_t i = 0; i < clean->steps.size(); ++i) {
    EXPECT_EQ(chaos->steps[i].step, clean->steps[i].step);
    EXPECT_EQ(chaos->steps[i].output_bytes, clean->steps[i].output_bytes);
  }
}

TEST(JournalTest, ResumeSkipsCheckpointedSteps) {
  std::string dir = TempRunDir("resume");
  std::filesystem::remove_all(dir);
  auto runs_a = std::make_shared<std::atomic<int>>(0);
  auto runs_b = std::make_shared<std::atomic<int>>(0);
  auto runs_c = std::make_shared<std::atomic<int>>(0);

  {
    // First run: b always fails, so only a is checkpointed.
    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs_a), {}, "a")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("b", runs_b, 100),
                             {"a"}, "b")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("c", runs_c), {"b"},
                             "c")
                    .ok());
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.max_threads = 1;
    options.journal = journal->get();
    auto report = workflow.Execute(&context, nullptr, options);
    EXPECT_TRUE(report.status().IsIOError());  // b took the run down
    EXPECT_EQ(runs_a->load(), 1);
  }

  {
    // Second run, resumed: a restores from its checkpoint without running;
    // b (now healthy) and c execute.
    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs_a), {}, "a")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("b", runs_b), {"a"},
                             "b")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("c", runs_c), {"b"},
                             "c")
                    .ok());
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.max_threads = 1;
    options.journal = journal->get();
    options.resume = true;
    auto report = workflow.Execute(&context, nullptr, options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(runs_a->load(), 1);  // never re-ran
    ASSERT_EQ(report->steps.size(), 3u);
    EXPECT_TRUE(report->steps[0].from_checkpoint);
    EXPECT_EQ(report->steps[0].attempts, 0);
    EXPECT_FALSE(report->steps[1].from_checkpoint);
    EXPECT_EQ(*context.GetDataset("c"), "a|b|c");
  }
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, FullyCheckpointedRunReExecutesNothing) {
  std::string dir = TempRunDir("full");
  std::filesystem::remove_all(dir);
  auto runs_a = std::make_shared<std::atomic<int>>(0);
  auto runs_b = std::make_shared<std::atomic<int>>(0);

  auto build = [&]() {
    Workflow workflow;
    EXPECT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs_a), {}, "a")
                    .ok());
    EXPECT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("b", runs_b), {"a"},
                             "b")
                    .ok());
    return workflow;
  };

  std::string first_blob;
  {
    Workflow workflow = build();
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.journal = journal->get();
    ASSERT_TRUE(workflow.Execute(&context, nullptr, options).ok());
    first_blob = std::string(*context.GetDataset("b"));
  }
  {
    Workflow workflow = build();
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.journal = journal->get();
    options.resume = true;
    auto report = workflow.Execute(&context, nullptr, options);
    ASSERT_TRUE(report.ok()) << report.status();
    // Zero step re-executions: both counters still read 1.
    EXPECT_EQ(runs_a->load(), 1);
    EXPECT_EQ(runs_b->load(), 1);
    for (const auto& step : report->steps) {
      EXPECT_TRUE(step.from_checkpoint);
    }
    EXPECT_EQ(*context.GetDataset("b"), first_blob);
  }
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, TruncatedJournalLoadsIntactPrefix) {
  std::string dir = TempRunDir("trunc");
  std::filesystem::remove_all(dir);
  auto runs_a = std::make_shared<std::atomic<int>>(0);
  auto runs_b = std::make_shared<std::atomic<int>>(0);
  {
    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs_a), {}, "a")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("b", runs_b), {"a"},
                             "b")
                    .ok());
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.max_threads = 1;
    options.journal = journal->get();
    ASSERT_TRUE(workflow.Execute(&context, nullptr, options).ok());
  }

  // Simulate a crash mid-append: chop the tail off the last journal line.
  std::string lines_path = RunJournal::LinesPath(dir);
  auto size = std::filesystem::file_size(lines_path);
  std::filesystem::resize_file(lines_path, size - 10);

  {
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    // Only the intact first record survived.
    EXPECT_EQ((*journal)->records().size(), 1u);
    EXPECT_TRUE((*journal)->Find("flaky_a").has_value());
    EXPECT_FALSE((*journal)->Find("flaky_b").has_value());

    // Resume re-runs exactly the truncated step.
    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs_a), {}, "a")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("b", runs_b), {"a"},
                             "b")
                    .ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.max_threads = 1;
    options.journal = journal->get();
    options.resume = true;
    auto report = workflow.Execute(&context, nullptr, options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(runs_a->load(), 1);  // checkpoint held
    EXPECT_EQ(runs_b->load(), 2);  // truncated record forced a re-run
    EXPECT_EQ(*context.GetDataset("b"), "a|b");
  }
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, FreshJournalFirstRecordSurvivesReopen) {
  // Regression for the fresh-journal durability gap: the very first Append
  // creates journal.jsonl (a directory-entry mutation), so the record is
  // only checkpointed once the directory itself is synced. Behaviorally:
  // the record and its blob must be fully readable after a cold reopen.
  std::string dir = TempRunDir("fresh_append");
  std::filesystem::remove_all(dir);
  {
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    RunJournal::Record record;
    record.step = "s1";
    record.output = "o1";
    record.config_hash = "h1";
    record.bytes = 3;
    record.events = 1;
    ASSERT_TRUE((*journal)->Append(record, "abc").ok());
  }
  auto reopened = RunJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->records().size(), 1u);
  auto found = (*reopened)->Find("s1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->bytes, 3u);
  EXPECT_EQ(found->events, 1u);
  auto blob = (*reopened)->LoadBlob(found->digest);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "abc");
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, CorruptedNumericFieldsReadAsTruncatedTail) {
  // bytes/events must be non-negative integers. A bit-rotted line where
  // they decode as a string, a fraction, or a negative number — or vanish —
  // is corruption; treating it as bytes=0 would resume from a lie.
  std::string dir = TempRunDir("bad_numeric");
  std::filesystem::remove_all(dir);
  std::string base;
  {
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    RunJournal::Record record;
    record.step = "s1";
    record.output = "o1";
    record.config_hash = "h1";
    record.bytes = 3;
    record.events = 1;
    ASSERT_TRUE((*journal)->Append(record, "abc").ok());
    std::ifstream in(RunJournal::LinesPath(dir));
    std::getline(in, base);
  }
  const std::string prefix =
      "{\"step\":\"s2\",\"output\":\"o2\",\"digest\":\"d\","
      "\"config_hash\":\"h\",";
  for (const std::string& tail :
       {std::string("\"bytes\":\"12\",\"events\":1}"),   // string-typed
        std::string("\"bytes\":1.5,\"events\":1}"),      // fractional
        std::string("\"bytes\":-3,\"events\":1}"),       // negative
        std::string("\"events\":1}"),                    // bytes missing
        std::string("\"bytes\":2}")}) {                  // events missing
    {
      std::ofstream out(RunJournal::LinesPath(dir), std::ios::trunc);
      out << base << "\n" << prefix << tail << "\n";
    }
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ((*journal)->records().size(), 1u) << tail;
    EXPECT_FALSE((*journal)->Find("s2").has_value()) << tail;
  }
  std::filesystem::remove_all(dir);
}

TEST(JournalTest, ConfigChangeInvalidatesCheckpoint) {
  std::string dir = TempRunDir("config");
  std::filesystem::remove_all(dir);
  auto runs = std::make_shared<std::atomic<int>>(0);
  {
    Workflow workflow;
    // TagStep and FlakyStep share neither name nor config hash, so a
    // checkpoint written by one must not satisfy the other.
    ASSERT_TRUE(
        workflow.AddStep(std::make_shared<TagStep>("a"), {}, "a").ok());
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.journal = journal->get();
    ASSERT_TRUE(workflow.Execute(&context, nullptr, options).ok());
  }
  {
    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<FlakyStep>("a", runs), {}, "a")
                    .ok());
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    WorkflowContext context;
    ExecuteOptions options;
    options.journal = journal->get();
    options.resume = true;
    auto report = workflow.Execute(&context, nullptr, options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(runs->load(), 1);  // stale checkpoint ignored, step re-ran
    ASSERT_EQ(report->steps.size(), 1u);
    EXPECT_FALSE(report->steps[0].from_checkpoint);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace daspos
