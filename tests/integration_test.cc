// Integration tests across the whole stack: the full preservation
// lifecycle on a disk-backed archive ("decades later" reprocessing from a
// conditions snapshot), cross-framework reinterpretation feeding HepData,
// and the outreach pipeline over every dialect.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "core/bridge.h"
#include "core/preserved_analysis.h"
#include "event/pdg.h"
#include "hepdata/record.h"
#include "interview/interview.h"
#include "level2/dialects.h"
#include "level2/masterclass.h"
#include "lhada/database.h"
#include "recast/frontend.h"
#include "reco/reconstruction.h"
#include "tiers/dataset.h"
#include "workflow/steps.h"

namespace daspos {
namespace {

constexpr char kLhadaDimuon[] =
    "analysis preserved_dimuon\n"
    "object muons\n"
    "  take muon\n"
    "  select pt > 15\n"
    "cut dimuon\n"
    "  select count(muons) >= 2\n";

/// The "experiment era": run everything, preserve everything, deposit on
/// disk. Returns the archive root and ids.
struct PreservationEra {
  std::string root;
  std::string analysis_id;
  std::string data_id;
  uint64_t derived_events = 0;
  std::string lhada_document;
  uint64_t lhada_passed = 0;
};

PreservationEra RunEra() {
  PreservationEra era;
  era.root = (std::filesystem::temp_directory_path() /
              ("daspos_integration_" + std::to_string(::getpid())))
                 .string();

  // Conditions service with a calibrated, misaligned detector.
  ConditionsDb conditions;
  CalibrationSet calib;
  calib.version = 3;
  calib.tracker_phi_offset = 0.002;
  EXPECT_TRUE(conditions.Append(kCalibrationTag, 1, calib.ToPayload()).ok());

  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 1234;
  SimulationConfig sim_config;
  sim_config.seed = 1235;
  sim_config.calib = calib;  // digitize with the same constants

  Workflow workflow;
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<GenerationStep>(gen_config, 80,
                                                            "era_gen"),
                           {}, "era_gen")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<SimulationStep>(sim_config, 7,
                                                            "era_raw"),
                           {"era_gen"}, "era_raw")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<ReconstructionStep>(
                               sim_config.geometry, "era_reco"),
                           {"era_raw"}, "era_reco")
                  .ok());
  EXPECT_TRUE(workflow
                  .AddStep(std::make_shared<AodReductionStep>("era_aod"),
                           {"era_reco"}, "era_aod")
                  .ok());
  WorkflowContext context;
  context.set_conditions(&conditions);
  ProvenanceStore provenance;
  auto report = workflow.Execute(&context, &provenance);
  EXPECT_TRUE(report.ok()) << report.status();

  // The preserved physics analysis + documentation.
  auto analysis =
      CaptureAnalysis("era-zll", "DASPOS_2014_ZLL", gen_config, 80);
  EXPECT_TRUE(analysis.ok());
  analysis->physics_summary = "era Z->mumu";
  analysis->provenance_json = provenance.Serialize();
  auto snapshot = ConditionsSnapshot::Capture(conditions, 7, {kCalibrationTag});
  EXPECT_TRUE(snapshot.ok());
  analysis->conditions_snapshot = snapshot->Serialize();
  analysis->interview = interview::ExampleInterviews()[1].ToJson();

  // The Les Houches description + its cutflow on the era's AOD.
  lhada::AnalysisDatabase lhada_db;
  auto lhada_name = lhada_db.Submit(kLhadaDimuon);
  EXPECT_TRUE(lhada_name.ok());
  era.lhada_document = *lhada_db.GetDocument(*lhada_name);
  auto description = lhada_db.GetAnalysis(*lhada_name);
  EXPECT_TRUE(description.ok());
  auto aod_events = ReadAodDataset(*context.GetDataset("era_aod"));
  EXPECT_TRUE(aod_events.ok());
  lhada::Cutflow cutflow = description->Run(*aod_events);
  era.lhada_passed = cutflow.passed_counts.back();
  era.derived_events = aod_events->size();

  // Deposit the analysis package and the RAW data on disk.
  FileObjectStore store(era.root);
  Archive archive(&store);
  auto analysis_id = DepositAnalysis(&archive, *analysis);
  EXPECT_TRUE(analysis_id.ok());
  era.analysis_id = *analysis_id;

  SubmissionPackage data_sip;
  data_sip.title = "era RAW + lhada description";
  data_sip.creator = "integration";
  data_sip.files.push_back({"data/era_raw.dspc",
                            "application/x-daspos-container",
                            std::string(*context.GetDataset("era_raw"))});
  data_sip.files.push_back(
      {"analysis/dimuon.lhada", "text/plain", era.lhada_document});
  auto data_id = archive.Deposit(data_sip);
  EXPECT_TRUE(data_id.ok());
  era.data_id = *data_id;
  return era;
}

TEST(IntegrationTest, DecadesLaterReprocessingFromDiskArchive) {
  PreservationEra era = RunEra();

  // ---- decades later: a fresh process, only the archive directory ----
  FileObjectStore store(era.root);
  Archive archive(&store);

  // Re-adopt the long-lived archive and audit everything on disk.
  auto recovered = archive.RecoverCatalog();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 2u);  // analysis package + data package
  FixityReport audit = archive.AuditFixity();
  EXPECT_TRUE(audit.clean());
  EXPECT_GT(audit.objects_checked, 4u);

  // 1. Re-execute the preserved physics analysis: bit-identical.
  auto analysis = RetrieveAnalysis(archive, era.analysis_id);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  auto reexecution = Reexecute(*analysis);
  ASSERT_TRUE(reexecution.ok());
  EXPECT_TRUE(reexecution->validated);
  EXPECT_DOUBLE_EQ(reexecution->worst_reduced_chi2, 0.0);

  // 2. Reprocess the preserved RAW data using ONLY the conditions snapshot
  //    (no conditions database service exists anymore).
  auto data_package = archive.Retrieve(era.data_id);
  ASSERT_TRUE(data_package.ok());
  std::string raw_blob;
  std::string lhada_document;
  for (const PackageFile& file : data_package->content.files) {
    if (file.logical_name == "data/era_raw.dspc") raw_blob = file.bytes;
    if (file.logical_name == "analysis/dimuon.lhada") {
      lhada_document = file.bytes;
    }
  }
  ASSERT_FALSE(raw_blob.empty());
  ASSERT_FALSE(lhada_document.empty());

  auto snapshot = ConditionsSnapshot::Parse(analysis->conditions_snapshot);
  ASSERT_TRUE(snapshot.ok());
  auto payload = snapshot->GetPayload(kCalibrationTag, 7);
  ASSERT_TRUE(payload.ok());
  auto calib = CalibrationSet::FromPayload(*payload);
  ASSERT_TRUE(calib.ok());
  EXPECT_EQ(calib->version, 3u);
  EXPECT_DOUBLE_EQ(calib->tracker_phi_offset, 0.002);

  auto raw_events = ReadRawDataset(raw_blob);
  ASSERT_TRUE(raw_events.ok());
  SimulationConfig default_geometry;
  ReconstructionConfig reco_config;
  reco_config.geometry = default_geometry.geometry;
  reco_config.calib = *calib;
  Reconstructor reconstructor(reco_config);
  std::vector<AodEvent> reprocessed;
  for (const RawEvent& raw : *raw_events) {
    reprocessed.push_back(AodEvent::FromReco(reconstructor.Reconstruct(raw)));
  }
  EXPECT_EQ(reprocessed.size(), era.derived_events);

  // 3. Run the preserved Les Houches description on the reprocessed data:
  //    identical cutflow (deterministic chain + same constants).
  auto description = lhada::AnalysisDescription::Parse(lhada_document);
  ASSERT_TRUE(description.ok());
  lhada::Cutflow cutflow = description->Run(reprocessed);
  EXPECT_EQ(cutflow.passed_counts.back(), era.lhada_passed);

  std::filesystem::remove_all(era.root);
}

TEST(IntegrationTest, ReinterpretationResultsFlowIntoHepData) {
  // RECAST result -> HepData record with the limit table, linked from an
  // INSPIRE id, searchable — the §2.3 information flow end-to-end.
  recast::RecastBackEnd backend;
  ASSERT_TRUE(
      backend.RegisterSearch(recast::DileptonResonanceSearch()).ok());
  recast::RecastFrontEnd frontend(&backend);

  Histo1D limits("/limits/zprime", 3, 700.0, 1300.0);
  int bin = 0;
  for (double mass : {800.0, 1000.0, 1200.0}) {
    GeneratorConfig model;
    model.process = Process::kZPrimeToLL;
    model.zprime_mass = mass;
    model.zprime_width = 0.03 * mass;
    model.lepton_flavor = pdg::kMuon;
    model.seed = 999;
    recast::RecastRequest request;
    request.search_name = "DASPOS_EXO_14_001";
    request.requester = "integration";
    request.model = GeneratorConfigToJson(model);
    request.model_cross_section_pb = 0.05;
    request.event_count = 150;
    auto id = frontend.Submit(request);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(frontend.ProcessQueue().ok());
    ASSERT_TRUE(frontend.Approve(*id).ok());
    auto result = frontend.GetResult(*id);
    ASSERT_TRUE(result.ok());
    limits.SetBin(bin++, result->BestUpperLimit(), 0.0);
  }

  hepdata::HepDataArchive hepdata_archive;
  hepdata::HepDataRecord record;
  record.id = "ins_recast_zprime";
  record.title = "Upper limits on Z' production from RECAST";
  record.experiment = "DASPOS";
  record.year = 2014;
  record.reaction = "P P --> Z' < MU+ MU- > X";
  record.keywords = {"upper limit", "reinterpretation"};
  record.tables.push_back(hepdata::DataTable::FromHistogram(
      limits, "mu95 vs mass", "m(Z') [GeV]", "95% CL limit on mu"));
  ASSERT_TRUE(hepdata_archive.Submit(record).ok());
  ASSERT_TRUE(
      hepdata_archive.LinkInspire("1300000", "ins_recast_zprime").ok());
  EXPECT_EQ(hepdata_archive.Search("reinterpretation").size(), 1u);
  auto restored = hepdata_archive.Get("ins_recast_zprime");
  ASSERT_TRUE(restored.ok());
  auto table = restored->tables[0].ToHistogram("/restored");
  ASSERT_TRUE(table.ok());
  // Limits are positive and finite.
  for (int i = 0; i < 3; ++i) EXPECT_GT(table->BinContent(i), 0.0);
}

TEST(IntegrationTest, OutreachPipelineIsDialectInvariant) {
  // The same Z sample routed through all four dialects gives the exact
  // same master-class measurement — the common-format promise of §2.1.
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.lepton_flavor = pdg::kMuon;
  gen_config.seed = 777;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = 778;
  DetectorSimulation simulation(sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = sim_config.geometry;
  reco_config.calib = sim_config.calib;
  Reconstructor reconstructor(reco_config);

  std::vector<level2::CommonEvent> events;
  for (int i = 0; i < 250; ++i) {
    events.push_back(level2::CommonEvent::FromReco(
        reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1))));
  }
  auto baseline = level2::ZMassExercise(events);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  for (Experiment experiment : kAllExperiments) {
    std::vector<level2::CommonEvent> converted;
    for (const level2::CommonEvent& event : events) {
      std::string encoded = level2::CodecFor(experiment).Encode(event);
      auto decoded = level2::CodecFor(experiment).Decode(encoded);
      ASSERT_TRUE(decoded.ok());
      converted.push_back(*decoded);
    }
    auto result = level2::ZMassExercise(converted);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->measured, baseline->measured)
        << "dialect " << ExperimentName(experiment);
  }
}

}  // namespace
}  // namespace daspos
