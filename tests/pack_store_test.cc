// Tests for the packfile object-store backend: roundtrips, sealing + mmap
// reads, block compression, the two-tier integrity model (fast checksum
// gate on Get, SHA-256 authority on Verify), quarantine + heal semantics,
// torn-tail and torn-index recovery, segment rollover, and the backend
// spec grammar.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <csignal>

#include <filesystem>
#include <fstream>
#include <random>

#include "archive/backend.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "support/checksum.h"
#include "support/io.h"
#include "support/metrics_registry.h"
#include "support/sha256.h"
#include "support/threadpool.h"

namespace daspos {
namespace {

namespace fs = std::filesystem;

uint64_t CounterNow(const char* name) {
  return MetricsRegistry::Global().CounterValue(name);
}

class PackStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("daspos_pack_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()) +
              "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::string Dir(const std::string& name) const { return base_ + "/" + name; }

  static std::string SegPath(const std::string& root, unsigned segment = 0) {
    char name[32];
    std::snprintf(name, sizeof(name), "%06u.seg", segment);
    return root + "/segments/" + name;
  }
  static std::string IdxPath(const std::string& root, unsigned segment = 0) {
    char name[32];
    std::snprintf(name, sizeof(name), "%06u.idx", segment);
    return root + "/segments/" + name;
  }

  /// XORs one byte of a file in place (simulated media rot).
  static void FlipByte(const std::string& path, uint64_t offset) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good()) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  }

  static void WriteAt(const std::string& path, uint64_t offset,
                      const std::string& bytes) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good()) << path;
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::string EncodeU64(uint64_t value) {
    std::string out(8, '\0');
    for (int i = 0; i < 8; ++i) {
      out[static_cast<size_t>(i)] =
          static_cast<char>((value >> (8 * i)) & 0xff);
    }
    return out;
  }

  std::string base_;
};

// Payload of the first record: 16-byte segment header + 64-byte record
// header.
constexpr uint64_t kFirstPayload =
    kPackSegmentHeaderSize + kPackRecordHeaderSize;

// ---------------------------------------------------------- Roundtrips --

TEST_F(PackStoreTest, PutGetRoundtripContentAddressed) {
  PackObjectStore store(Dir("pack"));
  auto id = store.Put("packed preservation payload");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, Sha256::HashHex("packed preservation payload"));
  EXPECT_TRUE(store.Has(*id));
  EXPECT_EQ(*store.Get(*id), "packed preservation payload");
  EXPECT_TRUE(store.Verify(*id).ok());
  EXPECT_TRUE(store.Get(std::string(64, 'f')).status().IsNotFound());
  EXPECT_FALSE(store.Get("not-an-id").ok());
}

TEST_F(PackStoreTest, DeduplicatesIdenticalContent) {
  PackObjectStore store(Dir("pack"));
  const uint64_t appends_before = CounterNow("daspos_pack_appends_total");
  auto first = store.Put("same bytes");
  auto second = store.Put("same bytes");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(CounterNow("daspos_pack_appends_total"), appends_before + 1);
  EXPECT_EQ(store.Ids().size(), 1u);
}

TEST_F(PackStoreTest, ReopenServesSealedSegmentsViaMmap) {
  std::vector<std::string> ids;
  {
    PackObjectStore store(Dir("pack"));
    for (int i = 0; i < 5; ++i) {
      auto id = store.Put("blob number " + std::to_string(i));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  ASSERT_TRUE(FileExists(IdxPath(Dir("pack"))));

  PackObjectStore reopened(Dir("pack"));
  const uint64_t mmap_before = CounterNow("daspos_pack_mmap_reads_total");
  const uint64_t rebuilds_before =
      CounterNow("daspos_pack_index_rebuilds_total");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(*reopened.Get(ids[static_cast<size_t>(i)]),
              "blob number " + std::to_string(i));
  }
  // A sealed store reopens off its sidecar (no rebuild scan) and serves
  // every cold read zero-copy from the mapping.
  EXPECT_EQ(CounterNow("daspos_pack_mmap_reads_total"), mmap_before + 5);
  EXPECT_EQ(CounterNow("daspos_pack_index_rebuilds_total"), rebuilds_before);
  EXPECT_EQ(reopened.TotalBytes(), 5u * std::string("blob number 0").size());
}

TEST_F(PackStoreTest, MissingSidecarTriggersRebuildScan) {
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put("survives without its index");
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }
  ASSERT_TRUE(RemoveFile(IdxPath(Dir("pack"))).ok());

  const uint64_t rebuilds_before =
      CounterNow("daspos_pack_index_rebuilds_total");
  PackObjectStore reopened(Dir("pack"));
  EXPECT_EQ(CounterNow("daspos_pack_index_rebuilds_total"),
            rebuilds_before + 1);
  EXPECT_EQ(*reopened.Get(id), "survives without its index");
}

TEST_F(PackStoreTest, GarbageSidecarTriggersRebuildScan) {
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put("index is only an optimization");
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }
  std::ofstream(IdxPath(Dir("pack")), std::ios::binary)
      << "not a pack index at all";

  PackObjectStore reopened(Dir("pack"));
  EXPECT_EQ(*reopened.Get(id), "index is only an optimization");
  EXPECT_TRUE(reopened.Verify(id).ok());
}

// --------------------------------------------------------- Compression --

TEST_F(PackStoreTest, CompressionRoundtripsAndSavesSpace) {
  PackOptions options;
  options.compress = true;
  std::string compressible(16 * 1024, 'r');
  // Deterministic incompressible bytes: the codec must store them raw.
  std::string incompressible(4096, '\0');
  std::mt19937 rng(1234567u);
  for (char& byte : incompressible) {
    byte = static_cast<char>(rng() & 0xff);
  }

  std::string id_text, id_noise;
  {
    PackObjectStore store(Dir("packz"), options);
    auto text = store.Put(compressible);
    auto noise = store.Put(incompressible);
    ASSERT_TRUE(text.ok());
    ASSERT_TRUE(noise.ok());
    id_text = *text;
    id_noise = *noise;
    // Identity is over the raw bytes: compression never changes ids.
    EXPECT_EQ(id_text, Sha256::HashHex(compressible));
    EXPECT_LT(store.StoredBytes(), store.TotalBytes());
    ASSERT_TRUE(store.Flush().ok());
  }

  PackObjectStore reopened(Dir("packz"), options);
  EXPECT_EQ(*reopened.Get(id_text), compressible);
  EXPECT_EQ(*reopened.Get(id_noise), incompressible);
  EXPECT_TRUE(reopened.Verify(id_text).ok());
  EXPECT_TRUE(reopened.Verify(id_noise).ok());
  EXPECT_EQ(reopened.TotalBytes(),
            compressible.size() + incompressible.size());
}

TEST_F(PackStoreTest, CompressedStoreReadableWithoutCompressionOption) {
  // `compress` is a write-side policy; record flags make every store
  // readable by every configuration.
  PackOptions compressing;
  compressing.compress = true;
  std::string id;
  {
    PackObjectStore store(Dir("pack"), compressing);
    auto put = store.Put(std::string(8192, 'z'));
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }
  PackObjectStore plain(Dir("pack"));
  EXPECT_EQ(*plain.Get(id), std::string(8192, 'z'));
}

// --------------------------------------------- Integrity gates + heal --

TEST_F(PackStoreTest, ChecksumGateQuarantinesRotThenRePutHeals) {
  const std::string payload = "bytes that will rot on disk";
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put(payload);
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }

  // Rot one payload byte behind the store's back, then reopen (the sealed
  // sidecar still indexes the record — rot is found at read time, exactly
  // like the loose backend).
  FlipByte(SegPath(Dir("pack")), kFirstPayload + 3);
  PackObjectStore store(Dir("pack"));
  const uint64_t failures_before =
      CounterNow("daspos_pack_checksum_failures_total");
  auto rotted = store.Get(id);
  EXPECT_TRUE(rotted.status().IsCorruption());
  EXPECT_EQ(CounterNow("daspos_pack_checksum_failures_total"),
            failures_before + 1);
  // The condemned record is dropped from the index; the quarantine log
  // remembers it.
  EXPECT_TRUE(store.Get(id).status().IsNotFound());
  EXPECT_FALSE(store.Has(id));
  EXPECT_EQ(store.QuarantinedIds(), std::vector<std::string>{id});
  EXPECT_TRUE(FileExists(Dir("pack") + "/quarantine.jsonl"));

  // Re-putting the good bytes appends a superseding record: that IS the
  // heal (read-repair and scrub rely on it).
  auto healed = store.Put(payload);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, id);
  EXPECT_EQ(*store.Get(id), payload);
  EXPECT_TRUE(store.Verify(id).ok());
  // History survives the heal — the rotted bytes are still on disk as
  // evidence, and QuarantinedIds reports everything ever condemned.
  EXPECT_EQ(store.QuarantinedIds(), std::vector<std::string>{id});
}

TEST_F(PackStoreTest, QuarantineStandsAcrossReopen) {
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put("rot me");
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }
  FlipByte(SegPath(Dir("pack")), kFirstPayload);
  {
    PackObjectStore store(Dir("pack"));
    EXPECT_TRUE(store.Get(id).status().IsCorruption());
  }
  // The quarantine log replays on open: the condemned record must not be
  // resurrected by the (still valid-looking) sidecar.
  PackObjectStore reopened(Dir("pack"));
  EXPECT_TRUE(reopened.Get(id).status().IsNotFound());
  EXPECT_EQ(reopened.QuarantinedIds(), std::vector<std::string>{id});

  // And a heal survives ITS reopen: the superseding record wins over the
  // replayed quarantine.
  ASSERT_TRUE(reopened.Put("rot me").ok());
  ASSERT_TRUE(reopened.Flush().ok());
  PackObjectStore healed(Dir("pack"));
  EXPECT_EQ(*healed.Get(id), "rot me");
}

// The two-tier model's deliberate gap, pinned down: an adversarial (or
// astronomically unlucky) corruption that rewrites payload AND matching
// checksum slips past the fast Get gate — and Verify, which always
// re-hashes with SHA-256, still catches it. This is why scrub and audit
// run Verify, never bare Get.
TEST_F(PackStoreTest, VerifyCatchesForgedChecksumThatGetMisses) {
  const std::string payload = "authority is sha-256, not the fast gate";
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put(payload);
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }

  // Forge: flip a payload byte, recompute the 64-bit checksum over the
  // forged payload, and patch it into the record header; drop the sidecar
  // so the rebuild scan (which trusts the header checksum) re-indexes it.
  std::string forged = payload;
  forged[5] = static_cast<char>(forged[5] ^ 0x5a);
  WriteAt(SegPath(Dir("pack")), kFirstPayload, forged);
  WriteAt(SegPath(Dir("pack")),
          kPackSegmentHeaderSize + kPackRecordChecksumOffset,
          EncodeU64(Checksum64(forged)));
  ASSERT_TRUE(RemoveFile(IdxPath(Dir("pack"))).ok());

  PackObjectStore store(Dir("pack"));
  auto got = store.Get(id);
  ASSERT_TRUE(got.ok());      // the gate passes...
  EXPECT_EQ(*got, forged);    // ...serving the forged bytes
  auto verified = store.Verify(id);
  EXPECT_TRUE(verified.IsCorruption());  // the authority does not
  EXPECT_TRUE(store.Get(id).status().IsNotFound());
  EXPECT_EQ(store.QuarantinedIds(), std::vector<std::string>{id});
}

// A cached mapping of a sealed tail segment goes stale when the segment is
// unsealed and grown by later Puts. Reads of the new records must remap at
// the current size — quarantining off the short stale view would condemn
// healthy data with a PERSISTENT quarantine line (replayed on every
// reopen), leaving the object Corruption until an external re-Put.
TEST_F(PackStoreTest, StaleTailMappingRemapsInsteadOfQuarantining) {
  PackObjectStore store(Dir("pack"));
  auto first = store.Put("first sealed record");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(store.Flush().ok());
  // Cache a mapping of the sealed tail at its current (short) size.
  const uint64_t mmap_before = CounterNow("daspos_pack_mmap_reads_total");
  EXPECT_EQ(*store.Get(*first), "first sealed record");
  ASSERT_EQ(CounterNow("daspos_pack_mmap_reads_total"), mmap_before + 1);
  // Unseal + grow the tail, then re-seal so reads leave the pread path.
  auto second = store.Put("appended after the mapping was cached");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(store.Flush().ok());

  const uint64_t quarantines_before =
      CounterNow("daspos_pack_quarantines_total");
  EXPECT_EQ(*store.Get(*second), "appended after the mapping was cached");
  EXPECT_EQ(*store.Get(*first), "first sealed record");
  EXPECT_EQ(CounterNow("daspos_pack_quarantines_total"), quarantines_before);
  EXPECT_TRUE(store.QuarantinedIds().empty());
  EXPECT_FALSE(FileExists(Dir("pack") + "/quarantine.jsonl"));
}

// Batched re-puts must heal rot exactly like Put does: scrub backfill and
// bulk re-ingest go through PutBatch, and a pure presence check would skip
// the rotted id without appending the superseding record.
TEST_F(PackStoreTest, PutBatchRePutHealsRottedRecord) {
  const std::string payload = "batched bytes that rot on disk";
  std::string id;
  {
    PackObjectStore store(Dir("pack"));
    auto put = store.Put(payload);
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(store.Flush().ok());
  }
  FlipByte(SegPath(Dir("pack")), kFirstPayload + 1);

  PackObjectStore store(Dir("pack"));
  std::vector<std::string_view> batch{payload};
  auto ids = store.PutBatch(batch);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ((*ids)[0], id);
  EXPECT_EQ(*store.Get(id), payload);
  EXPECT_TRUE(store.Verify(id).ok());
  // The condemned record went through quarantine on its way out.
  EXPECT_EQ(store.QuarantinedIds(), std::vector<std::string>{id});
}

// ------------------------------------------------------ Crash recovery --

TEST_F(PackStoreTest, TornTailTruncatedAndAppendsResume) {
  std::vector<std::string> ids;
  {
    PackObjectStore store(Dir("pack"));
    for (int i = 0; i < 3; ++i) {
      auto id = store.Put("record " + std::to_string(i));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    // No Flush: simulate a crash mid-append by truncating the last record's
    // payload and leaving no sidecar behind.
  }
  ASSERT_TRUE(RemoveFile(IdxPath(Dir("pack"))).ok());
  const uint64_t full_size = fs::file_size(SegPath(Dir("pack")));
  fs::resize_file(SegPath(Dir("pack")), full_size - 3);

  const uint64_t torn_before = CounterNow("daspos_pack_torn_records_total");
  PackObjectStore store(Dir("pack"));
  EXPECT_EQ(CounterNow("daspos_pack_torn_records_total"), torn_before + 1);
  // Everything before the torn record survives; the torn one is gone.
  EXPECT_EQ(*store.Get(ids[0]), "record 0");
  EXPECT_EQ(*store.Get(ids[1]), "record 1");
  EXPECT_TRUE(store.Get(ids[2]).status().IsNotFound());
  // The torn bytes were truncated away, so the segment appends cleanly.
  auto again = store.Put("record 2");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, ids[2]);
  EXPECT_EQ(*store.Get(ids[2]), "record 2");
  EXPECT_EQ(store.SegmentCount(), 1u);
}

// A record append that fails partway (here: the payload write hits
// RLIMIT_FSIZE after the header landed) leaves partial bytes at the true
// EOF. The store must cut the file back to the last known-good offset —
// otherwise every later append would be indexed at a stale offset
// (O_APPEND writes at the kernel's EOF, not the store's counter) and
// freshly written, healthy data would read back as corrupt.
TEST_F(PackStoreTest, FailedAppendDoesNotDesyncLaterOffsets) {
  PackObjectStore store(Dir("pack"));
  auto committed = store.Put("committed before the failure");
  ASSERT_TRUE(committed.ok());
  const uint64_t good_size = fs::file_size(SegPath(Dir("pack")));

  // Cap the file size so the 64-byte record header fits but the payload
  // write fails after a few bytes. SIGXFSZ must be ignored for write() to
  // report EFBIG instead of killing the process.
  (void)std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit tight = old_limit;
  tight.rlim_cur = good_size + kPackRecordHeaderSize + 10;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tight), 0);
  auto failed = store.Put(std::string(4096, 'x'));
  EXPECT_FALSE(failed.ok());
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  (void)std::signal(SIGXFSZ, SIG_DFL);

  // The partial record was cut away: the segment is byte-identical to its
  // last good state and every subsequent append lands where its index
  // entry says.
  EXPECT_EQ(fs::file_size(SegPath(Dir("pack"))), good_size);
  auto a = store.Put("appended after the failure");
  auto b = store.Put(std::string(2000, 'y'));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*store.Get(*a), "appended after the failure");
  EXPECT_EQ(*store.Get(*b), std::string(2000, 'y'));
  EXPECT_EQ(*store.Get(*committed), "committed before the failure");
  EXPECT_TRUE(store.Verify(*a).ok());
  EXPECT_TRUE(store.Verify(*b).ok());
  EXPECT_TRUE(store.QuarantinedIds().empty());

  // And the segment log is still internally consistent: a rebuild scan
  // (sidecar dropped) re-indexes everything.
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(RemoveFile(IdxPath(Dir("pack"))).ok());
  PackObjectStore reopened(Dir("pack"));
  EXPECT_EQ(*reopened.Get(*a), "appended after the failure");
  EXPECT_EQ(*reopened.Get(*b), std::string(2000, 'y'));
  EXPECT_EQ(*reopened.Get(*committed), "committed before the failure");
}

TEST_F(PackStoreTest, SealedSegmentDamageIsLeftInPlaceAsEvidence) {
  PackOptions options;
  // 100-byte payloads + 64-byte headers against a 200-byte cap: exactly one
  // record per segment.
  options.max_segment_bytes = 200;
  auto payload = [](int i) { return std::string(100, static_cast<char>('a' + i)); };
  std::vector<std::string> ids;
  {
    PackObjectStore store(Dir("pack"), options);
    for (int i = 0; i < 3; ++i) {
      auto id = store.Put(payload(i));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  ASSERT_EQ(fs::file_size(SegPath(Dir("pack"), 1)),
            fs::file_size(SegPath(Dir("pack"), 0)));

  // Smash the record header magic inside sealed (non-tail) segment 1 and
  // force rebuild scans everywhere.
  WriteAt(SegPath(Dir("pack"), 1), kPackSegmentHeaderSize, "XXXX");
  const uint64_t damaged_size = fs::file_size(SegPath(Dir("pack"), 1));
  for (unsigned segment = 0; segment < 3; ++segment) {
    ASSERT_TRUE(RemoveFile(IdxPath(Dir("pack"), segment)).ok());
  }

  PackObjectStore store(Dir("pack"), options);
  // Only the tail segment may be truncated; the damaged sealed segment
  // keeps its bytes on disk for forensics.
  EXPECT_EQ(fs::file_size(SegPath(Dir("pack"), 1)), damaged_size);
  EXPECT_EQ(*store.Get(ids[0]), payload(0));
  EXPECT_TRUE(store.Get(ids[1]).status().IsNotFound());
  EXPECT_EQ(*store.Get(ids[2]), payload(2));
}

// ------------------------------------------------------------ Rollover --

TEST_F(PackStoreTest, SegmentsRollOverAtSizeCap) {
  PackOptions options;
  options.max_segment_bytes = 256;
  PackObjectStore store(Dir("pack"), options);
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = store.Put(std::string(100, static_cast<char>('a' + i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // 100-byte payloads + 64-byte headers against a 256-byte cap: one record
  // per segment.
  EXPECT_EQ(store.SegmentCount(), 4u);
  // An oversized blob is stored anyway, alone in its own segment.
  auto big = store.Put(std::string(1000, 'Z'));
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(store.Flush().ok());

  PackObjectStore reopened(Dir("pack"), options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*reopened.Get(ids[static_cast<size_t>(i)]),
              std::string(100, static_cast<char>('a' + i)));
  }
  EXPECT_EQ(*reopened.Get(*big), std::string(1000, 'Z'));
  // Every sealed segment has its sidecar.
  for (size_t segment = 0; segment < reopened.SegmentCount(); ++segment) {
    EXPECT_TRUE(FileExists(IdxPath(Dir("pack"),
                                   static_cast<unsigned>(segment))))
        << segment;
  }
}

// SegmentCount reports .seg files actually present, not the highest
// segment number: numbering goes sparse once compaction (or an operator)
// removes a middle segment, and repack reporting counts real files.
TEST_F(PackStoreTest, SegmentCountTracksActualFilesNotNumbering) {
  PackOptions options;
  options.max_segment_bytes = 200;  // one 100-byte record per segment
  std::vector<std::string> ids;
  {
    PackObjectStore store(Dir("pack"), options);
    for (int i = 0; i < 3; ++i) {
      auto id = store.Put(std::string(100, static_cast<char>('a' + i)));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(store.Flush().ok());
    EXPECT_EQ(store.SegmentCount(), 3u);
  }
  // Simulate external compaction deleting the middle segment.
  fs::remove(SegPath(Dir("pack"), 1));
  fs::remove(IdxPath(Dir("pack"), 1));

  PackObjectStore reopened(Dir("pack"), options);
  EXPECT_EQ(reopened.SegmentCount(), 2u);
  EXPECT_EQ(*reopened.Get(ids[0]), std::string(100, 'a'));
  EXPECT_EQ(*reopened.Get(ids[2]), std::string(100, 'c'));
  // Numbering keeps advancing past the gap; the count follows real files.
  auto more = reopened.Put(std::string(150, 'q'));
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(reopened.SegmentCount(), 3u);
  EXPECT_EQ(*reopened.Get(*more), std::string(150, 'q'));
}

// ------------------------------------------------------------ PutBatch --

TEST_F(PackStoreTest, PutBatchMatchesSerialIdsAtAnyThreadCount) {
  std::vector<std::string> blobs;
  for (int i = 0; i < 24; ++i) {
    blobs.push_back("batched blob " + std::to_string(i * i));
  }
  std::vector<std::string_view> views(blobs.begin(), blobs.end());

  PackObjectStore store(Dir("pack"));
  ThreadPool pool(4);
  auto ids = store.PutBatch(views, &pool);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    EXPECT_EQ((*ids)[i], Sha256::HashHex(blobs[i]));
    EXPECT_EQ(*store.Get((*ids)[i]), blobs[i]);
  }
  // Re-batching identical content appends nothing.
  const uint64_t appends_before = CounterNow("daspos_pack_appends_total");
  auto again = store.PutBatch(views, &pool);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *ids);
  EXPECT_EQ(CounterNow("daspos_pack_appends_total"), appends_before);
}

// ----------------------------------------------------------- ForEachId --

TEST_F(PackStoreTest, ForEachIdAscendingAndAbortable) {
  PackObjectStore store(Dir("pack"));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Put("enumerate " + std::to_string(i)).ok());
  }
  std::vector<std::string> walked;
  ASSERT_TRUE(store
                  .ForEachId([&walked](const std::string& id) {
                    walked.push_back(id);
                    return Status::OK();
                  })
                  .ok());
  std::vector<std::string> ids = store.Ids();
  EXPECT_EQ(walked, ids);
  EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));

  // A non-OK callback aborts the walk immediately and surfaces verbatim.
  size_t visited = 0;
  Status aborted = store.ForEachId([&visited](const std::string&) {
    if (++visited == 3) return Status::Corruption("stop here");
    return Status::OK();
  });
  EXPECT_TRUE(aborted.IsCorruption());
  EXPECT_EQ(visited, 3u);
}

// -------------------------------------------------------- Backend spec --

TEST_F(PackStoreTest, ParseStoreSpecGrammar) {
  auto file_spec = ParseStoreSpec("file:/x/loose");
  ASSERT_TRUE(file_spec.ok());
  EXPECT_EQ(file_spec->backend, StoreSpec::Backend::kFile);
  EXPECT_EQ(file_spec->root, "/x/loose");
  EXPECT_FALSE(file_spec->compress);

  auto pack_spec = ParseStoreSpec("pack:relative/dir");
  ASSERT_TRUE(pack_spec.ok());
  EXPECT_EQ(pack_spec->backend, StoreSpec::Backend::kPack);
  EXPECT_EQ(pack_spec->root, "relative/dir");
  EXPECT_FALSE(pack_spec->compress);
  EXPECT_EQ(BackendName(*pack_spec), "pack");

  auto packz_spec = ParseStoreSpec("pack+z:/x/z");
  ASSERT_TRUE(packz_spec.ok());
  EXPECT_EQ(packz_spec->backend, StoreSpec::Backend::kPack);
  EXPECT_TRUE(packz_spec->compress);
  EXPECT_EQ(BackendName(*packz_spec), "pack+z");

  // Typo'd schemes fail loudly instead of creating a literal "pak:x" dir.
  EXPECT_TRUE(ParseStoreSpec("pak:x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStoreSpec("").status().IsInvalidArgument());
  // A colon after the first slash is path punctuation, not a scheme.
  auto colon_path = ParseStoreSpec("/data/odd:name");
  ASSERT_TRUE(colon_path.ok());
  EXPECT_EQ(colon_path->root, "/data/odd:name");
}

TEST_F(PackStoreTest, BareDirSniffsLayout) {
  // A pack store's segments/ directory is the layout fingerprint.
  std::string id;
  {
    PackObjectStore pack(Dir("pack"));
    auto put = pack.Put("sniff me");
    ASSERT_TRUE(put.ok());
    id = *put;
    ASSERT_TRUE(pack.Flush().ok());
  }
  auto sniffed = ParseStoreSpec(Dir("pack"));
  ASSERT_TRUE(sniffed.ok());
  EXPECT_EQ(sniffed->backend, StoreSpec::Backend::kPack);

  auto opened = OpenObjectStore(Dir("pack"));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*(*opened)->Get(id), "sniff me");

  // A loose (or not-yet-existing) directory sniffs to the file backend.
  FileObjectStore loose(Dir("loose"));
  ASSERT_TRUE(loose.Put("loose bytes").ok());
  auto loose_spec = ParseStoreSpec(Dir("loose"));
  ASSERT_TRUE(loose_spec.ok());
  EXPECT_EQ(loose_spec->backend, StoreSpec::Backend::kFile);
  auto fresh = ParseStoreSpec(Dir("does-not-exist"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->backend, StoreSpec::Backend::kFile);
}

TEST_F(PackStoreTest, OpenObjectStoreRoundtripsAcrossBackends) {
  // The same bytes land under the same id on every backend — the digest is
  // the contract that makes migration and replication backend-agnostic.
  const std::string payload = "identical digests everywhere";
  std::string file_id, pack_id, packz_id;
  {
    auto file_store = OpenObjectStore("file:" + Dir("f"));
    ASSERT_TRUE(file_store.ok());
    auto id = (*file_store)->Put(payload);
    ASSERT_TRUE(id.ok());
    file_id = *id;
  }
  {
    auto pack_store = OpenObjectStore("pack:" + Dir("p"));
    ASSERT_TRUE(pack_store.ok());
    auto id = (*pack_store)->Put(payload);
    ASSERT_TRUE(id.ok());
    pack_id = *id;
  }
  {
    auto packz_store = OpenObjectStore("pack+z:" + Dir("z"));
    ASSERT_TRUE(packz_store.ok());
    auto id = (*packz_store)->Put(payload);
    ASSERT_TRUE(id.ok());
    packz_id = *id;
  }
  EXPECT_EQ(file_id, pack_id);
  EXPECT_EQ(pack_id, packz_id);
  EXPECT_EQ(file_id, Sha256::HashHex(payload));
}

}  // namespace
}  // namespace daspos
