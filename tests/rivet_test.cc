// Tests for the RIVET-analog: projections, analysis lifecycle, the
// repository registry, built-in analyses, and reference-data validation.
#include <gtest/gtest.h>

#include <cmath>

#include "event/pdg.h"
#include "hist/yoda_io.h"
#include "mc/generator.h"
#include "rivet/analysis.h"
#include "rivet/projections.h"
#include "rivet/registry.h"

namespace daspos {
namespace rivet {
namespace {

GenEvent ZEvent(uint64_t seed = 1) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.lepton_flavor = pdg::kMuon;
  config.seed = seed;
  EventGenerator generator(config);
  return generator.Generate();
}

// ------------------------------------------------------------- Projections

TEST(ProjectionsTest, FinalStateRespectsCuts) {
  GenEvent event = ZEvent();
  auto all = FinalState(event, Cuts{});
  auto hard = FinalState(event, Cuts{20.0, 2.5});
  EXPECT_GT(all.size(), hard.size());
  for (const GenParticle& particle : hard) {
    EXPECT_GE(particle.momentum.Pt(), 20.0);
    EXPECT_LE(std::fabs(particle.momentum.Eta()), 2.5);
    EXPECT_TRUE(particle.IsFinalState());
  }
}

TEST(ProjectionsTest, ChargedFinalStateExcludesNeutrals) {
  GenEvent event = ZEvent(2);
  for (const GenParticle& particle : ChargedFinalState(event, Cuts{})) {
    EXPECT_GT(std::fabs(pdg::Charge(particle.pdg_id)), 0.3);
  }
}

TEST(ProjectionsTest, IdentifiedFinalState) {
  GenEvent event = ZEvent(3);
  auto muons = IdentifiedFinalState(event, {pdg::kMuon}, Cuts{});
  ASSERT_GE(muons.size(), 2u);
  for (const GenParticle& muon : muons) {
    EXPECT_EQ(std::abs(muon.pdg_id), pdg::kMuon);
  }
}

TEST(ProjectionsTest, FindDileptonReturnsZCandidate) {
  GenEvent event = ZEvent(4);
  auto pair = FindDilepton(event, pdg::kMuon, 91.2, 60.0, 120.0, Cuts{});
  ASSERT_TRUE(pair.has_value());
  EXPECT_GT(pair->mass, 60.0);
  EXPECT_LT(pair->mass, 120.0);
  EXPECT_EQ(pair->lepton_minus.pdg_id, pdg::kMuon);
  EXPECT_EQ(pair->lepton_plus.pdg_id, -pdg::kMuon);
  EXPECT_NEAR(pair->mass, pair->momentum.Mass(), 1e-9);
}

TEST(ProjectionsTest, FindDileptonWrongFlavorEmpty) {
  GenEvent event = ZEvent(5);  // muon channel
  EXPECT_FALSE(
      FindDilepton(event, pdg::kElectron, 91.2, 60.0, 120.0, Cuts{})
          .has_value());
}

TEST(ProjectionsTest, TruthJetsFromDijets) {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 6;
  EventGenerator generator(config);
  int events_with_two_jets = 0;
  for (int i = 0; i < 20; ++i) {
    auto jets = TruthJets(generator.Generate(), 0.4, 15.0, Cuts{0.2, 5.0});
    if (jets.size() >= 2) {
      ++events_with_two_jets;
      // pT ordering.
      EXPECT_GE(jets[0].momentum.Pt(), jets[1].momentum.Pt());
      EXPECT_GT(jets[0].constituent_count, 0);
    }
  }
  EXPECT_GT(events_with_two_jets, 10);
}

TEST(ProjectionsTest, TruthJetsExcludeNeutrinos) {
  GenEvent event;
  GenParticle nu;
  nu.pdg_id = pdg::kNuMu;
  nu.status = 1;
  nu.momentum = FourVector::FromPtEtaPhiM(100.0, 0.0, 1.0, 0.0);
  event.particles.push_back(nu);
  EXPECT_TRUE(TruthJets(event, 0.4, 10.0, Cuts{}).empty());
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, BuiltinsRegistered) {
  auto names = AnalysisRegistry::Global().Names();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(AnalysisRegistry::Global().Has("DASPOS_2014_ZLL"));
  EXPECT_TRUE(AnalysisRegistry::Global().Has("DASPOS_2014_DIJET"));
  EXPECT_TRUE(AnalysisRegistry::Global().Has("DASPOS_2014_WASYM"));
  EXPECT_TRUE(AnalysisRegistry::Global().Has("DASPOS_2014_CHARGED"));
}

TEST(RegistryTest, CreateAndErrors) {
  auto analysis = AnalysisRegistry::Global().Create("DASPOS_2014_ZLL");
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ((*analysis)->Name(), "DASPOS_2014_ZLL");
  EXPECT_FALSE((*analysis)->Summary().empty());
  EXPECT_TRUE(
      AnalysisRegistry::Global().Create("NOPE").status().IsNotFound());
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  AnalysisRegistry registry;
  auto factory = [] {
    return AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value();
  };
  ASSERT_TRUE(registry.Register("X", factory).ok());
  EXPECT_TRUE(registry.Register("X", factory).IsAlreadyExists());
  EXPECT_TRUE(registry.Register("", factory).IsInvalidArgument());
}

TEST(RegistryTest, ValidatedSubmissionFlow) {
  // "Once validated, the analysis 'code' can be included" (§2.3): the
  // submitter provides the analysis and the reference it claims to
  // reproduce; the repository runs it before admitting it.
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.lepton_flavor = pdg::kMuon;
  config.seed = 313;
  EventGenerator generator(config);
  std::vector<GenEvent> validation_events = generator.GenerateMany(300);

  auto factory = [] {
    return AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value();
  };
  // Build the honest reference by running the analysis once.
  AnalysisHandler handler;
  handler.Add(factory());
  handler.Run(validation_events);
  std::vector<Histo1D> reference = handler.Finalize();

  AnalysisRegistry repository;
  ASSERT_TRUE(SubmitValidatedAnalysis(&repository, "DASPOS_2014_ZLL",
                                      factory, validation_events, reference)
                  .ok());
  EXPECT_TRUE(repository.Has("DASPOS_2014_ZLL"));

  // A reference the analysis does NOT reproduce is rejected.
  std::vector<Histo1D> wrong_reference = reference;
  for (Histo1D& histogram : wrong_reference) {
    histogram.Scale(1.0);
    for (int i = 0; i < histogram.axis().nbins(); ++i) {
      histogram.SetBin(i, histogram.BinContent(i) + 5.0, 25.0);
    }
  }
  AnalysisRegistry strict;
  auto rejected =
      SubmitValidatedAnalysis(&strict, "DASPOS_2014_ZLL", factory,
                              validation_events, wrong_reference, 0.5);
  EXPECT_TRUE(rejected.IsFailedPrecondition());
  EXPECT_FALSE(strict.Has("DASPOS_2014_ZLL"));
}

TEST(RegistryTest, SubmissionValidation) {
  AnalysisRegistry repository;
  auto factory = [] {
    return AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value();
  };
  Histo1D reference("/x", 2, 0.0, 1.0);
  EXPECT_TRUE(SubmitValidatedAnalysis(&repository, "DASPOS_2014_ZLL",
                                      factory, {}, {reference})
                  .IsInvalidArgument());
  GenEvent event;
  EXPECT_TRUE(SubmitValidatedAnalysis(&repository, "DASPOS_2014_ZLL",
                                      factory, {event}, {})
                  .IsInvalidArgument());
  // Name mismatch.
  EXPECT_TRUE(SubmitValidatedAnalysis(&repository, "WRONG_NAME", factory,
                                      {event}, {reference})
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------- Handler

std::vector<GenEvent> Sample(Process process, int n, uint64_t seed) {
  GeneratorConfig config;
  config.process = process;
  config.lepton_flavor = pdg::kMuon;
  config.seed = seed;
  EventGenerator generator(config);
  return generator.GenerateMany(static_cast<size_t>(n));
}

TEST(HandlerTest, ZllAnalysisProducesPeak) {
  AnalysisHandler handler;
  handler.Add(AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value());
  handler.Run(Sample(Process::kZToLL, 800, 7));
  auto histograms = handler.Finalize();
  ASSERT_EQ(histograms.size(), 3u);
  const Histo1D* mass = nullptr;
  for (const Histo1D& histogram : histograms) {
    if (histogram.path() == "/DASPOS_2014_ZLL/mll") mass = &histogram;
  }
  ASSERT_NE(mass, nullptr);
  EXPECT_GT(mass->entries(), 400u);
  EXPECT_NEAR(mass->Mean(), 91.2, 1.0);
  EXPECT_EQ(handler.events_processed(), 800u);
}

TEST(HandlerTest, WAsymmetryPositive) {
  AnalysisHandler handler;
  handler.Add(AnalysisRegistry::Global().Create("DASPOS_2014_WASYM").value());
  handler.Run(Sample(Process::kWToLNu, 3000, 8));
  auto histograms = handler.Finalize();
  const Histo1D* asymmetry = nullptr;
  for (const Histo1D& histogram : histograms) {
    if (histogram.path() == "/DASPOS_2014_WASYM/charge_asymmetry") {
      asymmetry = &histogram;
    }
  }
  ASSERT_NE(asymmetry, nullptr);
  // W+ excess -> positive asymmetry in most bins.
  int positive_bins = 0;
  int filled_bins = 0;
  for (int i = 0; i < asymmetry->axis().nbins(); ++i) {
    if (asymmetry->BinError(i) > 0.0) {
      ++filled_bins;
      if (asymmetry->BinContent(i) > 0.0) ++positive_bins;
    }
  }
  ASSERT_GT(filled_bins, 5);
  EXPECT_GT(positive_bins, filled_bins * 2 / 3);
}

TEST(HandlerTest, MultipleAnalysesShareEvents) {
  AnalysisHandler handler;
  handler.Add(AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value());
  handler.Add(
      AnalysisRegistry::Global().Create("DASPOS_2014_CHARGED").value());
  handler.Run(Sample(Process::kZToLL, 100, 9));
  auto histograms = handler.Finalize();
  EXPECT_EQ(histograms.size(), 3u + 2u);
  EXPECT_EQ(handler.analysis_count(), 2u);
}

TEST(HandlerTest, DMesonLifetimeObservables) {
  AnalysisHandler handler;
  handler.Add(
      AnalysisRegistry::Global().Create("DASPOS_2014_DMESON").value());
  handler.Run(Sample(Process::kDMeson, 1000, 15));
  auto histograms = handler.Finalize();
  const Histo1D* flight = nullptr;
  const Histo1D* mass = nullptr;
  for (const Histo1D& histogram : histograms) {
    if (histogram.path() == "/DASPOS_2014_DMESON/flight_mm") {
      flight = &histogram;
    }
    if (histogram.path() == "/DASPOS_2014_DMESON/kpi_mass") {
      mass = &histogram;
    }
  }
  ASSERT_NE(flight, nullptr);
  ASSERT_NE(mass, nullptr);
  EXPECT_GT(flight->entries(), 800u);
  // Exponential-ish flight length: mean well above zero.
  EXPECT_GT(flight->Mean(), 0.1);
  // K-pi mass pins the D0.
  EXPECT_NEAR(mass->Mean(), 1.865, 0.01);
}

// -------------------------------------------------------------- Validation

TEST(ValidationTest, SameTuneReproduces) {
  // Produce reference and candidate from different seeds of the same
  // configuration: shape-compatible.
  auto run = [](uint64_t seed) {
    AnalysisHandler handler;
    handler.Add(
        AnalysisRegistry::Global().Create("DASPOS_2014_CHARGED").value());
    handler.Run(Sample(Process::kMinimumBias, 3000, seed));
    return handler.Finalize();
  };
  auto reference = run(10);
  auto candidate = run(11);
  auto validation = CompareToReference(candidate, reference);
  ASSERT_TRUE(validation.ok());
  EXPECT_EQ(validation->histograms_missing, 0);
  EXPECT_EQ(validation->histograms_compared, 2);
  EXPECT_TRUE(validation->Compatible(3.0))
      << "worst chi2/ndof " << validation->worst_reduced_chi2;
}

TEST(ValidationTest, DifferentTuneDetected) {
  auto run = [](double activity, uint64_t seed) {
    GeneratorConfig config;
    config.process = Process::kMinimumBias;
    config.tune_activity = activity;
    config.seed = seed;
    EventGenerator generator(config);
    AnalysisHandler handler;
    handler.Add(
        AnalysisRegistry::Global().Create("DASPOS_2014_CHARGED").value());
    handler.Run(generator.GenerateMany(3000));
    return handler.Finalize();
  };
  auto reference = run(1.0, 12);
  auto candidate = run(2.0, 13);  // double the soft activity
  auto validation = CompareToReference(candidate, reference);
  ASSERT_TRUE(validation.ok());
  EXPECT_FALSE(validation->Compatible(3.0));
}

TEST(ValidationTest, MissingHistogramCounted) {
  Histo1D reference("/X/obs", 10, 0.0, 1.0);
  reference.Fill(0.5);
  auto validation = CompareToReference({}, {reference});
  ASSERT_TRUE(validation.ok());
  EXPECT_EQ(validation->histograms_missing, 1);
  EXPECT_FALSE(validation->Compatible());
}

TEST(ValidationTest, YodaRoundTripPreservesValidation) {
  // Preserved reference written to YODA text and read back must still
  // validate against the original run (the preservation path of §2.3).
  AnalysisHandler handler;
  handler.Add(AnalysisRegistry::Global().Create("DASPOS_2014_ZLL").value());
  handler.Run(Sample(Process::kZToLL, 500, 14));
  auto histograms = handler.Finalize();
  auto restored = ReadYoda(WriteYoda(histograms));
  ASSERT_TRUE(restored.ok());
  auto validation = CompareToReference(histograms, *restored);
  ASSERT_TRUE(validation.ok());
  EXPECT_DOUBLE_EQ(validation->worst_reduced_chi2, 0.0);
  EXPECT_TRUE(validation->Compatible());
}

}  // namespace
}  // namespace rivet
}  // namespace daspos
