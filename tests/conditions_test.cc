// Tests for the conditions system: IOV algebra, the database backend, the
// Alice-style snapshot backend, and their behavioural equivalence at the
// captured run.
#include <gtest/gtest.h>

#include "conditions/global_tag.h"
#include "conditions/iov.h"
#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "detsim/calib.h"

namespace daspos {
namespace {

// ------------------------------------------------------------------- IOV --

TEST(RunRangeTest, ContainsBounds) {
  RunRange range{10, 20};
  EXPECT_TRUE(range.Contains(10));
  EXPECT_TRUE(range.Contains(20));
  EXPECT_FALSE(range.Contains(9));
  EXPECT_FALSE(range.Contains(21));
}

TEST(RunRangeTest, OpenEnded) {
  RunRange range = RunRange::From(100);
  EXPECT_TRUE(range.Contains(100));
  EXPECT_TRUE(range.Contains(4000000000u));
  EXPECT_FALSE(range.Contains(99));
  EXPECT_EQ(range.ToString(), "[100,inf]");
}

class RunRangeOverlap
    : public ::testing::TestWithParam<std::tuple<RunRange, RunRange, bool>> {};

TEST_P(RunRangeOverlap, SymmetricOverlap) {
  auto [a, b, expected] = GetParam();
  EXPECT_EQ(a.Overlaps(b), expected);
  EXPECT_EQ(b.Overlaps(a), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunRangeOverlap,
    ::testing::Values(
        std::make_tuple(RunRange{1, 5}, RunRange{6, 10}, false),
        std::make_tuple(RunRange{1, 5}, RunRange{5, 10}, true),
        std::make_tuple(RunRange{1, 100}, RunRange{50, 60}, true),
        std::make_tuple(RunRange{1, 1}, RunRange{1, 1}, true),
        std::make_tuple(RunRange{1, 5}, RunRange::From(6), false),
        std::make_tuple(RunRange::From(3), RunRange::From(1000), true)));

TEST(RunRangeTest, Validity) {
  EXPECT_TRUE((RunRange{5, 5}).Valid());
  EXPECT_FALSE((RunRange{6, 5}).Valid());
}

// ------------------------------------------------------------ ConditionsDb

TEST(ConditionsDbTest, PutGet) {
  ConditionsDb db;
  ASSERT_TRUE(db.Put("calib/a", {1, 10}, "payload-1").ok());
  ASSERT_TRUE(db.Put("calib/a", {11, 20}, "payload-2").ok());
  EXPECT_EQ(*db.GetPayload("calib/a", 5), "payload-1");
  EXPECT_EQ(*db.GetPayload("calib/a", 11), "payload-2");
  EXPECT_TRUE(db.GetPayload("calib/a", 25).status().IsNotFound());
  EXPECT_TRUE(db.GetPayload("calib/b", 5).status().IsNotFound());
  EXPECT_EQ(db.lookup_count(), 4u);
}

TEST(ConditionsDbTest, OverlapRejected) {
  ConditionsDb db;
  ASSERT_TRUE(db.Put("t", {1, 10}, "x").ok());
  EXPECT_TRUE(db.Put("t", {5, 15}, "y").IsAlreadyExists());
  EXPECT_TRUE(db.Put("t", {10, 10}, "y").IsAlreadyExists());
  EXPECT_TRUE(db.Put("t", {11, 20}, "y").ok());
}

TEST(ConditionsDbTest, InvalidRangeRejected) {
  ConditionsDb db;
  EXPECT_TRUE(db.Put("t", {10, 5}, "x").IsInvalidArgument());
}

TEST(ConditionsDbTest, AppendClosesOpenInterval) {
  ConditionsDb db;
  ASSERT_TRUE(db.Append("t", 1, "v1").ok());
  ASSERT_TRUE(db.Append("t", 100, "v2").ok());
  EXPECT_EQ(*db.GetPayload("t", 50), "v1");
  EXPECT_EQ(*db.GetPayload("t", 99), "v1");
  EXPECT_EQ(*db.GetPayload("t", 100), "v2");
  EXPECT_EQ(*db.GetPayload("t", 1000000), "v2");
  auto intervals = db.Intervals("t");
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].last_run, 99u);
}

TEST(ConditionsDbTest, AppendMustAdvance) {
  ConditionsDb db;
  ASSERT_TRUE(db.Append("t", 100, "v1").ok());
  EXPECT_TRUE(db.Append("t", 100, "v2").IsInvalidArgument());
  EXPECT_TRUE(db.Append("t", 50, "v2").IsInvalidArgument());
}

TEST(ConditionsDbTest, TagsSorted) {
  ConditionsDb db;
  ASSERT_TRUE(db.Put("z", {1, 2}, "x").ok());
  ASSERT_TRUE(db.Put("a", {1, 2}, "x").ok());
  auto tags = db.Tags();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], "a");
  EXPECT_EQ(tags[1], "z");
}

// --------------------------------------------------------------- Snapshot

ConditionsDb PopulatedDb() {
  ConditionsDb db;
  CalibrationSet calib_v1;
  calib_v1.version = 1;
  CalibrationSet calib_v2;
  calib_v2.version = 2;
  calib_v2.tracker_phi_offset = 0.002;
  EXPECT_TRUE(db.Append("calib/detector", 1, calib_v1.ToPayload()).ok());
  EXPECT_TRUE(db.Append("calib/detector", 50, calib_v2.ToPayload()).ok());
  EXPECT_TRUE(db.Put("beamspot", {1, 1000}, "x=0 y=0\n").ok());
  return db;
}

TEST(SnapshotTest, CaptureAndServe) {
  ConditionsDb db = PopulatedDb();
  auto snapshot =
      ConditionsSnapshot::Capture(db, 60, {"calib/detector", "beamspot"});
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->run(), 60u);

  // Snapshot serves exactly what the database serves at that run.
  EXPECT_EQ(*snapshot->GetPayload("calib/detector", 60),
            *db.GetPayload("calib/detector", 60));
  EXPECT_EQ(*snapshot->GetPayload("beamspot", 60),
            *db.GetPayload("beamspot", 60));
}

TEST(SnapshotTest, WrongRunRefused) {
  ConditionsDb db = PopulatedDb();
  auto snapshot = ConditionsSnapshot::Capture(db, 60, {"beamspot"});
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->GetPayload("beamspot", 61)
                  .status()
                  .IsFailedPrecondition());
}

TEST(SnapshotTest, MissingTagFailsCapture) {
  ConditionsDb db = PopulatedDb();
  EXPECT_TRUE(ConditionsSnapshot::Capture(db, 60, {"nope"})
                  .status()
                  .IsNotFound());
}

TEST(SnapshotTest, SerializeParseRoundTrip) {
  ConditionsDb db = PopulatedDb();
  auto snapshot =
      ConditionsSnapshot::Capture(db, 7, {"calib/detector", "beamspot"});
  ASSERT_TRUE(snapshot.ok());
  std::string text = snapshot->Serialize();

  auto parsed = ConditionsSnapshot::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->run(), 7u);
  ASSERT_EQ(parsed->Tags().size(), 2u);
  EXPECT_EQ(*parsed->GetPayload("calib/detector", 7),
            *snapshot->GetPayload("calib/detector", 7));
  EXPECT_EQ(*parsed->GetPayload("beamspot", 7), "x=0 y=0\n");
}

TEST(SnapshotTest, ParseErrors) {
  EXPECT_TRUE(ConditionsSnapshot::Parse("tag: x bytes: 5\nabc")
                  .status()
                  .IsCorruption());  // truncated payload + missing run
  EXPECT_TRUE(
      ConditionsSnapshot::Parse("garbage line\n").status().IsCorruption());
  EXPECT_TRUE(ConditionsSnapshot::Parse("# empty\n").status().IsCorruption());
  EXPECT_TRUE(ConditionsSnapshot::Parse("run: 5\ntag: x 5\n")
                  .status()
                  .IsCorruption());  // missing bytes: keyword
}

TEST(SnapshotTest, PayloadWithTrickyContentsSurvives) {
  ConditionsDb db;
  std::string tricky = "line1\ntag: fake bytes: 3\nrun: 9\n# comment\n";
  ASSERT_TRUE(db.Put("weird", {1, 10}, tricky).ok());
  auto snapshot = ConditionsSnapshot::Capture(db, 5, {"weird"});
  ASSERT_TRUE(snapshot.ok());
  auto parsed = ConditionsSnapshot::Parse(snapshot->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->GetPayload("weird", 5), tricky);
}

TEST(SnapshotTest, CalibrationPayloadDecodesIdentically) {
  // The preservation property: reprocessing from a snapshot applies
  // byte-identical constants to reprocessing from the live database.
  ConditionsDb db = PopulatedDb();
  auto snapshot = ConditionsSnapshot::Capture(db, 80, {"calib/detector"});
  ASSERT_TRUE(snapshot.ok());
  auto from_db =
      CalibrationSet::FromPayload(*db.GetPayload("calib/detector", 80));
  auto from_snapshot = CalibrationSet::FromPayload(
      *snapshot->GetPayload("calib/detector", 80));
  ASSERT_TRUE(from_db.ok());
  ASSERT_TRUE(from_snapshot.ok());
  EXPECT_TRUE(*from_db == *from_snapshot);
  EXPECT_EQ(from_db->version, 2u);
}

// -------------------------------------------------------------- GlobalTag

GlobalTag MakeGlobalTag() {
  GlobalTag tag;
  tag.name = "PRESERVATION_2014_V1";
  tag.roles = {{"detector", "calib/detector"}, {"beam", "beamspot"}};
  return tag;
}

TEST(GlobalTagTest, SerializeParseRoundTrip) {
  GlobalTag tag = MakeGlobalTag();
  auto restored = GlobalTag::Parse(tag.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->name, tag.name);
  EXPECT_EQ(restored->roles, tag.roles);
}

TEST(GlobalTagTest, ParseErrors) {
  EXPECT_FALSE(GlobalTag::Parse("detector = x\n").ok());   // no header
  EXPECT_FALSE(GlobalTag::Parse("globaltag: g\nrubbish line\n").ok());
  EXPECT_FALSE(GlobalTag::Parse("globaltag: g\n = x\n").ok());  // empty role
}

TEST(GlobalTagRegistryTest, DefinitionsAreImmutable) {
  GlobalTagRegistry registry;
  ASSERT_TRUE(registry.Define(MakeGlobalTag()).ok());
  EXPECT_TRUE(registry.Define(MakeGlobalTag()).IsAlreadyExists());
  EXPECT_TRUE(registry.Has("PRESERVATION_2014_V1"));
  EXPECT_EQ(registry.Names().size(), 1u);
  auto tag = registry.Get("PRESERVATION_2014_V1");
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag->roles.size(), 2u);
  EXPECT_TRUE(registry.Get("NOPE").status().IsNotFound());

  GlobalTag invalid;
  invalid.name = "EMPTY";
  EXPECT_TRUE(registry.Define(invalid).IsInvalidArgument());
}

TEST(GlobalTagTest, CaptureByGlobalTagFreezesAllRoles) {
  ConditionsDb db = PopulatedDb();
  GlobalTag tag = MakeGlobalTag();
  auto snapshot = CaptureByGlobalTag(db, 60, tag);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->Tags().size(), 2u);
  EXPECT_TRUE(snapshot->GetPayload("calib/detector", 60).ok());
  EXPECT_TRUE(snapshot->GetPayload("beamspot", 60).ok());
}

TEST(GlobalTagTest, GetPayloadByRole) {
  ConditionsDb db = PopulatedDb();
  GlobalTag tag = MakeGlobalTag();
  auto payload = GetPayloadByRole(db, tag, "detector", 60);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, *db.GetPayload("calib/detector", 60));
  EXPECT_TRUE(GetPayloadByRole(db, tag, "nope", 60).status().IsNotFound());
}

TEST(GlobalTagTest, MissingUnderlyingTagFailsCapture) {
  ConditionsDb db = PopulatedDb();
  GlobalTag tag = MakeGlobalTag();
  tag.roles["muon"] = "calib/muon/v9";  // not in the database
  EXPECT_TRUE(CaptureByGlobalTag(db, 60, tag).status().IsNotFound());
}

}  // namespace
}  // namespace daspos
