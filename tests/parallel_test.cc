// Tests for the intra-step parallelism layer: chunk planning, the
// ParallelFor/Map/MapReduce helpers, nested-region deadlock freedom, and —
// most importantly — byte-identical determinism of every parallelized hot
// loop (reco, derivation, rivet, level2 files, whole workflows) at any
// thread count.
#include "support/parallel.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "conditions/store.h"
#include "detsim/simulation.h"
#include "level2/common.h"
#include "level2/files.h"
#include "mc/generator.h"
#include "hist/yoda_io.h"
#include "reco/reconstruction.h"
#include "rivet/analysis.h"
#include "rivet/registry.h"
#include "support/io.h"
#include "support/metrics_registry.h"
#include "support/sha256.h"
#include "support/threadpool.h"
#include "tiers/dataset.h"
#include "tiers/skimslim.h"
#include "workflow/engine.h"
#include "workflow/steps.h"

namespace daspos {
namespace {

// ---------------------------------------------------------------------------
// Chunk planning

TEST(ChunkPlanTest, CoversRangeExactlyOnce) {
  for (size_t count : {0u, 1u, 2u, 7u, 63u, 64u, 65u, 1000u, 4096u}) {
    for (size_t grain : {1u, 2u, 8u, 100u}) {
      ChunkPlan plan = PlanChunks(count, grain);
      if (count == 0) {
        EXPECT_EQ(plan.chunk_count, 0u);
        continue;
      }
      ASSERT_GE(plan.chunk_count, 1u);
      ASSERT_LE(plan.chunk_count, ChunkPlan::kMaxChunks);
      size_t expected_begin = 0;
      for (size_t c = 0; c < plan.chunk_count; ++c) {
        auto [begin, end] = plan.Bounds(c);
        EXPECT_EQ(begin, expected_begin) << "count=" << count;
        EXPECT_GT(end, begin);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(ChunkPlanTest, RespectsGrain) {
  // With grain 100 over 250 items at most two chunks are planned, so no
  // chunk drops below ~the grain size.
  ChunkPlan plan = PlanChunks(250, 100);
  EXPECT_EQ(plan.chunk_count, 2u);
}

TEST(ChunkPlanTest, PlanIsIndependentOfThreadCount) {
  // The plan is a pure function of (count, grain); determinism of every
  // parallel merge rests on this.
  ChunkPlan a = PlanChunks(997, 4);
  ChunkPlan b = PlanChunks(997, 4);
  ASSERT_EQ(a.chunk_count, b.chunk_count);
  for (size_t c = 0; c < a.chunk_count; ++c) {
    EXPECT_EQ(a.Bounds(c), b.Bounds(c));
  }
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelMap / ParallelMapReduce

TEST(ParallelForTest, VisitsEveryIndexOnceSerial) {
  std::vector<int> visits(777, 0);
  ParallelFor(nullptr, visits.size(), [&](size_t i) { ++visits[i]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, VisitsEveryIndexOnceOnPool) {
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(3001);
    ParallelFor(&pool, visits.size(),
                [&](size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelMapTest, ResultsInIndexOrderAtAnyWidth) {
  auto square = [](size_t i) { return static_cast<uint64_t>(i) * i; };
  std::vector<uint64_t> serial = ParallelMap<uint64_t>(nullptr, 500, square);
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> wide = ParallelMap<uint64_t>(&pool, 500, square);
    EXPECT_EQ(wide, serial) << threads << " threads";
  }
}

TEST(ParallelMapReduceTest, ReducesInChunkOrder) {
  // Concatenation is order-sensitive: the parallel result only matches the
  // serial one if parts are folded in chunk order.
  auto map_chunk = [](size_t begin, size_t end) {
    std::string acc;
    for (size_t i = begin; i < end; ++i) {
      acc.append(std::to_string(i));
      acc.push_back(',');
    }
    return acc;
  };
  auto reduce = [](std::string& into, std::string part) {
    into.append(part);
  };
  std::string serial = ParallelMapReduce<std::string>(
      nullptr, 400, std::string(), map_chunk, reduce, /*grain=*/1);
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::string wide = ParallelMapReduce<std::string>(
        &pool, 400, std::string(), map_chunk, reduce, /*grain=*/1);
    EXPECT_EQ(wide, serial);
  }
}

TEST(ParallelForTest, NestedRegionsOnOnePoolDoNotDeadlock) {
  // Steps running ON pool workers parallelize their own loops over the same
  // pool. Caller participation guarantees progress even when every worker
  // is occupied by an outer-level body.
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 100,
                [&](size_t j) { total.fetch_add(j); });
  });
  EXPECT_EQ(total.load(), 8u * (99u * 100u / 2u));
}

TEST(ThreadPoolTest, RegistryCountsExecutedTasks) {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  uint64_t tasks_before =
      registry.CounterValue(metric_names::kPoolTasksTotal);
  {
    ThreadPool pool(2);
    ParallelFor(&pool, 64, [](size_t) {}, /*grain=*/1);
    pool.Wait();
  }
  // Helpers (up to thread_count-1 per region) ran; the caller's own chunk
  // draining is not a pool task.
  EXPECT_GE(registry.CounterValue(metric_names::kPoolTasksTotal),
            tasks_before + 1);
  // Nothing is left queued once the pool has drained and joined.
  EXPECT_EQ(registry.GaugeValue(metric_names::kPoolQueueDepth), 0);
}

// ---------------------------------------------------------------------------
// Streaming file hash

TEST(StreamingHashTest, MatchesInMemoryHash) {
  std::string payload;
  payload.reserve(600 * 1024);  // spans multiple streaming chunks
  for (size_t i = 0; payload.size() < 600 * 1024; ++i) {
    payload += "block " + std::to_string(i) + "\n";
  }
  std::string path =
      (std::filesystem::temp_directory_path() / "daspos_hash_test.bin")
          .string();
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());

  std::string hex;
  auto contents = ReadFileHashed(path, &hex);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, payload);
  EXPECT_EQ(hex, Sha256::HashHex(payload));

  auto hash_only = HashFileHex(path);
  ASSERT_TRUE(hash_only.ok());
  EXPECT_EQ(*hash_only, hex);
  std::filesystem::remove(path);
}

TEST(StreamingHashTest, MissingFileFails) {
  EXPECT_FALSE(HashFileHex("/nonexistent/daspos/blob").ok());
  std::string hex;
  EXPECT_FALSE(ReadFileHashed("/nonexistent/daspos/blob", &hex).ok());
}

// ---------------------------------------------------------------------------
// Determinism of the parallelized physics loops

std::vector<GenEvent> MakeTruth(size_t count) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.seed = 20260805;
  EventGenerator generator(config);
  return generator.GenerateMany(count);
}

std::vector<RawEvent> MakeRaw(const std::vector<GenEvent>& truth) {
  SimulationConfig config;
  config.seed = 99;
  DetectorSimulation simulation(config);
  std::vector<RawEvent> raw;
  raw.reserve(truth.size());
  for (const GenEvent& event : truth) {
    raw.push_back(simulation.Simulate(event, /*run_number=*/1));
  }
  return raw;
}

TEST(DeterminismTest, ReconstructAllMatchesSerialAtAnyWidth) {
  std::vector<RawEvent> raw = MakeRaw(MakeTruth(200));
  Reconstructor reconstructor{{}};
  std::vector<RecoEvent> serial = reconstructor.ReconstructAll(raw);
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<RecoEvent> wide = reconstructor.ReconstructAll(raw, &pool);
    ASSERT_EQ(wide.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(wide[i].ToRecord(), serial[i].ToRecord())
          << "event " << i << " at " << threads << " threads";
    }
  }
}

std::string MakeAodBlob(size_t events) {
  std::vector<RawEvent> raw = MakeRaw(MakeTruth(events));
  Reconstructor reconstructor{{}};
  std::vector<RecoEvent> reco = reconstructor.ReconstructAll(raw);
  std::vector<AodEvent> aod;
  aod.reserve(reco.size());
  for (const RecoEvent& event : reco) aod.push_back(AodEvent::FromReco(event));
  DatasetInfo info;
  info.name = "determinism_aod";
  info.producer = "parallel_test";
  info.tier = DataTier::kAod;
  return WriteAodDataset(info, aod);
}

TEST(DeterminismTest, DeriveDatasetIsByteIdenticalAtAnyWidth) {
  std::string aod = MakeAodBlob(300);
  SkimSpec skim = SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0);
  SlimSpec slim = SlimSpec::LeptonsOnly(10.0);
  DerivationStats serial_stats;
  auto serial = DeriveDataset(aod, "derived", skim, slim, &serial_stats);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    DerivationStats stats;
    auto wide = DeriveDataset(aod, "derived", skim, slim, &stats, &pool);
    ASSERT_TRUE(wide.ok());
    EXPECT_EQ(*wide, *serial) << threads << " threads";
    EXPECT_EQ(stats.output_events, serial_stats.output_events);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
  }
}

std::string RunRivet(const std::vector<GenEvent>& events, ThreadPool* pool) {
  rivet::AnalysisHandler handler;
  for (const std::string& name : rivet::AnalysisRegistry::Global().Names()) {
    auto analysis = rivet::AnalysisRegistry::Global().Create(name);
    if (analysis.ok()) handler.Add(std::move(*analysis));
  }
  handler.Run(events, pool);
  return WriteYoda(handler.Finalize());
}

TEST(DeterminismTest, RivetRunIsBitIdenticalAtAnyWidth) {
  // Histogram fills are float accumulation; parallelizing across analyses
  // (never across events) keeps the per-analysis fill order — and thus the
  // YODA output — bit-identical.
  std::vector<GenEvent> events = MakeTruth(400);
  std::string serial = RunRivet(events, nullptr);
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(RunRivet(events, &pool), serial) << threads << " threads";
  }
}

TEST(DeterminismTest, Level2FilesAreByteIdenticalAtAnyWidth) {
  std::vector<RawEvent> raw = MakeRaw(MakeTruth(60));
  Reconstructor reconstructor{{}};
  std::vector<RecoEvent> reco = reconstructor.ReconstructAll(raw);
  std::vector<level2::CommonEvent> events;
  events.reserve(reco.size());
  for (const RecoEvent& event : reco) {
    events.push_back(level2::CommonEvent::FromReco(event));
  }
  for (Experiment experiment : kAllExperiments) {
    std::string serial = level2::WriteEventFile(experiment, events);
    for (size_t threads : {2u, 8u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(level2::WriteEventFile(experiment, events, &pool), serial);
      auto read_back = level2::ReadEventFile(experiment, serial, &pool);
      ASSERT_TRUE(read_back.ok());
      EXPECT_EQ(*read_back, events);
      auto converted = level2::ConvertEventFile(experiment, serial,
                                                Experiment::kAlice, &pool);
      auto converted_serial =
          level2::ConvertEventFile(experiment, serial, Experiment::kAlice);
      ASSERT_TRUE(converted.ok());
      ASSERT_TRUE(converted_serial.ok());
      EXPECT_EQ(*converted, *converted_serial);
    }
  }
}

Result<std::map<std::string, std::string>> RunChain(size_t threads) {
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.seed = 7;
  SimulationConfig sim_config;
  sim_config.seed = 8;

  Workflow workflow;
  DASPOS_RETURN_IF_ERROR(workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, 120, "gen"), {}, "gen"));
  DASPOS_RETURN_IF_ERROR(workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, 1, "raw"), {"gen"},
      "raw"));
  DASPOS_RETURN_IF_ERROR(workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco"));
  DASPOS_RETURN_IF_ERROR(workflow.AddStep(
      std::make_shared<AodReductionStep>("aod"), {"reco"}, "aod"));
  DASPOS_RETURN_IF_ERROR(workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0),
          SlimSpec::LeptonsOnly(10.0), "derived"),
      {"aod"}, "derived"));

  ConditionsDb conditions;
  CalibrationSet calib;
  DASPOS_RETURN_IF_ERROR(
      conditions.Append(kCalibrationTag, 1, calib.ToPayload()));
  WorkflowContext context;
  context.set_conditions(&conditions);
  ExecuteOptions options;
  options.max_threads = threads;
  DASPOS_ASSIGN_OR_RETURN(WorkflowReport report,
                          workflow.Execute(&context, nullptr, options));
  (void)report;
  std::map<std::string, std::string> datasets;
  for (const std::string& name : context.DatasetNames()) {
    DASPOS_ASSIGN_OR_RETURN(std::string_view blob, context.GetDataset(name));
    datasets[name] = std::string(blob);
  }
  return datasets;
}

TEST(DeterminismTest, FullChainIsByteIdenticalAtAnyWidth) {
  auto serial = RunChain(1);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->size(), 5u);
  for (size_t threads : {2u, 4u, 8u}) {
    auto wide = RunChain(threads);
    ASSERT_TRUE(wide.ok());
    EXPECT_EQ(*wide, *serial) << threads << " threads";
  }
}

TEST(WorkflowReportTest, PoolUtilizationIsReported) {
  auto chain = RunChain(4);
  ASSERT_TRUE(chain.ok());
  // Re-run once more for the report itself.
  GeneratorConfig gen_config;
  gen_config.process = Process::kZToLL;
  gen_config.seed = 7;
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<GenerationStep>(gen_config, 50,
                                                            "gen"),
                           {}, "gen")
                  .ok());
  WorkflowContext context;
  ExecuteOptions options;
  options.max_threads = 4;
  auto report = workflow.Execute(&context, nullptr, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pool.threads, 4u);
  EXPECT_GE(report->pool.tasks_executed, 1u);
  EXPECT_GT(report->pool.wall_ms, 0.0);
  Json json = report->ToJson();
  ASSERT_TRUE(json.Has("pool"));
  EXPECT_EQ(json.Get("pool").Get("threads").as_int(), 4);
  // The report also carries the global registry state as a metrics block.
  ASSERT_TRUE(json.Has("metrics"));
  const Json& counters = json.Get("metrics").Get("counters");
  EXPECT_GE(counters.Get(metric_names::kWorkflowStepsTotal).as_number(),
            1.0);
}

}  // namespace
}  // namespace daspos
