// Tests for the DASPOS core: preserved-analysis capture, archive deposit/
// retrieve, re-execution validation, and the RECAST<->RIVET bridge serving
// the shared front end.
#include <gtest/gtest.h>

#include "archive/object_store.h"
#include "core/bridge.h"
#include "core/preserved_analysis.h"
#include "core/replay.h"
#include "conditions/store.h"
#include "event/pdg.h"
#include "interview/interview.h"
#include "recast/frontend.h"
#include "workflow/steps.h"

namespace daspos {
namespace {

GeneratorConfig ZConfig(uint64_t seed = 101) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.lepton_flavor = pdg::kMuon;
  config.seed = seed;
  return config;
}

// ------------------------------------------------------ PreservedAnalysis

TEST(PreservedAnalysisTest, CaptureStoresReference) {
  auto analysis =
      CaptureAnalysis("zll-lineshape", "DASPOS_2014_ZLL", ZConfig(), 300);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_FALSE(analysis->reference_yoda.empty());
  EXPECT_NE(analysis->reference_yoda.find("BEGIN HISTO1D"),
            std::string::npos);
}

TEST(PreservedAnalysisTest, CaptureUnknownAnalysisFails) {
  EXPECT_TRUE(
      CaptureAnalysis("x", "NOPE", ZConfig(), 10).status().IsNotFound());
}

TEST(PreservedAnalysisTest, ReexecutionIsBitIdentical) {
  auto analysis =
      CaptureAnalysis("zll-lineshape", "DASPOS_2014_ZLL", ZConfig(), 300);
  ASSERT_TRUE(analysis.ok());
  auto report = Reexecute(*analysis);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->validated);
  // Same seed, same generator: exact reproduction.
  EXPECT_DOUBLE_EQ(report->worst_reduced_chi2, 0.0);
  EXPECT_EQ(report->events_generated, 300u);
  EXPECT_EQ(report->histograms_compared, 3);
}

TEST(PreservedAnalysisTest, TamperedReferenceDetected) {
  auto analysis =
      CaptureAnalysis("zll-lineshape", "DASPOS_2014_ZLL", ZConfig(), 300);
  ASSERT_TRUE(analysis.ok());
  // Corrupt the preserved physics: different seed changes the sample.
  analysis->generator_config.seed += 1;
  auto report = Reexecute(*analysis, /*max_reduced_chi2=*/0.0001);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->validated);
  EXPECT_GT(report->worst_reduced_chi2, 0.0);
}

TEST(PreservedAnalysisTest, ArchiveRoundTrip) {
  auto analysis =
      CaptureAnalysis("zll-lineshape", "DASPOS_2014_ZLL", ZConfig(), 200);
  ASSERT_TRUE(analysis.ok());
  analysis->physics_summary = "Z line shape preservation";
  analysis->provenance_json = "[]";
  analysis->conditions_snapshot = "# snapshot\nrun: 1\n";
  analysis->interview = interview::ExampleInterviews()[2].ToJson();

  MemoryObjectStore store;
  Archive archive(&store);
  auto id = DepositAnalysis(&archive, *analysis);
  ASSERT_TRUE(id.ok()) << id.status();

  auto restored = RetrieveAnalysis(archive, *id);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->name, "zll-lineshape");
  EXPECT_EQ(restored->rivet_analysis, "DASPOS_2014_ZLL");
  EXPECT_EQ(restored->event_count, 200u);
  EXPECT_EQ(restored->generator_config.seed, analysis->generator_config.seed);
  EXPECT_EQ(restored->reference_yoda, analysis->reference_yoda);
  EXPECT_EQ(restored->conditions_snapshot, analysis->conditions_snapshot);
  EXPECT_FALSE(restored->interview.is_null());

  // And the retrieved package still re-executes identically: the full
  // preservation loop (capture -> deposit -> retrieve -> re-run).
  auto report = Reexecute(*restored);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->validated);
}

TEST(PreservedAnalysisTest, ForeignPackageRejected) {
  MemoryObjectStore store;
  Archive archive(&store);
  SubmissionPackage foreign;
  foreign.title = "not an analysis";
  foreign.files.push_back({"readme.txt", "text/plain", "hello"});
  auto id = archive.Deposit(foreign);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(RetrieveAnalysis(archive, *id).status().IsCorruption());
}

// ------------------------------------------------------------------ Replay

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CalibrationSet calib;
    calib.version = 5;
    calib.tracker_phi_offset = 0.001;
    ASSERT_TRUE(conditions_.Append(kCalibrationTag, 1, calib.ToPayload()).ok());

    GeneratorConfig gen_config;
    gen_config.process = Process::kZToLL;
    gen_config.lepton_flavor = pdg::kMuon;
    gen_config.seed = 2025;
    SimulationConfig sim_config;
    sim_config.seed = 2026;
    sim_config.calib = calib;

    Workflow workflow;
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<GenerationStep>(gen_config, 40,
                                                              "r_gen"),
                             {}, "r_gen")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<SimulationStep>(sim_config, 3,
                                                              "r_raw"),
                             {"r_gen"}, "r_raw")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<ReconstructionStep>(
                                 sim_config.geometry, "r_reco"),
                             {"r_raw"}, "r_reco")
                    .ok());
    ASSERT_TRUE(workflow
                    .AddStep(std::make_shared<AodReductionStep>("r_aod"),
                             {"r_reco"}, "r_aod")
                    .ok());
    ASSERT_TRUE(
        workflow
            .AddStep(std::make_shared<DerivationStep>(
                         SkimSpec::RequireObjects(ObjectType::kMuon, 2, 15.0),
                         SlimSpec::LeptonsOnly(15.0), "r_derived"),
                     {"r_aod"}, "r_derived")
            .ok());
    original_.set_conditions(&conditions_);
    ASSERT_TRUE(workflow.Execute(&original_, &provenance_).ok());
  }

  ConditionsDb conditions_;
  WorkflowContext original_;
  ProvenanceStore provenance_;
};

TEST_F(ReplayTest, ChainReplaysByteIdentically) {
  // "Decades later": only provenance + conditions exist; the chain is
  // rebuilt from the records and re-run.
  WorkflowContext replayed;
  replayed.set_conditions(&conditions_);
  auto report = ReplayChain(provenance_, "r_derived", &replayed, &original_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->steps.size(), 5u);
  EXPECT_EQ(report->datasets_identical, 5);
  EXPECT_EQ(report->datasets_differing, 0);
  EXPECT_EQ(*replayed.GetDataset("r_derived"),
            *original_.GetDataset("r_derived"));
}

TEST_F(ReplayTest, ReplaySurvivesProvenanceSerialization) {
  // The provenance store itself round-trips through its archival text form
  // and still drives a byte-identical replay.
  auto parsed = ProvenanceStore::Parse(provenance_.Serialize());
  ASSERT_TRUE(parsed.ok());
  WorkflowContext replayed;
  replayed.set_conditions(&conditions_);
  auto report = ReplayChain(*parsed, "r_derived", &replayed, &original_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->datasets_identical, 5);
}

TEST_F(ReplayTest, GapBlocksReplay) {
  // Remove the middle of the chain: replay must refuse, naming the gap.
  ProvenanceStore partial;
  for (const std::string& dataset : provenance_.Datasets()) {
    if (dataset == "r_raw") continue;  // the lost record
    ProvenanceRecord record = *provenance_.Get(dataset);
    ASSERT_TRUE(partial.Add(record).ok());
  }
  WorkflowContext replayed;
  replayed.set_conditions(&conditions_);
  auto report = ReplayChain(partial, "r_derived", &replayed);
  EXPECT_TRUE(report.status().IsFailedPrecondition());
  EXPECT_NE(report.status().message().find("r_raw"), std::string::npos);
}

TEST_F(ReplayTest, ReplayWithoutConditionsFails) {
  WorkflowContext replayed;  // no conditions service
  auto report = ReplayChain(provenance_, "r_derived", &replayed);
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

TEST_F(ReplayTest, UnknownProducerIsHonestlyUnimplemented) {
  ProvenanceRecord record;
  record.dataset = "plots";
  record.producer = "analyst_macro";  // hand-written final-plot code, §3.2
  record.config = Json::Object();
  EXPECT_TRUE(RebuildStep(record).status().IsUnimplemented());
}

TEST(SkimSpecJsonTest, FactorySkimsRoundTrip) {
  for (const SkimSpec& original :
       {SkimSpec::All(),
        SkimSpec::RequireObjects(ObjectType::kElectron, 2, 27.5),
        SkimSpec::RequireTrigger(5)}) {
    auto restored = SkimSpec::FromJson(original.ToJson());
    ASSERT_TRUE(restored.ok()) << original.name;
    EXPECT_EQ(restored->name, original.name);
    // Behavioural equality on a probe event.
    AodEvent event;
    PhysicsObject electron;
    electron.type = ObjectType::kElectron;
    electron.momentum = FourVector::FromPtEtaPhiM(30.0, 0.1, 0.2, 0.0);
    event.objects = {electron, electron};
    event.trigger_bits = 5;
    EXPECT_EQ(restored->predicate(event), original.predicate(event));
  }
  // Hand-written skims are not reconstructible.
  SkimSpec handwritten;
  handwritten.predicate = [](const AodEvent&) { return false; };
  handwritten.descriptor = Json();
  EXPECT_TRUE(
      SkimSpec::FromJson(handwritten.ToJson()).status().IsUnimplemented());
}

TEST(SlimSpecJsonTest, RoundTrip) {
  SlimSpec original = SlimSpec::Objects(
      {ObjectType::kJet, ObjectType::kPhoton}, 22.0, "jets_photons");
  auto restored = SlimSpec::FromJson(original.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->name, "jets_photons");
  EXPECT_EQ(restored->keep_types, original.keep_types);
  EXPECT_DOUBLE_EQ(restored->min_object_pt, 22.0);
  EXPECT_FALSE(SlimSpec::FromJson(Json::Object()).ok());
}

// ------------------------------------------------------------------ Bridge

recast::RecastRequest BridgeRequest(double mass, size_t events = 400) {
  GeneratorConfig model;
  model.process = Process::kZPrimeToLL;
  model.zprime_mass = mass;
  model.zprime_width = mass * 0.03;
  model.lepton_flavor = pdg::kMuon;
  model.seed = 777;

  recast::RecastRequest request;
  request.search_name = "DASPOS_EXO_14_001_RIVET";
  request.requester = "theorist@pheno.example";
  request.model = GeneratorConfigToJson(model);
  request.model_cross_section_pb = 0.05;
  request.event_count = events;
  return request;
}

TEST(BridgeTest, RegistrationAndValidation) {
  RivetBridgeBackEnd bridge;
  ASSERT_TRUE(bridge.RegisterSearch(DileptonResonanceTruthSearch()).ok());
  EXPECT_TRUE(bridge.RegisterSearch(DileptonResonanceTruthSearch())
                  .IsAlreadyExists());
  BridgedSearch empty;
  empty.name = "X";
  EXPECT_TRUE(bridge.RegisterSearch(empty).IsInvalidArgument());
  EXPECT_EQ(bridge.SearchNames().size(), 1u);
}

TEST(BridgeTest, ProcessesThroughSameFrontEnd) {
  RivetBridgeBackEnd bridge;
  ASSERT_TRUE(bridge.RegisterSearch(DileptonResonanceTruthSearch()).ok());
  recast::RecastFrontEnd frontend(&bridge);

  auto id = frontend.Submit(BridgeRequest(1200.0));
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  ASSERT_TRUE(frontend.Approve(*id).ok());
  auto result = frontend.GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->regions.size(), 2u);
  EXPECT_EQ(bridge.events_generated(), 400u);
}

TEST(BridgeTest, TruthEfficiencyExceedsFullSim) {
  // The E3 structure: truth-level selections see no detector losses, so
  // the bridge efficiency bounds the full-simulation efficiency from
  // above.
  RivetBridgeBackEnd bridge;
  ASSERT_TRUE(bridge.RegisterSearch(DileptonResonanceTruthSearch()).ok());
  recast::RecastBackEnd full_sim;
  ASSERT_TRUE(full_sim.RegisterSearch(recast::DileptonResonanceSearch()).ok());

  recast::RecastRequest truth_request = BridgeRequest(1200.0, 400);
  recast::RecastRequest sim_request = truth_request;
  sim_request.search_name = "DASPOS_EXO_14_001";

  auto truth_result = bridge.Process(truth_request);
  auto sim_result = full_sim.Process(sim_request);
  ASSERT_TRUE(truth_result.ok()) << truth_result.status();
  ASSERT_TRUE(sim_result.ok()) << sim_result.status();

  double truth_eff = 0.0;
  double sim_eff = 0.0;
  for (const auto& region : truth_result->regions) {
    if (region.region == "SR_mll_800") truth_eff = region.efficiency;
  }
  for (const auto& region : sim_result->regions) {
    if (region.region == "SR_mll_800") sim_eff = region.efficiency;
  }
  EXPECT_GT(truth_eff, 0.3);
  EXPECT_GT(sim_eff, 0.0);
  EXPECT_GT(truth_eff, sim_eff);
}

TEST(BridgeTest, RequestValidation) {
  RivetBridgeBackEnd bridge;
  ASSERT_TRUE(bridge.RegisterSearch(DileptonResonanceTruthSearch()).ok());
  recast::RecastRequest unknown = BridgeRequest(800.0);
  unknown.search_name = "NOPE";
  EXPECT_TRUE(bridge.Process(unknown).status().IsNotFound());
  recast::RecastRequest no_xsec = BridgeRequest(800.0);
  no_xsec.model_cross_section_pb = 0.0;
  EXPECT_TRUE(bridge.Process(no_xsec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace daspos
