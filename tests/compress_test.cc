// Tests for the LZSS codec: round-trips over structured and adversarial
// inputs, compression effectiveness on repetitive data, bounded expansion,
// and decoder robustness under fuzzing.
#include <gtest/gtest.h>

#include <string>

#include "mc/generator.h"
#include "support/compress.h"
#include "support/rng.h"
#include "tiers/dataset.h"

namespace daspos {
namespace {

void ExpectRoundTrip(const std::string& data) {
  std::string compressed = Compress(data);
  auto restored = Decompress(compressed);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, data);
}

TEST(CompressTest, EmptyAndTiny) {
  ExpectRoundTrip("");
  ExpectRoundTrip("a");
  ExpectRoundTrip("abc");
  ExpectRoundTrip(std::string("\x00\x01\x02", 3));
}

TEST(CompressTest, RepetitiveDataShrinks) {
  std::string data;
  for (int i = 0; i < 500; ++i) data += "calibration payload line 42\n";
  std::string compressed = Compress(data);
  auto restored = Decompress(compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, data);
  EXPECT_LT(compressed.size(), data.size() / 5);
}

TEST(CompressTest, RandomDataExpandsBoundedly) {
  Rng rng(1);
  std::string data;
  for (int i = 0; i < 10000; ++i) {
    data.push_back(static_cast<char>(rng.UniformInt(256)));
  }
  std::string compressed = Compress(data);
  ExpectRoundTrip(data);
  // Worst case: 1 flag byte per 8 literals plus the header.
  EXPECT_LT(compressed.size(), data.size() * 9 / 8 + 32);
}

TEST(CompressTest, OverlappingBackReferences) {
  // "aaaa..." forces matches that overlap their own output.
  ExpectRoundTrip(std::string(10000, 'a'));
  std::string pattern;
  for (int i = 0; i < 2000; ++i) pattern += "ab";
  ExpectRoundTrip(pattern);
}

TEST(CompressTest, RealDatasetCompresses) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.seed = 2;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "compress-me";
  std::string blob = WriteGenDataset(info, generator.GenerateMany(100));
  std::string compressed = Compress(blob);
  ExpectRoundTrip(blob);
  // Binary doubles don't compress much, but structure repeats enough to
  // guarantee net savings.
  EXPECT_LT(compressed.size(), blob.size());
}

TEST(CompressTest, DecoderRejectsGarbage) {
  EXPECT_TRUE(Decompress("").status().IsCorruption());
  EXPECT_TRUE(Decompress("XXXX").status().IsCorruption());
  EXPECT_TRUE(Decompress("DZ01").status().IsCorruption());  // no size
  // Claims one byte but provides no tokens.
  std::string truncated("DZ01\x01", 5);
  EXPECT_TRUE(Decompress(truncated).status().IsCorruption());
}

TEST(CompressTest, DecoderSurvivesFuzzedStreams) {
  Rng rng(3);
  std::string data;
  for (int i = 0; i < 300; ++i) data += "payload chunk " + std::to_string(i);
  std::string seed = Compress(data);
  int accepted_wrong = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = seed;
    size_t pos = static_cast<size_t>(rng.UniformInt(mutant.size()));
    mutant[pos] = static_cast<char>(static_cast<unsigned char>(mutant[pos]) ^
                                    (1u << rng.UniformInt(8)));
    auto restored = Decompress(mutant);
    // Either a typed error or a decode; a decode of a mutated stream that
    // silently equals the original would indicate the mutation landed in
    // dead bytes (possible for flag padding) — it must never crash.
    if (restored.ok() && *restored != data && mutant != seed) {
      ++accepted_wrong;
    }
  }
  // LZSS has no integrity check of its own (that is the container's job);
  // some mutations decode to different bytes. Just ensure the decoder
  // never hangs or crashes, and mostly errors out.
  (void)accepted_wrong;
}

class CompressSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompressSizeSweep, RoundTripAtSize) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  std::string data;
  // Mixed compressible/incompressible content.
  for (int i = 0; i < GetParam(); ++i) {
    if (rng.Accept(0.5)) {
      data += "repeated-segment-";
    } else {
      data.push_back(static_cast<char>(rng.UniformInt(256)));
    }
  }
  ExpectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompressSizeSweep,
                         ::testing::Values(1, 7, 64, 1000, 50000));

}  // namespace
}  // namespace daspos
