// Tests for the Level-2 outreach layer: the common format, the four
// experiment dialects and their (non-)interoperability, converters, the
// display scene, the outreach profiles behind Table 1, and master classes.
#include <gtest/gtest.h>

#include <cmath>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "level2/common.h"
#include "level2/dialects.h"
#include "level2/files.h"
#include "level2/display.h"
#include "level2/masterclass.h"
#include "level2/outreach.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"

namespace daspos {
namespace level2 {
namespace {

CommonEvent SampleEvent() {
  CommonEvent event;
  event.run = 7;
  event.event = 12345;
  event.objects.push_back({"muon", 45.5, 0.7, 1.2, -1});
  event.objects.push_back({"muon", 38.1, -1.1, -2.0, 1});
  event.objects.push_back({"jet", 62.0, 2.1, 0.4, 0});
  event.tracks.push_back({12.0, 0.3, 0.9, 1, 0.05});
  event.tracks.push_back({3.5, -0.8, 2.2, -1, 0.31});
  event.met = 17.5;
  event.met_phi = -0.6;
  return event;
}

// ----------------------------------------------------------- CommonEvent

TEST(CommonEventTest, JsonRoundTrip) {
  CommonEvent event = SampleEvent();
  auto restored = CommonEvent::FromJson(event.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == event);
}

TEST(CommonEventTest, FromJsonRejectsForeignDocument) {
  EXPECT_FALSE(CommonEvent::FromJson(Json::Object()).ok());
  Json wrong = Json::Object();
  wrong["format"] = "something-else";
  EXPECT_FALSE(CommonEvent::FromJson(wrong).ok());
}

TEST(CommonEventTest, FromAodSplitsMet) {
  AodEvent aod;
  aod.run_number = 3;
  aod.event_number = 9;
  PhysicsObject muon;
  muon.type = ObjectType::kMuon;
  muon.momentum = FourVector::FromPtEtaPhiM(30.0, 0.5, 1.0, 0.105);
  muon.charge = -1;
  PhysicsObject met;
  met.type = ObjectType::kMet;
  met.momentum = FourVector(3.0, 4.0, 0.0, 5.0);
  aod.objects = {muon, met};

  CommonEvent event = CommonEvent::FromAod(aod);
  ASSERT_EQ(event.objects.size(), 1u);
  EXPECT_EQ(event.objects[0].type, "muon");
  EXPECT_NEAR(event.objects[0].pt, 30.0, 1e-9);
  EXPECT_NEAR(event.met, 5.0, 1e-9);
  EXPECT_TRUE(event.tracks.empty());
}

// ---------------------------------------------------------------- Dialects

class DialectRoundTrip : public ::testing::TestWithParam<Experiment> {};

TEST_P(DialectRoundTrip, EncodeDecodeIsLossless) {
  const Level2Codec& codec = CodecFor(GetParam());
  CommonEvent event = SampleEvent();
  std::string encoded = codec.Encode(event);
  auto decoded = codec.Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(*decoded == event);
  EXPECT_EQ(codec.experiment(), GetParam());
  EXPECT_FALSE(codec.FormatName().empty());
}

INSTANTIATE_TEST_SUITE_P(AllExperiments, DialectRoundTrip,
                         ::testing::ValuesIn(kAllExperiments));

TEST(DialectsTest, DialectsAreMutuallyUnintelligible) {
  CommonEvent event = SampleEvent();
  int direct_ok = 0;
  int total = 0;
  for (Experiment from : kAllExperiments) {
    std::string encoded = CodecFor(from).Encode(event);
    for (Experiment to : kAllExperiments) {
      if (from == to) continue;
      ++total;
      if (DecodableAs(to, encoded)) ++direct_ok;
    }
  }
  EXPECT_EQ(direct_ok, 0);
  EXPECT_EQ(total, 12);
}

TEST(DialectsTest, ConvertBetweenAnyPairViaCommonFormat) {
  CommonEvent event = SampleEvent();
  for (Experiment from : kAllExperiments) {
    std::string encoded = CodecFor(from).Encode(event);
    for (Experiment to : kAllExperiments) {
      auto converted = ConvertBetween(from, encoded, to);
      ASSERT_TRUE(converted.ok())
          << ExperimentName(from) << " -> " << ExperimentName(to) << ": "
          << converted.status();
      auto decoded = CodecFor(to).Decode(*converted);
      ASSERT_TRUE(decoded.ok());
      EXPECT_TRUE(*decoded == event)
          << ExperimentName(from) << " -> " << ExperimentName(to);
    }
  }
}

TEST(DialectsTest, SelfDocumentationMatchesTable1) {
  // Text dialects (Atlas XML, CMS ig/JSON) are self-documenting; binary
  // dialects (Alice, LHCb) are not — the Table 1 "self-documenting?" row.
  EXPECT_TRUE(CodecFor(Experiment::kAtlas).SelfDocumenting());
  EXPECT_TRUE(CodecFor(Experiment::kCms).SelfDocumenting());
  EXPECT_FALSE(CodecFor(Experiment::kAlice).SelfDocumenting());
  EXPECT_FALSE(CodecFor(Experiment::kLhcb).SelfDocumenting());
}

TEST(DialectsTest, CorruptedDocumentsRejected) {
  CommonEvent event = SampleEvent();
  for (Experiment experiment : kAllExperiments) {
    std::string encoded = CodecFor(experiment).Encode(event);
    EXPECT_FALSE(CodecFor(experiment)
                     .Decode(encoded.substr(0, encoded.size() / 2))
                     .ok())
        << ExperimentName(experiment) << " accepted a truncated document";
  }
  EXPECT_FALSE(CodecFor(Experiment::kAtlas).Decode("garbage").ok());
  EXPECT_FALSE(CodecFor(Experiment::kCms).Decode("{}").ok());
}

// ------------------------------------------------------------ Event files

class EventFileRoundTrip : public ::testing::TestWithParam<Experiment> {};

TEST_P(EventFileRoundTrip, MultiEventFileIsLossless) {
  std::vector<CommonEvent> events;
  for (int i = 0; i < 5; ++i) {
    CommonEvent event = SampleEvent();
    event.event = static_cast<uint64_t>(100 + i);
    events.push_back(std::move(event));
  }
  std::string file = WriteEventFile(GetParam(), events);
  auto restored = ReadEventFile(GetParam(), file);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE((*restored)[i] == events[i]) << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllExperiments, EventFileRoundTrip,
                         ::testing::ValuesIn(kAllExperiments));

TEST(EventFileTest, ConvertWholeFileBetweenDialects) {
  std::vector<CommonEvent> events = {SampleEvent(), SampleEvent()};
  events[1].event = 99;
  std::string atlas_file = WriteEventFile(Experiment::kAtlas, events);
  auto cms_file =
      ConvertEventFile(Experiment::kAtlas, atlas_file, Experiment::kCms);
  ASSERT_TRUE(cms_file.ok()) << cms_file.status();
  auto restored = ReadEventFile(Experiment::kCms, *cms_file);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_TRUE((*restored)[1] == events[1]);
}

TEST(EventFileTest, FilesAreMutuallyUnintelligible) {
  std::vector<CommonEvent> events = {SampleEvent()};
  for (Experiment from : kAllExperiments) {
    std::string file = WriteEventFile(from, events);
    for (Experiment to : kAllExperiments) {
      if (from == to) continue;
      EXPECT_FALSE(ReadEventFile(to, file).ok())
          << ExperimentName(to) << " read a " << ExperimentName(from)
          << " file";
    }
  }
}

TEST(EventFileTest, CorruptFilesRejected) {
  std::vector<CommonEvent> events = {SampleEvent()};
  for (Experiment experiment : kAllExperiments) {
    std::string file = WriteEventFile(experiment, events);
    EXPECT_FALSE(
        ReadEventFile(experiment, file.substr(0, file.size() / 3)).ok())
        << ExperimentName(experiment);
  }
  EXPECT_FALSE(ReadEventFile(Experiment::kAtlas, "plain text").ok());
  EXPECT_FALSE(ReadEventFile(Experiment::kCms, "{}").ok());
}

// ----------------------------------------------------------------- Scene

TEST(DisplayTest, SceneGeometry) {
  Scene scene = BuildScene(SampleEvent());
  EXPECT_EQ(scene.run, 7u);
  ASSERT_EQ(scene.tracks.size(), 2u);
  ASSERT_EQ(scene.towers.size(), 3u);
  EXPECT_NEAR(scene.met, 17.5, 1e-9);
  // Track polylines extend to the configured outer radius.
  const ScenePoint& last = scene.tracks[0].points.back();
  double r = std::sqrt(last.x * last.x + last.y * last.y);
  EXPECT_NEAR(r, 1.1, 1e-6);
  // Opposite charges bend apart: compare final azimuth displacement signs.
  // (Track 0 is positive, track 1 negative.)
  Json json = scene.ToJson();
  EXPECT_EQ(json.Get("tracks").size(), 2u);
  EXPECT_EQ(json.Get("towers").size(), 3u);
}

TEST(DisplayTest, HigherEnergyMakesTallerTowers) {
  CommonEvent event;
  event.objects.push_back({"jet", 10.0, 0.0, 0.0, 0});
  event.objects.push_back({"jet", 100.0, 0.0, 1.0, 0});
  Scene scene = BuildScene(event);
  ASSERT_EQ(scene.towers.size(), 2u);
  EXPECT_LT(scene.towers[0].height, scene.towers[1].height);
}

// --------------------------------------------------------------- Outreach

TEST(OutreachTest, ProfilesMirrorTable1) {
  auto profiles = AllOutreachProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].experiment, Experiment::kAlice);
  EXPECT_EQ(profiles[3].experiment, Experiment::kLhcb);
  // Live codec facts flow into the profile.
  EXPECT_TRUE(profiles[1].self_documenting);   // Atlas XML
  EXPECT_FALSE(profiles[0].self_documenting);  // Alice binary
  EXPECT_NE(profiles[2].data_format.find("ig"), std::string::npos);
  EXPECT_EQ(profiles[3].master_class_uses, "D lifetime");
  EXPECT_NE(profiles[0].comments.find("Root too heavy"), std::string::npos);
}

// ------------------------------------------------------------ Masterclass

/// Builds converted Level-2 events through the real chain.
std::vector<CommonEvent> ChainEvents(Process process, int n, uint64_t seed,
                                     int lepton_flavor = pdg::kMuon) {
  GeneratorConfig gen_config;
  gen_config.process = process;
  gen_config.lepton_flavor = lepton_flavor;
  gen_config.seed = seed;
  EventGenerator generator(gen_config);
  SimulationConfig sim_config;
  sim_config.seed = seed + 1;
  sim_config.noise_cells_mean = 0.0;
  DetectorSimulation simulation(sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = sim_config.geometry;
  reco_config.calib = sim_config.calib;
  Reconstructor reconstructor(reco_config);

  std::vector<CommonEvent> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    events.push_back(CommonEvent::FromReco(
        reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1))));
  }
  return events;
}

TEST(MasterClassTest, ZMassMeasured) {
  auto events = ChainEvents(Process::kZToLL, 500, 21);
  auto result = ZMassExercise(events);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->measured, 91.2, 3.0);
  EXPECT_GT(result->uncertainty, 0.0);
  EXPECT_GT(result->histogram.Integral(), 50.0);
}

TEST(MasterClassTest, ZMassFailsOnWrongSample) {
  auto events = ChainEvents(Process::kMinimumBias, 50, 22);
  EXPECT_TRUE(ZMassExercise(events).status().IsFailedPrecondition());
}

TEST(MasterClassTest, WAsymmetryPositive) {
  auto events = ChainEvents(Process::kWToLNu, 1500, 23);
  auto result = WAsymmetryExercise(events);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->measured, 0.0);
  EXPECT_TRUE(result->ConsistentWithReference(4.0))
      << "measured " << result->measured << " +- " << result->uncertainty;
}

TEST(MasterClassTest, HiggsDiphotonPeak) {
  auto events = ChainEvents(Process::kHiggsToGammaGamma, 500, 24);
  auto result = HiggsDiphotonExercise(events);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->measured, 125.25, 4.0);
}

TEST(MasterClassTest, DLifetimeSeesDisplacement) {
  auto d_events = ChainEvents(Process::kDMeson, 800, 25);
  auto d_result = DLifetimeExercise(d_events, 0.0);
  ASSERT_TRUE(d_result.ok()) << d_result.status();

  // Prompt-only sample as control: D sample must show larger mean |d0|.
  auto prompt_events = ChainEvents(Process::kMinimumBias, 400, 26);
  auto prompt_result = DLifetimeExercise(prompt_events, 0.0);
  ASSERT_TRUE(prompt_result.ok()) << prompt_result.status();

  EXPECT_GT(d_result->measured, prompt_result->measured);
}

TEST(MasterClassTest, ExercisesWorkOnConvertedDialectData) {
  // The §2.1 goal: data converted out of any experiment dialect drives the
  // same exercise. Round-trip through the Alice binary dialect.
  auto events = ChainEvents(Process::kZToLL, 300, 27);
  std::vector<CommonEvent> round_tripped;
  for (const CommonEvent& event : events) {
    std::string encoded = CodecFor(Experiment::kAlice).Encode(event);
    auto decoded = CodecFor(Experiment::kAlice).Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    round_tripped.push_back(*decoded);
  }
  auto original = ZMassExercise(events);
  auto converted = ZMassExercise(round_tripped);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(converted.ok());
  EXPECT_DOUBLE_EQ(original->measured, converted->measured);
}

}  // namespace
}  // namespace level2
}  // namespace daspos
