// Tests for the continuous-validation farm: campaign capture/enumeration,
// matrix re-execution with bit-identical pass verdicts, failure surfacing
// (missing references, unknown analyses, broken packages), chaos mode
// through the fault injector, journal reuse, and report determinism.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "support/fault.h"
#include "support/metrics_registry.h"
#include "support/threadpool.h"
#include "validate/validate.h"

namespace daspos {
namespace {

using validate::CampaignSpec;
using validate::CaptureCampaign;
using validate::EnumerateCampaigns;
using validate::ValidateArchive;
using validate::ValidateOptions;
using validate::ValidationReport;
using validate::Verdict;

constexpr char kZll[] = "DASPOS_2014_ZLL";
constexpr char kCharged[] = "DASPOS_2014_CHARGED";

CampaignSpec SmallCampaign(const std::string& name, uint64_t seed = 7) {
  CampaignSpec spec;
  spec.name = name;
  spec.process = Process::kZToLL;
  spec.events = 25;
  spec.seed = seed;
  spec.analyses = {kZll};
  return spec;
}

std::string TempDir(const std::string& label) {
  return (std::filesystem::temp_directory_path() /
          ("daspos_validate_" + label + "_" + std::to_string(::getpid())))
      .string();
}

TEST(CaptureTest, RejectsUnsafeNamesAndUnknownAnalyses) {
  MemoryObjectStore store;
  Archive archive(&store);
  CampaignSpec spec = SmallCampaign("ok");
  spec.name = "../escape";
  EXPECT_TRUE(CaptureCampaign(&archive, spec).status().IsInvalidArgument());
  spec.name = "";
  EXPECT_TRUE(CaptureCampaign(&archive, spec).status().IsInvalidArgument());
  spec = SmallCampaign("ok");
  spec.events = 0;
  EXPECT_TRUE(CaptureCampaign(&archive, spec).status().IsInvalidArgument());
  spec = SmallCampaign("ok");
  spec.analyses = {"NO_SUCH_ANALYSIS"};
  EXPECT_TRUE(CaptureCampaign(&archive, spec).status().IsNotFound());
}

TEST(CaptureTest, PackageCarriesReferencesAndDigests) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto id = CaptureCampaign(&archive, SmallCampaign("z25"));
  ASSERT_TRUE(id.ok()) << id.status();

  auto set = EnumerateCampaigns(archive);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->campaigns.size(), 1u);
  EXPECT_TRUE(set->broken.empty());
  const validate::Campaign& campaign = set->campaigns[0];
  EXPECT_EQ(campaign.spec.name, "z25");
  EXPECT_EQ(campaign.spec.events, 25u);
  EXPECT_EQ(campaign.spec.seed, 7u);
  EXPECT_EQ(campaign.spec.analyses, std::vector<std::string>{kZll});
  EXPECT_EQ(campaign.reference_yoda.count(kZll), 1u);
  // The whole chain's datasets are digest-pinned.
  for (const char* name : {"gen", "raw", "reco", "aod", "derived"}) {
    EXPECT_EQ(campaign.dataset_digests.count(name), 1u) << name;
  }
}

TEST(CaptureTest, EmptyAnalysisListSelectsWholeRegistry) {
  MemoryObjectStore store;
  Archive archive(&store);
  CampaignSpec spec = SmallCampaign("all");
  spec.analyses.clear();
  ASSERT_TRUE(CaptureCampaign(&archive, spec).ok());
  auto set = EnumerateCampaigns(archive);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->campaigns.size(), 1u);
  EXPECT_GE(set->campaigns[0].spec.analyses.size(), 5u);
  EXPECT_EQ(set->campaigns[0].reference_yoda.size(),
            set->campaigns[0].spec.analyses.size());
}

TEST(ValidateTest, EmptyArchivePassesVacuouslyEmpty) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto report = ValidateArchive(archive);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->cells.empty());
  EXPECT_EQ(report->Overall(), Verdict::kPass);
}

TEST(ValidateTest, RecapturedCampaignReproducesBitIdentically) {
  MemoryObjectStore store;
  Archive archive(&store);
  CampaignSpec spec = SmallCampaign("z25");
  spec.analyses = {kZll, kCharged};
  ASSERT_TRUE(CaptureCampaign(&archive, spec).ok());

  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t cells_before =
      registry.CounterValue(metric_names::kValidationCellsTotal);
  const uint64_t pass_before =
      registry.CounterValue(metric_names::kValidationPassTotal);

  auto report = ValidateArchive(archive);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cells.size(), 2u);
  EXPECT_EQ(report->Overall(), Verdict::kPass);
  EXPECT_EQ(report->passed, 2u);
  for (const validate::CellResult& cell : report->cells) {
    EXPECT_EQ(cell.verdict, Verdict::kPass) << cell.detail;
    EXPECT_TRUE(cell.chain_identical);
    EXPECT_EQ(cell.worst_chi2, 0.0);
    EXPECT_EQ(cell.worst_ks, 0.0);
    EXPECT_GT(cell.histograms_compared, 0);
  }
  // Cells sorted by (campaign, analysis).
  EXPECT_EQ(report->cells[0].analysis, kCharged);
  EXPECT_EQ(report->cells[1].analysis, kZll);
  EXPECT_EQ(
      registry.CounterValue(metric_names::kValidationCellsTotal) - cells_before,
      2u);
  EXPECT_EQ(
      registry.CounterValue(metric_names::kValidationPassTotal) - pass_before,
      2u);
}

TEST(ValidateTest, ConcurrentMatrixMatchesSerialReport) {
  MemoryObjectStore store;
  Archive archive(&store);
  CampaignSpec a = SmallCampaign("a25", 3);
  a.analyses = {kZll, kCharged};
  CampaignSpec b = SmallCampaign("b25", 4);
  b.analyses = {kZll};
  ASSERT_TRUE(CaptureCampaign(&archive, a).ok());
  ASSERT_TRUE(CaptureCampaign(&archive, b).ok());

  auto serial = ValidateArchive(archive);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(4);
  ValidateOptions options;
  options.pool = &pool;
  auto parallel = ValidateArchive(archive, options);
  ASSERT_TRUE(parallel.ok());

  // The deterministic parts of the report are thread-count invariant.
  EXPECT_EQ(serial->RenderText(), parallel->RenderText());
  ASSERT_EQ(serial->cells.size(), 3u);
  ASSERT_EQ(parallel->cells.size(), 3u);
  for (size_t i = 0; i < serial->cells.size(); ++i) {
    EXPECT_EQ(serial->cells[i].campaign, parallel->cells[i].campaign);
    EXPECT_EQ(serial->cells[i].analysis, parallel->cells[i].analysis);
    EXPECT_EQ(serial->cells[i].verdict, parallel->cells[i].verdict);
    EXPECT_EQ(serial->cells[i].worst_chi2, parallel->cells[i].worst_chi2);
  }
}

TEST(ValidateTest, FiltersSelectSingleCells) {
  MemoryObjectStore store;
  Archive archive(&store);
  CampaignSpec a = SmallCampaign("a25", 3);
  a.analyses = {kZll, kCharged};
  CampaignSpec b = SmallCampaign("b25", 4);
  b.analyses = {kZll};
  ASSERT_TRUE(CaptureCampaign(&archive, a).ok());
  ASSERT_TRUE(CaptureCampaign(&archive, b).ok());

  ValidateOptions options;
  options.campaign_filter = "a25";
  options.analysis_filter = kCharged;
  auto report = ValidateArchive(archive, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cells.size(), 1u);
  EXPECT_EQ(report->cells[0].campaign, "a25");
  EXPECT_EQ(report->cells[0].analysis, kCharged);
  EXPECT_EQ(report->cells[0].verdict, Verdict::kPass);
}

TEST(ValidateTest, MissingReferenceAndUnknownAnalysisFail) {
  MemoryObjectStore store;
  Archive archive(&store);
  // Handcraft a campaign whose manifest promises more than the package
  // holds: one analysis with no reference file, one analysis that is not in
  // the registry at all.
  SubmissionPackage submission;
  submission.title = "campaign:promises";
  Json manifest = Json::Object();
  manifest["schema"] = 1;
  manifest["name"] = "promises";
  manifest["process"] = "z_ll";
  manifest["events"] = 10;
  manifest["seed"] = 1;
  Json analyses = Json::Array();
  analyses.push_back(Json(kZll));
  analyses.push_back(Json("NOT_REGISTERED"));
  manifest["analyses"] = std::move(analyses);
  submission.context["daspos_campaign"] = std::move(manifest);
  PackageFile file;
  file.logical_name = "validate/NOT_REGISTERED.yoda";
  file.bytes = "BEGIN HISTO1D /x/y\nbinning: 1 0 1\nunderflow: 0\n"
               "overflow: 0\nentries: 0\n0 0\nEND HISTO1D\n";
  submission.files.push_back(file);
  ASSERT_TRUE(archive.Deposit(submission).ok());

  auto report = ValidateArchive(archive);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cells.size(), 2u);
  EXPECT_EQ(report->Overall(), Verdict::kFail);
  // Sorted: DASPOS_2014_ZLL < NOT_REGISTERED.
  EXPECT_EQ(report->cells[0].analysis, kZll);
  EXPECT_EQ(report->cells[0].verdict, Verdict::kFail);
  EXPECT_NE(report->cells[0].detail.find("no archived reference"),
            std::string::npos);
  EXPECT_EQ(report->cells[1].analysis, "NOT_REGISTERED");
  EXPECT_EQ(report->cells[1].verdict, Verdict::kFail);
}

TEST(ValidateTest, MalformedCampaignPackageSurfacesAsFailingCell) {
  MemoryObjectStore store;
  Archive archive(&store);
  SubmissionPackage submission;
  submission.title = "campaign:rotted";
  submission.context["daspos_campaign"] = "not an object";
  PackageFile file;
  file.logical_name = "junk";
  file.bytes = "x";
  submission.files.push_back(file);
  ASSERT_TRUE(archive.Deposit(submission).ok());

  auto report = ValidateArchive(archive);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cells.size(), 1u);
  EXPECT_EQ(report->cells[0].campaign, "rotted");
  EXPECT_EQ(report->cells[0].analysis, "(package)");
  EXPECT_EQ(report->cells[0].verdict, Verdict::kFail);
  EXPECT_NE(report->cells[0].detail.find("unreadable"), std::string::npos);
}

TEST(ValidateTest, InjectedFaultsAbsorbedByRetries) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(CaptureCampaign(&archive, SmallCampaign("z25")).ok());

  auto spec = FaultSpec::Parse("seed=3,rate=0.3");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  ValidateOptions options;
  options.step_faults = &plan;
  options.max_step_retries = 6;
  options.retry_backoff_ms = 0.0;
  auto report = ValidateArchive(archive, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->Overall(), Verdict::kPass) << report->RenderText();
  EXPECT_GT(plan.operations(), 0u);
}

TEST(ValidateTest, InjectedFaultWithoutRetriesFailsTheCell) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(CaptureCampaign(&archive, SmallCampaign("z25")).ok());

  auto spec = FaultSpec::Parse("nth=1");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  ValidateOptions options;
  options.step_faults = &plan;
  auto report = ValidateArchive(archive, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->cells.size(), 1u);
  EXPECT_EQ(report->cells[0].verdict, Verdict::kFail);
  EXPECT_NE(report->cells[0].detail.find("chain execution failed"),
            std::string::npos);
}

TEST(ValidateTest, JournalRootCheckpointsAndResumesChains) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(CaptureCampaign(&archive, SmallCampaign("z25")).ok());

  std::string root = TempDir("journal");
  std::filesystem::remove_all(root);
  ValidateOptions options;
  options.journal_root = root;
  auto first = ValidateArchive(archive, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Overall(), Verdict::kPass);
  EXPECT_TRUE(std::filesystem::exists(root + "/z25/journal.jsonl"));

  // The second farm run restores every chain step from the journal instead
  // of re-executing it.
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t restores_before =
      registry.CounterValue(metric_names::kWorkflowCheckpointRestoresTotal);
  auto second = ValidateArchive(archive, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->Overall(), Verdict::kPass);
  EXPECT_EQ(second->cells[0].worst_chi2, 0.0);
  EXPECT_GE(registry.CounterValue(
                metric_names::kWorkflowCheckpointRestoresTotal) -
                restores_before,
            5u);
  std::filesystem::remove_all(root);
}

TEST(ValidateTest, ReportSerializesDeterministically) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(CaptureCampaign(&archive, SmallCampaign("z25")).ok());

  auto report = ValidateArchive(archive);
  ASSERT_TRUE(report.ok());
  Json json = report->ToJson();
  EXPECT_EQ(json.Get("verdict").as_string(), "pass");
  EXPECT_EQ(json.Get("campaigns").as_int(), 1);
  EXPECT_EQ(json.Get("cells").size(), 1u);
  EXPECT_EQ(json.Get("cells").at(0).Get("analysis").as_string(), kZll);
  EXPECT_TRUE(json.Get("cells").at(0).Get("chain_identical").as_bool());

  std::string text = report->RenderText();
  EXPECT_NE(text.find("verdict: PASS (1 pass, 0 warn, 0 fail)"),
            std::string::npos);
  // Text contains no wall-clock numbers: two runs render identically.
  auto again = ValidateArchive(archive);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(text, again->RenderText());
}

}  // namespace
}  // namespace daspos
