// Tests for the observability layer: the metrics registry (counters,
// gauges, fixed-bucket histograms, Prometheus exposition) and the span
// tracer (nesting, per-thread buffers, Chrome trace_event export).

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serialize/json.h"
#include "support/metrics_registry.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace daspos {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterHandleIsStableAndAccumulates) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test_events_total", "test events");
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.GetCounter("test_events_total"), &counter);
  EXPECT_EQ(registry.CounterValue("test_events_total"), 42u);
  // Unregistered names read as zero rather than erroring.
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
}

TEST(MetricsRegistryTest, GaugeMovesBothDirections) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("test_depth", "queue depth");
  gauge.Add(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.Set(-7);
  EXPECT_EQ(registry.GaugeValue("test_depth"), -7);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("test_wall_ms", {1.0, 10.0, 100.0}, "latency");
  // le is inclusive: an observation exactly on a bound lands in that bucket.
  histogram.Observe(1.0);
  histogram.Observe(0.5);
  histogram.Observe(10.0);
  histogram.Observe(10.1);
  histogram.Observe(1000.0);  // past the last bound -> +Inf bucket
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.0 + 0.5 + 10.0 + 10.1 + 1000.0);
  EXPECT_EQ(histogram.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(histogram.bucket_count(1), 1u);  // 10.0
  EXPECT_EQ(histogram.bucket_count(2), 1u);  // 10.1
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // 1000.0 in +Inf
}

TEST(MetricsRegistryTest, DefaultLatencyBucketsAreAscending) {
  const std::vector<double>& bounds = Histogram::DefaultLatencyBucketsMs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 0.25);
  EXPECT_DOUBLE_EQ(bounds.back(), 5000.0);
}

TEST(MetricsRegistryTest, KindMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test_mixed", "first registration");
  counter.Increment();
  // Asking for the same name as a gauge must not corrupt the counter.
  Gauge& dummy = registry.GetGauge("test_mixed");
  dummy.Set(99);
  EXPECT_EQ(registry.CounterValue("test_mixed"), 1u);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.gauges.size(), 0u);
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].value, 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zzz_total").Increment(3);
  registry.GetCounter("aaa_total").Increment(1);
  registry.GetGauge("mmm_depth").Set(2);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "aaa_total");
  EXPECT_EQ(snapshot.counters[1].name, "zzz_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].name, "mmm_depth");
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test_total");
  Histogram& histogram = registry.GetHistogram("test_ms", {1.0});
  counter.Increment(5);
  histogram.Observe(0.5);
  registry.ResetForTesting();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.bucket_count(0), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  // The handle survives the reset and keeps working.
  counter.Increment();
  EXPECT_EQ(registry.CounterValue("test_total"), 1u);
}

TEST(MetricsRegistryTest, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  registry.GetCounter("daspos_demo_events_total", "events seen").Increment(7);
  registry.GetGauge("daspos_demo_depth", "queue depth").Set(3);
  Histogram& histogram =
      registry.GetHistogram("daspos_demo_wall_ms", {1.0, 10.0}, "latency");
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Observe(50.0);

  const std::string expected =
      "# HELP daspos_demo_depth queue depth\n"
      "# TYPE daspos_demo_depth gauge\n"
      "daspos_demo_depth 3\n"
      "# HELP daspos_demo_events_total events seen\n"
      "# TYPE daspos_demo_events_total counter\n"
      "daspos_demo_events_total 7\n"
      "# HELP daspos_demo_wall_ms latency\n"
      "# TYPE daspos_demo_wall_ms histogram\n"
      "daspos_demo_wall_ms_bucket{le=\"1\"} 1\n"
      "daspos_demo_wall_ms_bucket{le=\"10\"} 2\n"
      "daspos_demo_wall_ms_bucket{le=\"+Inf\"} 3\n"
      "daspos_demo_wall_ms_sum 55.5\n"
      "daspos_demo_wall_ms_count 3\n";
  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(MetricsRegistryTest, RegisterStandardMetricsPreregistersCatalogue) {
  MetricsRegistry registry;
  RegisterStandardMetrics(registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& c : snapshot.counters) names.push_back(c.name);
  for (const auto& g : snapshot.gauges) names.push_back(g.name);
  for (const auto& h : snapshot.histograms) names.push_back(h.name);
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has(metric_names::kWorkflowStepsTotal));
  EXPECT_TRUE(has(metric_names::kArchiveCacheHitsTotal));
  EXPECT_TRUE(has(metric_names::kArchiveCacheMissesTotal));
  EXPECT_TRUE(has(metric_names::kPoolQueueDepth));
  EXPECT_TRUE(has(metric_names::kPoolTaskWallMs));
  EXPECT_TRUE(has(metric_names::kLintFindingsTotal));
  // Everything starts at zero; the exposition renders without touching
  // any subsystem.
  EXPECT_EQ(registry.CounterValue(metric_names::kArchiveCacheHitsTotal), 0u);
  EXPECT_NE(registry.RenderPrometheus().find(
                "daspos_archive_digest_cache_hits_total 0"),
            std::string::npos);
  // Idempotent: a second registration neither throws nor duplicates.
  RegisterStandardMetrics(registry);
  EXPECT_EQ(registry.Snapshot().counters.size(), snapshot.counters.size());
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Resolve through the registry each time to also stress GetCounter.
      Counter& counter = registry.GetCounter("test_concurrent_total");
      Histogram& histogram =
          registry.GetHistogram("test_concurrent_ms", {1.0, 10.0});
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        histogram.Observe(0.5);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.CounterValue("test_concurrent_total"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count,
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snapshot.histograms[0].bucket_counts[0],
            static_cast<uint64_t>(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// Tracer / Span
// ---------------------------------------------------------------------------

// Drains the global tracer and indexes the result by span name.
std::map<std::string, SpanEvent> DrainByName() {
  std::map<std::string, SpanEvent> by_name;
  for (SpanEvent& event : Tracer::Global().Drain()) {
    by_name[event.name] = std::move(event);
  }
  return by_name;
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  Tracer::Global().Drain();  // discard anything a previous test recorded
  { Span span("invisible"); }
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST(TracerTest, NestedSpansLinkParentAndChild) {
  Tracer::Global().Enable();
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      inner.AddAttribute("events", static_cast<uint64_t>(12));
    }
    { Span sibling("sibling", "test"); }
  }
  Tracer::Global().Disable();
  std::map<std::string, SpanEvent> spans = DrainByName();
  ASSERT_EQ(spans.size(), 3u);
  const SpanEvent& outer = spans.at("outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(spans.at("inner").parent_id, outer.id);
  EXPECT_EQ(spans.at("sibling").parent_id, outer.id);
  EXPECT_EQ(outer.category, "test");
  ASSERT_EQ(spans.at("inner").attributes.size(), 1u);
  EXPECT_EQ(spans.at("inner").attributes[0].first, "events");
  EXPECT_EQ(spans.at("inner").attributes[0].second, "12");
  // Children close before the parent and start no earlier than it.
  EXPECT_GE(spans.at("inner").start_us, outer.start_us);
  EXPECT_LE(spans.at("inner").duration_us, outer.duration_us);
}

TEST(TracerTest, EnableClearsPreviousSpans) {
  Tracer::Global().Enable();
  { Span span("stale"); }
  Tracer::Global().Enable();  // restart: drops "stale"
  { Span span("fresh"); }
  Tracer::Global().Disable();
  std::map<std::string, SpanEvent> spans = DrainByName();
  EXPECT_EQ(spans.count("stale"), 0u);
  EXPECT_EQ(spans.count("fresh"), 1u);
  // Drain clears: a second drain is empty.
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST(TracerTest, SpansNestPerThreadAcrossPoolWorkers) {
  Tracer::Global().Enable();
  constexpr size_t kTasks = 16;
  {
    Span root("pool_root", "test");
    ThreadPool pool(4);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([i] {
        Span task("task", "test");
        task.AddAttribute("index", static_cast<uint64_t>(i));
        Span child("task_child", "test");
      });
    }
    pool.Wait();
  }
  Tracer::Global().Disable();
  std::vector<SpanEvent> spans = Tracer::Global().Drain();
  std::map<uint64_t, const SpanEvent*> by_id;
  size_t tasks = 0;
  size_t children = 0;
  for (const SpanEvent& event : spans) by_id[event.id] = &event;
  for (const SpanEvent& event : spans) {
    if (event.name == "task") {
      ++tasks;
      // Pool workers are distinct threads from the root span's thread, so
      // parent links do not cross threads: each task span is a root.
      EXPECT_EQ(event.parent_id, 0u);
    } else if (event.name == "task_child") {
      ++children;
      // Each child's parent is a "task" span recorded on the same thread.
      ASSERT_EQ(by_id.count(event.parent_id), 1u);
      const SpanEvent& parent = *by_id.at(event.parent_id);
      EXPECT_EQ(parent.name, "task");
      EXPECT_EQ(parent.thread_index, event.thread_index);
    }
  }
  EXPECT_EQ(tasks, kTasks);
  EXPECT_EQ(children, kTasks);
  // Drain is sorted chronologically.
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end(),
                             [](const SpanEvent& a, const SpanEvent& b) {
                               return a.start_us < b.start_us ||
                                      (a.start_us == b.start_us && a.id < b.id);
                             }));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceEventJsonTest, NormalizedGoldenOutput) {
  std::vector<SpanEvent> spans(2);
  spans[0].name = "step:reco";
  spans[0].category = "workflow";
  spans[0].id = 7;
  spans[0].parent_id = 0;
  spans[0].thread_index = 2;
  spans[0].start_us = 123.0;
  spans[0].duration_us = 456.0;
  spans[0].attributes = {{"output", "reco_hits"}};
  spans[1].name = "attempt:reco";
  spans[1].category = "workflow";
  spans[1].id = 9;
  spans[1].parent_id = 7;
  spans[1].thread_index = 2;
  spans[1].start_us = 124.0;
  spans[1].duration_us = 400.0;

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"attempt:reco\",\"cat\":\"workflow\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.000,"
      "\"args\":{\"span_id\":\"1\",\"parent_id\":\"2\"}},\n"
      "{\"name\":\"step:reco\",\"cat\":\"workflow\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.000,"
      "\"args\":{\"span_id\":\"2\",\"parent_id\":\"0\","
      "\"output\":\"reco_hits\"}}\n"
      "]}\n";
  EXPECT_EQ(TraceEventJson(spans, /*normalize_timestamps=*/true), expected);
}

TEST(TraceEventJsonTest, EscapesSpecialCharacters) {
  std::vector<SpanEvent> spans(1);
  spans[0].name = "odd \"name\"\n";
  spans[0].category = "test";
  spans[0].id = 1;
  spans[0].attributes = {{"error", "tab\there"}};
  std::string json = TraceEventJson(spans);
  EXPECT_NE(json.find("odd \\\"name\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  Result<Json> parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
}

TEST(TraceEventJsonTest, RealTracerOutputIsValidJson) {
  Tracer::Global().Enable();
  {
    Span outer("workflow:execute", "workflow");
    outer.AddAttribute("steps", static_cast<uint64_t>(2));
    {
      Span step("step:gen", "workflow");
      step.AddAttribute("wall_ms", 1.5);
    }
    { Span step("step:reco", "workflow"); }
  }
  Tracer::Global().Disable();
  std::vector<SpanEvent> spans = Tracer::Global().Drain();
  ASSERT_EQ(spans.size(), 3u);

  std::string json = TraceEventJson(spans);
  Result<Json> parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Get("displayTimeUnit").as_string(), "ms");
  const Json& events = doc.Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    EXPECT_EQ(event.Get("ph").as_string(), "X");
    EXPECT_EQ(event.Get("pid").as_int(), 1);
    EXPECT_TRUE(event.Get("args").Has("span_id"));
    EXPECT_TRUE(event.Get("args").Has("parent_id"));
  }
}

}  // namespace
}  // namespace daspos
