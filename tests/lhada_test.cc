// Tests for the Les Houches analysis-description language: parsing,
// validation, canonical serialization round-trip, evaluation semantics,
// cutflows, and the analysis database.
#include <gtest/gtest.h>

#include "lhada/database.h"
#include "lhada/lhada.h"

namespace daspos {
namespace lhada {
namespace {

constexpr char kDimuonSearch[] = R"(
# A preserved dimuon resonance search, Les Houches style.
analysis dimuon_search

object muons
  take muon
  select pt > 25
  select abseta < 2.5
  select isolation < 10

object jets
  take jet
  select pt > 30

cut preselection
  select count(muons) >= 2

cut opposite_sign
  require preselection
  select oppositecharge(muons[0], muons[1])

cut high_mass
  require opposite_sign
  select mass(muons[0], muons[1]) > 400
)";

PhysicsObject MakeMuon(double pt, int charge, double eta = 0.5,
                       double phi = 1.0, double isolation = 1.0) {
  PhysicsObject muon;
  muon.type = ObjectType::kMuon;
  muon.momentum = FourVector::FromPtEtaPhiM(pt, eta, phi, 0.105);
  muon.charge = charge;
  muon.isolation = isolation;
  return muon;
}

PhysicsObject MakeMet(double et) {
  PhysicsObject met;
  met.type = ObjectType::kMet;
  met.momentum = FourVector(et, 0.0, 0.0, et);
  return met;
}

AodEvent DimuonEvent(double pt1, double pt2, int q1, int q2,
                     double eta2 = -0.5, double phi2 = -2.0) {
  AodEvent event;
  event.objects.push_back(MakeMuon(pt1, q1));
  event.objects.push_back(MakeMuon(pt2, q2, eta2, phi2));
  event.objects.push_back(MakeMet(10.0));
  return event;
}

// ----------------------------------------------------------------- Parsing

TEST(LhadaParseTest, ParsesFullDocument) {
  auto parsed = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name(), "dimuon_search");
  ASSERT_EQ(parsed->objects().size(), 2u);
  EXPECT_EQ(parsed->objects()[0].name, "muons");
  EXPECT_EQ(parsed->objects()[0].base, ObjectType::kMuon);
  EXPECT_EQ(parsed->objects()[0].cuts.size(), 3u);
  ASSERT_EQ(parsed->cuts().size(), 3u);
  EXPECT_EQ(parsed->cuts()[2].requires_cuts.size(), 1u);
  EXPECT_EQ(parsed->cuts()[2].requires_cuts[0], "opposite_sign");
}

TEST(LhadaParseTest, SerializeParseRoundTrip) {
  auto parsed = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(parsed.ok());
  std::string canonical = parsed->Serialize();
  auto reparsed = AnalysisDescription::Parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // Canonical form is a fixed point.
  EXPECT_EQ(reparsed->Serialize(), canonical);
  EXPECT_EQ(reparsed->cuts().size(), parsed->cuts().size());
}

TEST(LhadaParseTest, RejectsStructuralErrors) {
  // Missing analysis name.
  EXPECT_FALSE(AnalysisDescription::Parse("cut x\n select met > 5\n").ok());
  // No cuts at all.
  EXPECT_FALSE(
      AnalysisDescription::Parse("analysis a\nobject o\n take muon\n").ok());
  // select outside any block.
  EXPECT_FALSE(
      AnalysisDescription::Parse("analysis a\nselect pt > 5\n").ok());
  // Unknown keyword.
  EXPECT_FALSE(AnalysisDescription::Parse("analysis a\nfrobnicate\n").ok());
  // Unknown base type.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nobject o\n take gluino\ncut c\n select "
                   "count(o) >= 1\n")
                   .ok());
  // Unknown attribute.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nobject o\n take muon\n select color > 1\n"
                   "cut c\n select count(o) >= 1\n")
                   .ok());
  // Bad operator.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nobject o\n take muon\n select pt >> 1\n"
                   "cut c\n select count(o) >= 1\n")
                   .ok());
}

TEST(LhadaParseTest, RejectsSemanticErrors) {
  // Unknown collection in a cut.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\ncut c\n select count(ghosts) >= 1\n")
                   .ok());
  // require of a later cut.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nobject o\n take muon\n"
                   "cut c1\n require c2\n select count(o) >= 1\n"
                   "cut c2\n select count(o) >= 1\n")
                   .ok());
  // Duplicate object name.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nobject o\n take muon\nobject o\n take jet\n"
                   "cut c\n select count(o) >= 1\n")
                   .ok());
  // require of itself.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\ncut c\n require c\n select met > 1\n")
                   .ok());
}

TEST(LhadaParseTest, ErrorsCarryLineNumbers) {
  auto bad = AnalysisDescription::Parse("analysis a\nobject o\n tke muon\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

// -------------------------------------------------------------- Evaluation

TEST(LhadaEvalTest, PassingEvent) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  // Two opposite-charge back-to-back 300 GeV muons: mass ~ 600 GeV.
  AodEvent event = DimuonEvent(300.0, 290.0, 1, -1);
  EventResult result = analysis->Evaluate(event);
  ASSERT_EQ(result.passed.size(), 3u);
  EXPECT_TRUE(result.passed[0]);
  EXPECT_TRUE(result.passed[1]);
  EXPECT_TRUE(result.passed[2]);
  EXPECT_TRUE(result.all_passed);
}

TEST(LhadaEvalTest, ObjectCutsFilterCandidates) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  // Second muon below the pt threshold: preselection fails.
  AodEvent event = DimuonEvent(300.0, 10.0, 1, -1);
  EventResult result = analysis->Evaluate(event);
  EXPECT_FALSE(result.passed[0]);
  EXPECT_FALSE(result.all_passed);
}

TEST(LhadaEvalTest, RequireChainsGate) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  // Same-sign pair: opposite_sign fails, so high_mass fails via require
  // even though the mass condition itself would pass.
  AodEvent event = DimuonEvent(300.0, 290.0, 1, 1);
  EventResult result = analysis->Evaluate(event);
  EXPECT_TRUE(result.passed[0]);
  EXPECT_FALSE(result.passed[1]);
  EXPECT_FALSE(result.passed[2]);
}

TEST(LhadaEvalTest, LowMassPairFailsOnlyMassCut) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  // Collinear soft-ish pair: low invariant mass.
  AodEvent event = DimuonEvent(60.0, 50.0, 1, -1, /*eta2=*/0.5, /*phi2=*/1.1);
  EventResult result = analysis->Evaluate(event);
  EXPECT_TRUE(result.passed[0]);
  EXPECT_TRUE(result.passed[1]);
  EXPECT_FALSE(result.passed[2]);
}

TEST(LhadaEvalTest, MetAndDphiConditions) {
  auto analysis = AnalysisDescription::Parse(R"(
analysis met_dphi
object jets
  take jet
  select pt > 30
cut sr
  select met > 50
  select count(jets) >= 2
  select dphi(jets[0], jets[1]) < 2.5
)");
  ASSERT_TRUE(analysis.ok()) << analysis.status();

  AodEvent event;
  PhysicsObject jet1;
  jet1.type = ObjectType::kJet;
  jet1.momentum = FourVector::FromPtEtaPhiM(100.0, 0.0, 0.0, 0.0);
  PhysicsObject jet2 = jet1;
  jet2.momentum = FourVector::FromPtEtaPhiM(80.0, 0.0, 1.0, 0.0);
  event.objects = {jet1, jet2, MakeMet(70.0)};
  EXPECT_TRUE(analysis->Evaluate(event).all_passed);

  event.objects.back() = MakeMet(20.0);  // met too small
  EXPECT_FALSE(analysis->Evaluate(event).all_passed);
}

TEST(LhadaEvalTest, MissingIndexFailsGracefully) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  AodEvent event;  // empty event
  EventResult result = analysis->Evaluate(event);
  EXPECT_FALSE(result.all_passed);
  for (bool passed : result.passed) EXPECT_FALSE(passed);
}

TEST(LhadaEvalTest, CutflowAccumulates) {
  auto analysis = AnalysisDescription::Parse(kDimuonSearch);
  ASSERT_TRUE(analysis.ok());
  std::vector<AodEvent> events = {
      DimuonEvent(300.0, 290.0, 1, -1),   // passes everything
      DimuonEvent(300.0, 290.0, 1, 1),    // fails opposite sign
      DimuonEvent(300.0, 10.0, 1, -1),    // fails preselection
      DimuonEvent(60.0, 50.0, 1, -1, 0.5, 1.1),  // fails high mass
  };
  Cutflow cutflow = analysis->Run(events);
  EXPECT_EQ(cutflow.events, 4u);
  ASSERT_EQ(cutflow.passed_counts.size(), 3u);
  EXPECT_EQ(cutflow.passed_counts[0], 3u);  // preselection
  EXPECT_EQ(cutflow.passed_counts[1], 2u);  // opposite sign
  EXPECT_EQ(cutflow.passed_counts[2], 1u);  // high mass
  std::string rendered = cutflow.Render();
  EXPECT_NE(rendered.find("preselection"), std::string::npos);
  EXPECT_NE(rendered.find("high_mass"), std::string::npos);
}

// -------------------------------------------------------------- Histograms

constexpr char kHistAnalysis[] = R"(
analysis with_plots
object muons
  take muon
  select pt > 20
cut dimuon
  select count(muons) >= 2
  hist mll mass(muons[0], muons[1]) 30 60 120
  hist lead_pt pt(muons[0]) 20 0 100
cut met_sel
  require dimuon
  select met < 100
  hist met_spec met 20 0 100
)";

TEST(LhadaHistTest, ParseAndSerializeHistLines) {
  auto analysis = AnalysisDescription::Parse(kHistAnalysis);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  ASSERT_EQ(analysis->cuts().size(), 2u);
  EXPECT_EQ(analysis->cuts()[0].hists.size(), 2u);
  EXPECT_EQ(analysis->cuts()[1].hists.size(), 1u);
  // Canonical round trip preserves the hist lines.
  auto reparsed = AnalysisDescription::Parse(analysis->Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->cuts()[0].hists.size(), 2u);
  EXPECT_EQ(reparsed->Serialize(), analysis->Serialize());
}

TEST(LhadaHistTest, HistogramsFillOnlyWhenCutPasses) {
  auto analysis = AnalysisDescription::Parse(kHistAnalysis);
  ASSERT_TRUE(analysis.ok());
  std::vector<AodEvent> events = {
      DimuonEvent(60.0, 50.0, 1, -1),   // passes both cuts
      DimuonEvent(60.0, 10.0, 1, -1),   // fails dimuon (soft muon)
  };
  auto output = analysis->RunWithHistograms(events);
  ASSERT_EQ(output.histograms.size(), 3u);
  const Histo1D* mll = nullptr;
  const Histo1D* met = nullptr;
  for (const Histo1D& histogram : output.histograms) {
    if (histogram.path() == "/with_plots/dimuon/mll") mll = &histogram;
    if (histogram.path() == "/with_plots/met_sel/met_spec") met = &histogram;
  }
  ASSERT_NE(mll, nullptr);
  ASSERT_NE(met, nullptr);
  EXPECT_EQ(mll->entries(), 1u);  // only the passing event fills
  EXPECT_EQ(met->entries(), 1u);
  // The met histogram recorded the event's MET of 10.
  EXPECT_DOUBLE_EQ(met->Mean(), 10.0);
}

TEST(LhadaHistTest, HistValidation) {
  // Unknown collection in a hist.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\ncut c\n select met > 0\n"
                   " hist x pt(ghosts[0]) 10 0 1\n")
                   .ok());
  // Bad range.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\ncut c\n select met > 0\n"
                   " hist x met 10 5 5\n")
                   .ok());
  // hist outside a cut block.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\nhist x met 10 0 1\ncut c\n select met > 0\n")
                   .ok());
  // Unknown quantity.
  EXPECT_FALSE(AnalysisDescription::Parse(
                   "analysis a\ncut c\n select met > 0\n"
                   " hist x sphericity(z[0]) 10 0 1\n")
                   .ok());
}

// ---------------------------------------------------------------- Database

TEST(LhadaDatabaseTest, SubmitAndRetrieve) {
  AnalysisDatabase database;
  auto name = database.Submit(kDimuonSearch);
  ASSERT_TRUE(name.ok()) << name.status();
  EXPECT_EQ(*name, "dimuon_search");
  EXPECT_TRUE(database.Has("dimuon_search"));
  EXPECT_EQ(database.size(), 1u);

  auto analysis = database.GetAnalysis("dimuon_search");
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(
      analysis->Evaluate(DimuonEvent(300.0, 290.0, 1, -1)).all_passed);
}

TEST(LhadaDatabaseTest, CanonicalStorage) {
  AnalysisDatabase database;
  // Messy formatting normalizes to the canonical document.
  std::string messy =
      "analysis   x\nobject  m\n   take   muon\ncut c\n   select  "
      "count(m)  >=  1\n";
  ASSERT_TRUE(database.Submit(messy).ok());
  auto document = database.GetDocument("x");
  ASSERT_TRUE(document.ok());
  auto reparsed = AnalysisDescription::Parse(*document);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Serialize(), *document);
}

TEST(LhadaDatabaseTest, ValidationAndDuplicates) {
  AnalysisDatabase database;
  EXPECT_FALSE(database.Submit("not an analysis").ok());
  ASSERT_TRUE(database.Submit(kDimuonSearch).ok());
  EXPECT_TRUE(database.Submit(kDimuonSearch).status().IsAlreadyExists());
  EXPECT_TRUE(database.GetDocument("nope").status().IsNotFound());
}

TEST(LhadaDatabaseTest, Search) {
  AnalysisDatabase database;
  ASSERT_TRUE(database.Submit(kDimuonSearch).ok());
  ASSERT_TRUE(database
                  .Submit("analysis monojet\nobject jets\n take jet\n"
                          "cut sr\n select met > 100\n select count(jets) "
                          ">= 1\n")
                  .ok());
  EXPECT_EQ(database.Search("dimuon").size(), 1u);
  EXPECT_EQ(database.Search("met").size(), 1u);       // document content
  EXPECT_EQ(database.Search("jet").size(), 2u);       // both use jets
  EXPECT_TRUE(database.Search("susy").empty());
  EXPECT_EQ(database.Names().size(), 2u);
}

}  // namespace
}  // namespace lhada
}  // namespace daspos
