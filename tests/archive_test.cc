// Tests for the preservation archive: content addressing, deposits,
// retrieval with fixity, audits with injected corruption, and format
// migration with lineage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "archive/archive.h"
#include "support/compress.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "archive/resilient_store.h"
#include "support/fault.h"
#include "support/metrics_registry.h"
#include "support/retry.h"
#include "support/sha256.h"
#include "support/threadpool.h"

namespace daspos {
namespace {

/// Digest-cache counters now live in the process-wide registry, so tests
/// assert on before/after deltas instead of per-store absolute values.
struct CacheCounterProbe {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;

  static CacheCounterProbe Read() {
    const MetricsRegistry& registry = MetricsRegistry::Global();
    CacheCounterProbe probe{};
    probe.hits =
        registry.CounterValue(metric_names::kArchiveCacheHitsTotal);
    probe.misses =
        registry.CounterValue(metric_names::kArchiveCacheMissesTotal);
    probe.invalidations = registry.CounterValue(
        metric_names::kArchiveCacheInvalidationsTotal);
    return probe;
  }

  uint64_t HitsSince() const { return Read().hits - hits; }
  uint64_t MissesSince() const { return Read().misses - misses; }
  uint64_t InvalidationsSince() const {
    return Read().invalidations - invalidations;
  }
};

// ------------------------------------------------------------ ObjectStore

TEST(MemoryObjectStoreTest, PutGetContentAddressed) {
  MemoryObjectStore store;
  auto id = store.Put("hello preservation");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, Sha256::HashHex("hello preservation"));
  EXPECT_TRUE(store.Has(*id));
  EXPECT_EQ(*store.Get(*id), "hello preservation");
  EXPECT_TRUE(store.Get("ff").status().IsNotFound());
}

TEST(MemoryObjectStoreTest, DeduplicatesIdenticalContent) {
  MemoryObjectStore store;
  auto id1 = store.Put("same bytes");
  auto id2 = store.Put("same bytes");
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(store.Ids().size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 10u);
}

TEST(MemoryObjectStoreTest, RePutHealsCorruption) {
  MemoryObjectStore store;
  auto id = store.Put("precious bytes");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.CorruptForTesting(*id, 2).ok());
  ASSERT_TRUE(store.Verify(*id).IsCorruption());
  auto id2 = store.Put("precious bytes");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);
  EXPECT_TRUE(store.Verify(*id).ok());
  EXPECT_EQ(*store.Get(*id), "precious bytes");
}

TEST(MemoryObjectStoreTest, VerifyCatchesCorruption) {
  MemoryObjectStore store;
  auto id = store.Put("precious data");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.Verify(*id).ok());
  ASSERT_TRUE(store.CorruptForTesting(*id, 3).ok());
  EXPECT_TRUE(store.Verify(*id).IsCorruption());
  EXPECT_TRUE(store.Verify("00ff").IsNotFound());
}

class FileObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("daspos_fos_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::string root_;
};

TEST_F(FileObjectStoreTest, PutGetVerifyOnDisk) {
  FileObjectStore store(root_);
  auto id = store.Put("on-disk object");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.Has(*id));
  EXPECT_EQ(*store.Get(*id), "on-disk object");
  EXPECT_TRUE(store.Verify(*id).ok());
  ASSERT_EQ(store.Ids().size(), 1u);
  EXPECT_EQ(store.Ids()[0], *id);
  EXPECT_EQ(store.TotalBytes(), 14u);
}

TEST_F(FileObjectStoreTest, OnDiskCorruptionDetected) {
  FileObjectStore store(root_);
  auto id = store.Put("will be damaged");
  ASSERT_TRUE(id.ok());
  // Damage the backing file directly.
  std::string path = root_ + "/" + id->substr(0, 2) + "/" + id->substr(2);
  std::ofstream(path, std::ios::binary) << "damaged";
  EXPECT_TRUE(store.Verify(*id).IsCorruption());
}

// ----------------------------------------------------------------- Archive

SubmissionPackage MakeSubmission() {
  SubmissionPackage sip;
  sip.title = "Z->mumu analysis preservation";
  sip.creator = "daspos-tests";
  sip.description = "AOD sample + analysis configuration";
  sip.keywords = {"Z boson", "dimuon", "preservation"};
  sip.context = Json::Object();
  sip.context["experiment"] = "CMS";
  sip.files.push_back({"data/aod.dat", "application/x-daspos-container",
                       std::string(500, 'd')});
  sip.files.push_back({"config/analysis.json", "application/json",
                       R"({"cut": 25.0})"});
  return sip;
}

TEST(ArchiveTest, DepositAndRetrieve) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto id = archive.Deposit(MakeSubmission());
  ASSERT_TRUE(id.ok());

  auto package = archive.Retrieve(*id);
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package->content.title, "Z->mumu analysis preservation");
  EXPECT_EQ(package->content.keywords.size(), 3u);
  EXPECT_EQ(package->content.context.Get("experiment").as_string(), "CMS");
  ASSERT_EQ(package->content.files.size(), 2u);
  EXPECT_EQ(package->content.files[0].logical_name, "data/aod.dat");
  EXPECT_EQ(package->content.files[0].bytes.size(), 500u);
  EXPECT_EQ(package->content.files[1].bytes, R"({"cut": 25.0})");
}

TEST(ArchiveTest, DepositValidation) {
  MemoryObjectStore store;
  Archive archive(&store);
  SubmissionPackage no_title = MakeSubmission();
  no_title.title.clear();
  EXPECT_TRUE(archive.Deposit(no_title).status().IsInvalidArgument());
  SubmissionPackage no_files = MakeSubmission();
  no_files.files.clear();
  EXPECT_TRUE(archive.Deposit(no_files).status().IsInvalidArgument());
  SubmissionPackage unnamed = MakeSubmission();
  unnamed.files[0].logical_name.clear();
  EXPECT_TRUE(archive.Deposit(unnamed).status().IsInvalidArgument());
}

TEST(ArchiveTest, IdenticalRedepositIsIdempotent) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto id1 = archive.Deposit(MakeSubmission());
  auto id2 = archive.Deposit(MakeSubmission());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(archive.Holdings().size(), 1u);
}

TEST(ArchiveTest, HoldingsSummarize) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(archive.Deposit(MakeSubmission()).ok());
  SubmissionPackage second = MakeSubmission();
  second.title = "second deposit";
  second.files[0].bytes = std::string(100, 'x');
  ASSERT_TRUE(archive.Deposit(second).ok());

  auto holdings = archive.Holdings();
  ASSERT_EQ(holdings.size(), 2u);
  EXPECT_EQ(holdings[0].deposit_sequence, 1u);
  EXPECT_EQ(holdings[1].deposit_sequence, 2u);
  EXPECT_EQ(holdings[1].title, "second deposit");
  EXPECT_EQ(holdings[0].file_count, 2u);
  EXPECT_EQ(holdings[0].total_bytes, 500u + 13u);  // data + json config
  EXPECT_TRUE(holdings[0].migrated_from.empty());
}

TEST(ArchiveTest, FixityAuditCleanThenCorrupted) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto id = archive.Deposit(MakeSubmission());
  ASSERT_TRUE(id.ok());

  FixityReport clean = archive.AuditFixity();
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.objects_checked, 3u);  // manifest + 2 files

  // Corrupt the large data object.
  std::string data_id = Sha256::HashHex(std::string(500, 'd'));
  ASSERT_TRUE(store.CorruptForTesting(data_id, 100).ok());
  FixityReport dirty = archive.AuditFixity();
  EXPECT_FALSE(dirty.clean());
  ASSERT_EQ(dirty.corrupted_objects.size(), 1u);
  EXPECT_EQ(dirty.corrupted_objects[0], data_id);

  // Retrieval also refuses to hand out damaged content.
  EXPECT_TRUE(archive.Retrieve(*id).status().IsCorruption());
}

TEST(ArchiveTest, MigrationCreatesLinkedPackage) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto original_id = archive.Deposit(MakeSubmission());
  ASSERT_TRUE(original_id.ok());

  // Migrate: uppercase the json config (stand-in for a format conversion).
  auto migrated_id = archive.Migrate(
      *original_id,
      [](const PackageFile& file) -> Result<PackageFile> {
        PackageFile out = file;
        if (file.media_type == "application/json") {
          out.logical_name = file.logical_name + ".v2";
        }
        return out;
      },
      "config format v1 -> v2");
  ASSERT_TRUE(migrated_id.ok());
  EXPECT_NE(*migrated_id, *original_id);

  auto holdings = archive.Holdings();
  ASSERT_EQ(holdings.size(), 2u);
  EXPECT_EQ(holdings[1].migrated_from, *original_id);

  // Both packages remain retrievable (originals retained).
  EXPECT_TRUE(archive.Retrieve(*original_id).ok());
  auto migrated = archive.Retrieve(*migrated_id);
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated->content.files[1].logical_name,
            "config/analysis.json.v2");
}

TEST(ArchiveTest, CompressionMigration) {
  // A real format migration: compress every payload; the original stays
  // retrievable, the migrated package round-trips through Decompress.
  MemoryObjectStore store;
  Archive archive(&store);
  SubmissionPackage sip = MakeSubmission();
  sip.files[0].bytes = std::string(4000, 'd') + "tail";
  auto original_id = archive.Deposit(sip);
  ASSERT_TRUE(original_id.ok());

  auto migrated_id = archive.Migrate(
      *original_id,
      [](const PackageFile& file) -> Result<PackageFile> {
        PackageFile out = file;
        out.bytes = Compress(file.bytes);
        out.media_type = file.media_type + "+dz01";
        return out;
      },
      "store compressed (DZ01)");
  ASSERT_TRUE(migrated_id.ok());

  auto migrated = archive.Retrieve(*migrated_id);
  ASSERT_TRUE(migrated.ok());
  auto original = archive.Retrieve(*original_id);
  ASSERT_TRUE(original.ok());
  for (size_t i = 0; i < migrated->content.files.size(); ++i) {
    const PackageFile& file = migrated->content.files[i];
    EXPECT_NE(file.media_type.find("+dz01"), std::string::npos);
    auto restored = Decompress(file.bytes);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, original->content.files[i].bytes);
  }
  // The compressed data file is smaller than the original.
  EXPECT_LT(migrated->content.files[0].bytes.size(),
            original->content.files[0].bytes.size());
}

TEST(ArchiveTest, MigrationTransformFailurePropagates) {
  MemoryObjectStore store;
  Archive archive(&store);
  auto id = archive.Deposit(MakeSubmission());
  ASSERT_TRUE(id.ok());
  auto failed = archive.Migrate(
      *id,
      [](const PackageFile&) -> Result<PackageFile> {
        return Status::Unimplemented("no converter for this media type");
      },
      "doomed");
  EXPECT_TRUE(failed.status().IsUnimplemented());
  EXPECT_EQ(archive.Holdings().size(), 1u);
}

TEST(ArchiveTest, RecoverCatalogFromBareStore) {
  // A fresh Archive over an existing store re-adopts all packages — the
  // long-lived-archive scenario (the store is the durable layer).
  MemoryObjectStore store;
  {
    Archive original(&store);
    ASSERT_TRUE(original.Deposit(MakeSubmission()).ok());
    SubmissionPackage second = MakeSubmission();
    second.title = "second";
    ASSERT_TRUE(original.Deposit(second).ok());
  }
  Archive fresh(&store);
  EXPECT_TRUE(fresh.Holdings().empty());
  auto found = fresh.RecoverCatalog();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 2u);
  auto holdings = fresh.Holdings();
  ASSERT_EQ(holdings.size(), 2u);
  // Recovery is idempotent.
  ASSERT_TRUE(fresh.RecoverCatalog().ok());
  EXPECT_EQ(fresh.Holdings().size(), 2u);
  // Every recovered package is retrievable and fixity-clean.
  for (const HoldingSummary& holding : holdings) {
    EXPECT_TRUE(fresh.Retrieve(holding.archive_id).ok());
  }
  EXPECT_TRUE(fresh.AuditFixity().clean());
}

TEST(ArchiveTest, RetrieveUnknownIdFails) {
  MemoryObjectStore store;
  Archive archive(&store);
  EXPECT_TRUE(archive.Retrieve("0123abcd").status().IsNotFound());
}

TEST(ArchiveTest, FullLifecycleOverPackBackend) {
  // The archive layer is backend-agnostic: deposit, retrieve, catalog
  // recovery across a process restart, and a fixity audit all behave
  // identically when the store is packfiles instead of loose files.
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("daspos_archive_pack_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  std::string archive_id;
  {
    PackObjectStore store(root);
    Archive archive(&store);
    auto id = archive.Deposit(MakeSubmission());
    ASSERT_TRUE(id.ok());
    archive_id = *id;
    auto package = archive.Retrieve(archive_id);
    ASSERT_TRUE(package.ok());
    EXPECT_EQ(package->content.files.size(), MakeSubmission().files.size());
    ASSERT_TRUE(store.Flush().ok());
  }
  // Restart: a fresh Archive over the reopened (sealed, mmap-served) pack.
  PackObjectStore store(root);
  Archive fresh(&store);
  auto found = fresh.RecoverCatalog();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
  auto package = fresh.Retrieve(archive_id);
  ASSERT_TRUE(package.ok());
  for (const PackageFile& file : package->content.files) {
    EXPECT_EQ(Sha256::HashHex(file.bytes),
              Sha256::HashHex(MakeSubmission()
                                  .files[&file - package->content.files.data()]
                                  .bytes));
  }
  FixityReport audit = fresh.AuditFixity();
  EXPECT_TRUE(audit.clean());
  EXPECT_GT(audit.objects_checked, 0u);
  std::filesystem::remove_all(root);
}

// ------------------------------------------------- Key validation (PR 3) --

TEST(ObjectIdValidationTest, AcceptsCanonicalIds) {
  EXPECT_TRUE(ValidateObjectId(Sha256::HashHex("anything")).ok());
}

TEST(ObjectIdValidationTest, RejectsMalformedIds) {
  EXPECT_TRUE(ValidateObjectId("").IsInvalidArgument());
  EXPECT_TRUE(ValidateObjectId("../../etc/passwd").IsInvalidArgument());
  EXPECT_TRUE(ValidateObjectId("0123abcd").IsInvalidArgument());  // too short
  std::string upper = Sha256::HashHex("x");
  upper[0] = 'A';
  EXPECT_TRUE(ValidateObjectId(upper).IsInvalidArgument());
  std::string slashed = Sha256::HashHex("x");
  slashed[10] = '/';
  EXPECT_TRUE(ValidateObjectId(slashed).IsInvalidArgument());
}

TEST_F(FileObjectStoreTest, MissingRootEnumeratesEmptyWithoutWalkErrors) {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal);
  FileObjectStore store(root_);  // nothing was ever Put: legitimately empty
  EXPECT_TRUE(store.Ids().empty());
  EXPECT_EQ(store.TotalBytes(), 0u);
  EXPECT_TRUE(store.QuarantinedIds().empty());
  EXPECT_EQ(registry.CounterValue(metric_names::kArchiveWalkErrorsTotal),
            before);
}

TEST_F(FileObjectStoreTest, UnreadableRootCountsWalkErrors) {
  // A root that exists but cannot be iterated (here: a regular file) must
  // never enumerate as "empty, 0 bytes" silently — that would let a fixity
  // audit of a damaged store pass vacuously.
  {
    std::ofstream out(root_);
    out << "not a directory";
  }
  const MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal);
  FileObjectStore store(root_);
  EXPECT_TRUE(store.Ids().empty());
  const uint64_t after_ids =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal);
  EXPECT_GE(after_ids - before, 1u);
  EXPECT_EQ(store.TotalBytes(), 0u);
  EXPECT_GE(registry.CounterValue(metric_names::kArchiveWalkErrorsTotal) -
                after_ids,
            1u);
}

TEST_F(FileObjectStoreTest, RecoverCatalogOverUnreadableStoreIsNotVacuous) {
  {
    std::ofstream out(root_);
    out << "not a directory";
  }
  const MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.CounterValue(metric_names::kArchiveWalkErrorsTotal);
  FileObjectStore store(root_);
  Archive archive(&store);
  // Since the streaming-walk rework, recovery REFUSES over an unreadable
  // store instead of certifying an empty catalog: "found nothing" and
  // "could not look" are now different outcomes by construction.
  auto recovered = archive.RecoverCatalog();
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsIOError());
  EXPECT_GE(registry.CounterValue(metric_names::kArchiveWalkErrorsTotal) -
                before,
            1u);
}

TEST_F(FileObjectStoreTest, KeyedOpsRejectTraversalIds) {
  FileObjectStore store(root_);
  ASSERT_TRUE(store.Put("guarded").ok());
  // A traversal id must be rejected up front, never resolved to a path.
  EXPECT_TRUE(store.Get("../../etc/passwd").status().IsInvalidArgument());
  EXPECT_TRUE(store.Verify("../secret").IsInvalidArgument());
  EXPECT_FALSE(store.Has("../secret"));
  EXPECT_TRUE(store.Get("").status().IsInvalidArgument());
}

TEST_F(FileObjectStoreTest, AtomicPutLeavesNoTempFiles) {
  FileObjectStore store(root_);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Put("payload " + std::to_string(i)).ok());
  }
  size_t stray = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().find("tmp.") != std::string::npos) {
      ++stray;
    }
  }
  EXPECT_EQ(stray, 0u);
  EXPECT_EQ(store.Ids().size(), 8u);
}

// --------------------------------------------- Quarantine on read (PR 3) --

TEST_F(FileObjectStoreTest, CorruptBlobIsQuarantinedOnRead) {
  FileObjectStore store(root_);
  auto id = store.Put("pristine bytes");
  ASSERT_TRUE(id.ok());
  // Rot the backing file behind the store's back.
  std::string path = root_ + "/" + id->substr(0, 2) + "/" + id->substr(2);
  std::ofstream(path, std::ios::binary) << "rotten";
  auto got = store.Get(*id);
  EXPECT_TRUE(got.status().IsCorruption());
  EXPECT_NE(got.status().message().find("quarantine"), std::string::npos);
  // The rotten copy moved aside: the store no longer claims the object...
  EXPECT_FALSE(store.Has(*id));
  EXPECT_TRUE(store.Ids().empty());
  EXPECT_EQ(store.TotalBytes(), 0u);
  // ...but keeps the evidence for forensics.
  ASSERT_EQ(store.QuarantinedIds().size(), 1u);
  EXPECT_EQ(store.QuarantinedIds()[0], *id);
  // Re-depositing the original bytes heals the store in place.
  auto healed = store.Put("pristine bytes");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, *id);
  EXPECT_EQ(*store.Get(*id), "pristine bytes");
}

// ------------------------------------------ Resilient decorators (PR 3) --

TEST(ResilientStoreTest, FaultyStoreInjectsTransientFailures) {
  MemoryObjectStore backend;
  auto spec = FaultSpec::Parse("nth=1,3");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore store(&backend, &plan);
  EXPECT_TRUE(store.Put("x").status().IsIOError());   // op 1: injected
  auto id = store.Put("x");                           // op 2: passes through
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.Get(*id).status().IsIOError());   // op 3: injected
  EXPECT_EQ(*store.Get(*id), "x");                    // op 4: passes through
  EXPECT_EQ(plan.injected(), 2u);
}

TEST(ResilientStoreTest, RetryingOverFaultyConvergesToFaultFree) {
  // rate=0.4 over a seeded RNG: the stacked decorators must converge to the
  // exact fault-free behaviour as long as retries outlast the bad luck.
  MemoryObjectStore backend;
  auto spec = FaultSpec::Parse("seed=7,rate=0.4");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore faulty(&backend, &plan);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.backoff_ms = 0.0;
  policy.sleeper = [](double) {};
  RetryingObjectStore store(&faulty, policy);

  MemoryObjectStore reference;
  for (int i = 0; i < 20; ++i) {
    std::string blob = "chaos blob " + std::to_string(i);
    auto id = store.Put(blob);
    ASSERT_TRUE(id.ok());
    auto want = reference.Put(blob);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(*id, *want);
    EXPECT_EQ(*store.Get(*id), blob);
    EXPECT_TRUE(store.Verify(*id).ok());
  }
  EXPECT_GT(plan.injected(), 0u);
  EXPECT_EQ(store.Ids().size(), reference.Ids().size());
  EXPECT_EQ(store.TotalBytes(), reference.TotalBytes());
}

TEST(ResilientStoreTest, PermanentErrorsAreNotRetried) {
  MemoryObjectStore backend;
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_ms = 0.0;
  int sleeps = 0;
  policy.sleeper = [&](double) { ++sleeps; };
  RetryingObjectStore store(&backend, policy);
  EXPECT_TRUE(store.Get(Sha256::HashHex("absent")).status().IsNotFound());
  EXPECT_EQ(sleeps, 0);  // NotFound is permanent: no backoff consumed
}

// ------------------------------------------ Verified-digest cache (PR 4) --

class DigestCacheTest : public FileObjectStoreTest {
 protected:
  std::string BlobPath(const std::string& id) const {
    return root_ + "/" + id.substr(0, 2) + "/" + id.substr(2);
  }
};

TEST_F(DigestCacheTest, WarmGetSkipsRehash) {
  FileObjectStore store(root_);
  auto id = store.Put("cached blob");
  ASSERT_TRUE(id.ok());
  // Cold read hashes and records the fingerprint; warm reads hit.
  CacheCounterProbe probe = CacheCounterProbe::Read();
  EXPECT_EQ(*store.Get(*id), "cached blob");
  EXPECT_EQ(probe.MissesSince(), 1u);
  EXPECT_EQ(probe.HitsSince(), 0u);
  EXPECT_EQ(*store.Get(*id), "cached blob");
  EXPECT_EQ(*store.Get(*id), "cached blob");
  EXPECT_EQ(probe.MissesSince(), 1u);
  EXPECT_EQ(probe.HitsSince(), 2u);
}

TEST_F(DigestCacheTest, VerifySuccessWarmsTheCache) {
  FileObjectStore store(root_);
  auto id = store.Put("verified blob");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Verify(*id).ok());
  CacheCounterProbe probe = CacheCounterProbe::Read();
  EXPECT_EQ(*store.Get(*id), "verified blob");
  EXPECT_EQ(probe.HitsSince(), 1u);
  EXPECT_EQ(probe.MissesSince(), 0u);
}

TEST_F(DigestCacheTest, RotAfterCachingForcesRehashAndQuarantine) {
  // The acceptance property: a blob modified AFTER its digest was cached
  // must still be re-hashed on the next Get (stat mismatch drops the
  // entry), caught, and quarantined.
  FileObjectStore store(root_);
  auto id = store.Put("pristine bytes");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*store.Get(*id), "pristine bytes");  // cache is now warm
  CacheCounterProbe probe = CacheCounterProbe::Read();
  std::ofstream(BlobPath(*id), std::ios::binary) << "rotten payload!!";
  auto got = store.Get(*id);
  EXPECT_TRUE(got.status().IsCorruption());
  EXPECT_NE(got.status().message().find("quarantine"), std::string::npos);
  ASSERT_EQ(store.QuarantinedIds().size(), 1u);
  EXPECT_EQ(store.QuarantinedIds()[0], *id);
  EXPECT_GE(probe.InvalidationsSince(), 1u);
  // The stale entry is gone: a healed copy starts cold again.
  auto healed = store.Put("pristine bytes");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*store.Get(*id), "pristine bytes");
}

TEST_F(DigestCacheTest, SizePreservingRotWithRestoredMtimeStillFailsVerify) {
  // A stat fingerprint cannot distinguish a same-size rewrite whose mtime
  // was restored — which is exactly why Verify (the audit authority) never
  // consults the cache and always hashes the full file.
  FileObjectStore store(root_);
  auto id = store.Put("abcdefghijklmnop");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Verify(*id).ok());  // warms the cache
  std::string path = BlobPath(*id);
  auto mtime = std::filesystem::last_write_time(path);
  std::ofstream(path, std::ios::binary) << "ABCDEFGHIJKLMNOP";  // same size
  std::filesystem::last_write_time(path, mtime);
  EXPECT_TRUE(store.Verify(*id).IsCorruption());
  ASSERT_EQ(store.QuarantinedIds().size(), 1u);
}

TEST_F(DigestCacheTest, PutDropsStaleCacheEntry) {
  FileObjectStore store(root_);
  auto id = store.Put("volatile blob");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*store.Get(*id), "volatile blob");  // cache warm
  // The blob vanishes behind the store's back; its cache entry is stale.
  std::filesystem::remove(BlobPath(*id));
  EXPECT_TRUE(store.Get(*id).status().IsNotFound());
  // Re-publishing the id must drop the stale entry so the fresh copy is
  // re-verified from scratch before it can hit.
  CacheCounterProbe before_put = CacheCounterProbe::Read();
  ASSERT_TRUE(store.Put("volatile blob").ok());
  EXPECT_GE(before_put.InvalidationsSince(), 1u);
  CacheCounterProbe before_get = CacheCounterProbe::Read();
  EXPECT_EQ(*store.Get(*id), "volatile blob");
  EXPECT_EQ(before_get.MissesSince(), 1u);
}

// ---------------------------------------------------- Batched ingest --

TEST(PutBatchTest, MemoryStoreDefaultsToSequentialPuts) {
  MemoryObjectStore store;
  std::vector<std::string_view> blobs = {"alpha", "beta", "gamma"};
  auto ids = store.PutBatch(blobs);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  EXPECT_EQ((*ids)[0], Sha256::HashHex("alpha"));
  EXPECT_EQ((*ids)[1], Sha256::HashHex("beta"));
  EXPECT_EQ((*ids)[2], Sha256::HashHex("gamma"));
}

TEST_F(FileObjectStoreTest, PutBatchStoresAllBlobsInInputOrder) {
  FileObjectStore store(root_);
  std::vector<std::string> payloads;
  std::vector<std::string_view> blobs;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back("batched payload " + std::to_string(i));
  }
  for (const std::string& payload : payloads) blobs.push_back(payload);

  ThreadPool pool(4);
  auto ids = store.PutBatch(blobs, &pool);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ((*ids)[i], Sha256::HashHex(payloads[i]));
    EXPECT_EQ(*store.Get((*ids)[i]), payloads[i]);
  }
  EXPECT_EQ(store.Ids().size(), payloads.size());
}

TEST_F(FileObjectStoreTest, PutBatchSerialAndParallelAgree) {
  std::vector<std::string> payloads;
  for (int i = 0; i < 16; ++i) {
    payloads.push_back(std::string(static_cast<size_t>(100 + i), 'x') +
                       std::to_string(i));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());

  FileObjectStore serial_store(root_ + "_serial");
  auto serial = serial_store.PutBatch(blobs, nullptr);
  ThreadPool pool(8);
  FileObjectStore parallel_store(root_ + "_parallel");
  auto parallel = parallel_store.PutBatch(blobs, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
  std::filesystem::remove_all(root_ + "_serial");
  std::filesystem::remove_all(root_ + "_parallel");
}

TEST(PutBatchTest, DecoratedStoresInheritBatchSemantics) {
  // RetryingObjectStore does not override PutBatch; the base implementation
  // routes through its (retrying) Put, so batched ingest composes with the
  // resilience decorators.
  MemoryObjectStore backend;
  auto spec = FaultSpec::Parse("nth=1");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore faulty(&backend, &plan);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_ms = 0.0;
  policy.sleeper = [](double) {};
  RetryingObjectStore store(&faulty, policy);
  std::vector<std::string_view> blobs = {"one", "two"};
  auto ids = store.PutBatch(blobs);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ((*ids)[0], Sha256::HashHex("one"));
  EXPECT_EQ(*store.Get((*ids)[0]), "one");
}

TEST_F(FileObjectStoreTest, ParallelDepositAndAuditMatchSerial) {
  auto make_package = [] {
    SubmissionPackage package;
    package.title = "parallel deposit";
    for (int i = 0; i < 12; ++i) {
      PackageFile file;
      file.logical_name = "file" + std::to_string(i) + ".dat";
      file.bytes = std::string(static_cast<size_t>(50 * (i + 1)), 'd');
      package.files.push_back(std::move(file));
    }
    return package;
  };

  FileObjectStore serial_store(root_ + "_s");
  Archive serial_archive(&serial_store);
  auto serial_id = serial_archive.Deposit(make_package());
  ASSERT_TRUE(serial_id.ok());

  ThreadPool pool(4);
  FileObjectStore parallel_store(root_ + "_p");
  Archive parallel_archive(&parallel_store);
  auto parallel_id = parallel_archive.Deposit(make_package(), &pool);
  ASSERT_TRUE(parallel_id.ok());
  // Content addressing makes the agreement total: same SIP -> same AIP id.
  EXPECT_EQ(*serial_id, *parallel_id);

  FixityReport serial_audit = serial_archive.AuditFixity();
  FixityReport parallel_audit = parallel_archive.AuditFixity(&pool);
  EXPECT_TRUE(serial_audit.clean());
  EXPECT_TRUE(parallel_audit.clean());
  EXPECT_EQ(parallel_audit.objects_checked, serial_audit.objects_checked);
  std::filesystem::remove_all(root_ + "_s");
  std::filesystem::remove_all(root_ + "_p");
}

// ------------------------------------ Decorator PutBatch overrides (PR 8) --

TEST(PutBatchTest, FaultyStoreInjectsPerBlobWithDeterministicOrdinals) {
  // The override consumes one "put" slot per blob in input order, so a
  // scripted nth=2 always hits the second blob — at any pool size.
  MemoryObjectStore backend;
  auto spec = FaultSpec::Parse("nth=2");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore store(&backend, &plan);
  ThreadPool pool(4);
  std::vector<std::string_view> blobs = {"one", "two", "three"};
  auto ids = store.PutBatch(blobs, &pool);
  EXPECT_TRUE(ids.status().IsIOError());
  // Blob 1 landed before the injected failure on blob 2 stopped the batch.
  EXPECT_TRUE(backend.Has(Sha256::HashHex("one")));
  EXPECT_FALSE(backend.Has(Sha256::HashHex("two")));
  EXPECT_EQ(plan.injected(), 1u);
}

TEST(PutBatchTest, RetryingStoreRetriesEachBatchSlotIndependently) {
  // Each blob runs its own retry loop: a batch with more blobs than one
  // retry budget still converges because failures are per-object.
  MemoryObjectStore backend;
  auto spec = FaultSpec::Parse("seed=11,rate=0.5");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore faulty(&backend, &plan);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.backoff_ms = 0.0;
  policy.sleeper = [](double) {};
  RetryingObjectStore store(&faulty, policy);
  std::vector<std::string> payloads;
  for (int i = 0; i < 24; ++i) {
    payloads.push_back("retry batch blob " + std::to_string(i));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());
  ThreadPool pool(4);
  auto ids = store.PutBatch(blobs, &pool);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ((*ids)[i], Sha256::HashHex(payloads[i]));
    EXPECT_EQ(*backend.Get((*ids)[i]), payloads[i]);
  }
  EXPECT_GT(plan.injected(), 0u);
}

// ------------------------------------- Quarantine hardening (PR 8) --

TEST_F(FileObjectStoreTest, RepeatQuarantinePreservesForensicCopies) {
  FileObjectStore store(root_);
  auto id = store.Put("twice rotted");
  ASSERT_TRUE(id.ok());
  std::string path = root_ + "/" + id->substr(0, 2) + "/" + id->substr(2);

  std::ofstream(path, std::ios::binary) << "rot A";
  EXPECT_TRUE(store.Get(*id).status().IsCorruption());
  ASSERT_TRUE(store.Put("twice rotted").ok());  // heal
  std::ofstream(path, std::ios::binary) << "rot B";
  EXPECT_TRUE(store.Get(*id).status().IsCorruption());

  // Both rot events kept their evidence: <id> and <id>.1.
  namespace fs = std::filesystem;
  EXPECT_TRUE(fs::exists(fs::path(root_) / "quarantine" / *id));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "quarantine" / (*id + ".1")));
  // QuarantinedIds reports the object once, under its base id.
  ASSERT_EQ(store.QuarantinedIds().size(), 1u);
  EXPECT_EQ(store.QuarantinedIds()[0], *id);
}

TEST_F(FileObjectStoreTest, FailedQuarantineMoveCountsErrors) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t errors_before =
      registry.CounterValue(metric_names::kArchiveQuarantineErrorsTotal);
  FileObjectStore store(root_);
  auto id = store.Put("blob that cannot be moved aside");
  ASSERT_TRUE(id.ok());
  std::string path = root_ + "/" + id->substr(0, 2) + "/" + id->substr(2);
  std::ofstream(path, std::ios::binary) << "rot";
  // A regular file where the quarantine directory should be makes both
  // create_directories and the rename fail.
  std::ofstream(root_ + "/quarantine", std::ios::binary) << "in the way";
  EXPECT_TRUE(store.Get(*id).status().IsCorruption());
  EXPECT_GT(registry.CounterValue(metric_names::kArchiveQuarantineErrorsTotal),
            errors_before);
  // The rotted blob stayed in place (the move failed) — it must still be
  // invisible to Get, which keeps failing fixity.
  EXPECT_TRUE(store.Get(*id).status().IsCorruption());
}

}  // namespace
}  // namespace daspos
