// Deterministic fuzz tests: every parser in the preservation stack must
// survive arbitrary corruption of its input with a typed error — never a
// crash, hang, or silent success. Preserved data WILL rot; the first line
// of defence is that readers fail loudly and safely.
#include <gtest/gtest.h>

#include <string>

#include "conditions/global_tag.h"
#include "conditions/snapshot.h"
#include "conditions/store.h"
#include "detsim/calib.h"
#include "event/truth.h"
#include "hist/yoda_io.h"
#include "level2/dialects.h"
#include "lhada/lhada.h"
#include "mc/generator.h"
#include "serialize/container.h"
#include "serialize/json.h"
#include "support/compress.h"
#include "support/rng.h"
#include "tiers/dataset.h"

namespace daspos {
namespace {

/// Applies one random mutation: flip a byte, truncate, duplicate a slice,
/// or insert junk.
std::string Mutate(const std::string& input, Rng* rng) {
  if (input.empty()) return input;
  std::string out = input;
  switch (rng->UniformInt(4)) {
    case 0: {  // byte flip
      size_t pos = static_cast<size_t>(rng->UniformInt(out.size()));
      out[pos] = static_cast<char>(
          static_cast<unsigned char>(out[pos]) ^ (1u << rng->UniformInt(8)));
      break;
    }
    case 1: {  // truncate
      out.resize(static_cast<size_t>(rng->UniformInt(out.size())));
      break;
    }
    case 2: {  // duplicate a slice
      size_t a = static_cast<size_t>(rng->UniformInt(out.size()));
      size_t len = static_cast<size_t>(
          rng->UniformInt(std::min<uint64_t>(64, out.size() - a) + 1));
      out.insert(a, out.substr(a, len));
      break;
    }
    default: {  // insert junk bytes
      size_t pos = static_cast<size_t>(rng->UniformInt(out.size()));
      std::string junk;
      for (int i = 0; i < 8; ++i) {
        junk.push_back(static_cast<char>(rng->UniformInt(256)));
      }
      out.insert(pos, junk);
    }
  }
  return out;
}

std::string RandomBytes(size_t n, Rng* rng) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng->UniformInt(256)));
  }
  return out;
}

constexpr int kRounds = 400;

TEST(FuzzTest, JsonParserNeverCrashes) {
  Rng rng(101);
  std::string seed = R"({"a":[1,2,{"b":"text A"}],"c":null,"d":1.5e3})";
  for (int i = 0; i < kRounds; ++i) {
    auto result = Json::Parse(Mutate(seed, &rng));
    // Either parses or errors; both are fine — just don't crash.
    if (result.ok()) {
      (void)result->Dump();
    }
  }
  for (int i = 0; i < kRounds; ++i) {
    (void)Json::Parse(RandomBytes(1 + rng.UniformInt(200), &rng));
  }
}

TEST(FuzzTest, ContainerOpenNeverCrashesAndNeverLies) {
  Rng rng(102);
  GeneratorConfig config;
  config.seed = 9;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "fuzz";
  std::string pristine = WriteGenDataset(info, generator.GenerateMany(10));
  int accepted_mutants = 0;
  for (int i = 0; i < kRounds; ++i) {
    std::string mutant = Mutate(pristine, &rng);
    auto reader = ContainerReader::Open(mutant);
    if (reader.ok() && mutant != pristine) ++accepted_mutants;
  }
  // The SHA-256 footer makes accepting a damaged container essentially
  // impossible.
  EXPECT_EQ(accepted_mutants, 0);
  for (int i = 0; i < kRounds; ++i) {
    (void)ContainerReader::Open(RandomBytes(rng.UniformInt(300), &rng));
  }
}

TEST(FuzzTest, EventRecordDecodersNeverCrash) {
  Rng rng(103);
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 10;
  EventGenerator generator(config);
  std::string record = generator.Generate().ToRecord();
  for (int i = 0; i < kRounds; ++i) {
    (void)GenEvent::FromRecord(Mutate(record, &rng));
  }
  for (int i = 0; i < kRounds; ++i) {
    (void)GenEvent::FromRecord(RandomBytes(rng.UniformInt(200), &rng));
  }
}

TEST(FuzzTest, YodaReaderNeverCrashes) {
  Rng rng(104);
  Histo1D histogram("/fuzz/h", 10, 0.0, 1.0);
  histogram.Fill(0.5);
  std::string seed = WriteYoda({histogram});
  for (int i = 0; i < kRounds; ++i) {
    (void)ReadYoda(Mutate(seed, &rng));
  }
}

TEST(FuzzTest, CalibrationPayloadParserNeverCrashes) {
  Rng rng(105);
  CalibrationSet calib;
  std::string seed = calib.ToPayload();
  for (int i = 0; i < kRounds; ++i) {
    (void)CalibrationSet::FromPayload(Mutate(seed, &rng));
  }
}

TEST(FuzzTest, SnapshotParserNeverCrashes) {
  Rng rng(106);
  ConditionsDb db;
  CalibrationSet calib;
  ASSERT_TRUE(db.Append("calib/detector", 1, calib.ToPayload()).ok());
  std::string seed =
      ConditionsSnapshot::Capture(db, 5, {"calib/detector"})->Serialize();
  for (int i = 0; i < kRounds; ++i) {
    (void)ConditionsSnapshot::Parse(Mutate(seed, &rng));
  }
}

TEST(FuzzTest, DialectDecodersNeverCrash) {
  Rng rng(107);
  level2::CommonEvent event;
  event.run = 1;
  event.event = 2;
  event.objects.push_back({"muon", 30.0, 0.5, 1.0, -1});
  event.tracks.push_back({5.0, 0.1, 0.2, 1, 0.01});
  event.met = 12.0;
  for (Experiment experiment : kAllExperiments) {
    const level2::Level2Codec& codec = level2::CodecFor(experiment);
    std::string seed = codec.Encode(event);
    for (int i = 0; i < kRounds / 4; ++i) {
      (void)codec.Decode(Mutate(seed, &rng));
      (void)codec.Decode(RandomBytes(rng.UniformInt(150), &rng));
    }
  }
}

TEST(FuzzTest, LhadaParserNeverCrashes) {
  Rng rng(108);
  std::string seed =
      "analysis fuzz\nobject m\n take muon\n select pt > 25\n"
      "cut c\n select count(m) >= 2\n select mass(m[0], m[1]) > 50\n";
  for (int i = 0; i < kRounds; ++i) {
    (void)lhada::AnalysisDescription::Parse(Mutate(seed, &rng));
  }
  // Line-shuffled garbage built from valid keywords.
  const char* fragments[] = {"analysis x",  "object o",   "take muon",
                             "select pt > ", "cut c",      "require c",
                             "select count(o) >= ",        "select met < "};
  for (int i = 0; i < kRounds; ++i) {
    std::string document;
    int lines = 1 + static_cast<int>(rng.UniformInt(8));
    for (int l = 0; l < lines; ++l) {
      document += fragments[rng.UniformInt(8)];
      if (rng.Accept(0.5)) {
        document += std::to_string(rng.UniformInt(100));
      }
      document += "\n";
    }
    (void)lhada::AnalysisDescription::Parse(document);
  }
}

TEST(FuzzTest, GlobalTagParserNeverCrashes) {
  Rng rng(110);
  GlobalTag tag;
  tag.name = "FUZZ_GT";
  tag.roles = {{"detector", "calib/detector"}, {"beam", "beamspot"}};
  std::string seed = tag.Serialize();
  for (int i = 0; i < kRounds; ++i) {
    (void)GlobalTag::Parse(Mutate(seed, &rng));
  }
}

TEST(FuzzTest, DecompressorNeverCrashesOnRandomBytes) {
  Rng rng(111);
  for (int i = 0; i < kRounds; ++i) {
    std::string junk = "DZ01" + RandomBytes(rng.UniformInt(200), &rng);
    (void)Decompress(junk);
  }
}

TEST(FuzzTest, MutatedDatasetNeverYieldsWrongEvents) {
  // If a mutated dataset happens to open (it should not), the decoded
  // events must still satisfy basic invariants; with fixity on, we expect
  // zero acceptances and this documents the guarantee.
  Rng rng(109);
  GeneratorConfig config;
  config.seed = 12;
  EventGenerator generator(config);
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "guard";
  std::string pristine = WriteGenDataset(info, generator.GenerateMany(5));
  for (int i = 0; i < kRounds; ++i) {
    std::string mutant = Mutate(pristine, &rng);
    if (mutant == pristine) continue;
    auto events = ReadGenDataset(mutant);
    EXPECT_FALSE(events.ok()) << "mutant accepted at round " << i;
  }
}

}  // namespace
}  // namespace daspos
