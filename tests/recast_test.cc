// Tests for the RECAST-analog: preserved search content, back-end
// processing of new-physics requests, the front-end lifecycle with the
// experiment approval gate, and the closed-system properties.
#include <gtest/gtest.h>

#include "event/pdg.h"
#include "recast/backend.h"
#include "recast/frontend.h"
#include "recast/scan.h"
#include "recast/search.h"
#include "hist/yoda_io.h"
#include "reco/reconstruction.h"
#include "tiers/dataset.h"
#include "workflow/steps.h"

namespace daspos {
namespace recast {
namespace {

RecastRequest ZPrimeRequest(double mass, double xsec_pb = 0.05,
                            size_t events = 300) {
  GeneratorConfig model;
  model.process = Process::kZPrimeToLL;
  model.zprime_mass = mass;
  model.zprime_width = mass * 0.03;
  model.lepton_flavor = pdg::kMuon;
  model.seed = 4242;

  RecastRequest request;
  request.search_name = "DASPOS_EXO_14_001";
  request.requester = "theorist@pheno.example";
  request.model = GeneratorConfigToJson(model);
  request.model_cross_section_pb = xsec_pb;
  request.event_count = events;
  return request;
}

RecastBackEnd MakeBackEnd() {
  RecastBackEnd backend;
  EXPECT_TRUE(backend.RegisterSearch(DileptonResonanceSearch()).ok());
  return backend;
}

// ----------------------------------------------------------------- Search

TEST(SearchTest, ShippedSearchIsWellFormed) {
  PreservedSearch search = DileptonResonanceSearch();
  EXPECT_FALSE(search.name.empty());
  EXPECT_GT(search.luminosity_pb, 0.0);
  ASSERT_EQ(search.regions.size(), 2u);
  for (const SignalRegion& region : search.regions) {
    EXPECT_GE(region.observed, 0.0);
    EXPECT_GT(region.background, 0.0);
    EXPECT_TRUE(static_cast<bool>(region.selection));
  }
}

// ---------------------------------------------------------------- BackEnd

TEST(BackEndTest, RegistrationValidation) {
  RecastBackEnd backend;
  PreservedSearch unnamed = DileptonResonanceSearch();
  unnamed.name.clear();
  EXPECT_TRUE(backend.RegisterSearch(unnamed).IsInvalidArgument());
  PreservedSearch empty = DileptonResonanceSearch();
  empty.regions.clear();
  EXPECT_TRUE(backend.RegisterSearch(empty).IsInvalidArgument());
  ASSERT_TRUE(backend.RegisterSearch(DileptonResonanceSearch()).ok());
  EXPECT_TRUE(backend.RegisterSearch(DileptonResonanceSearch())
                  .IsAlreadyExists());
  EXPECT_EQ(backend.SearchNames().size(), 1u);
}

TEST(BackEndTest, ProcessValidatesRequest) {
  RecastBackEnd backend = MakeBackEnd();
  RecastRequest bad_search = ZPrimeRequest(600.0);
  bad_search.search_name = "NOPE";
  EXPECT_TRUE(backend.Process(bad_search).status().IsNotFound());

  RecastRequest no_xsec = ZPrimeRequest(600.0);
  no_xsec.model_cross_section_pb = 0.0;
  EXPECT_TRUE(backend.Process(no_xsec).status().IsInvalidArgument());

  RecastRequest no_events = ZPrimeRequest(600.0);
  no_events.event_count = 0;
  EXPECT_TRUE(backend.Process(no_events).status().IsInvalidArgument());

  RecastRequest bad_model = ZPrimeRequest(600.0);
  bad_model.model = Json::Object();
  EXPECT_TRUE(backend.Process(bad_model).status().IsInvalidArgument());
}

TEST(BackEndTest, HeavyResonancePopulatesHighMassRegion) {
  RecastBackEnd backend = MakeBackEnd();
  auto result = backend.Process(ZPrimeRequest(1200.0));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->regions.size(), 2u);
  const RegionResult* high = nullptr;
  const RegionResult* low = nullptr;
  for (const RegionResult& region : result->regions) {
    if (region.region == "SR_mll_800") high = &region;
    if (region.region == "SR_mll_400") low = &region;
  }
  ASSERT_NE(high, nullptr);
  ASSERT_NE(low, nullptr);
  // A 1.2 TeV resonance feeds the high-mass region far more than the low.
  EXPECT_GT(high->efficiency, 0.05);
  EXPECT_GT(high->efficiency, low->efficiency);
  EXPECT_GT(high->signal_per_mu, 0.0);
  EXPECT_GT(high->upper_limit_mu, 0.0);
  EXPECT_EQ(backend.events_simulated(), 300u);
}

TEST(BackEndTest, MediumResonancePopulatesLowMassRegion) {
  RecastBackEnd backend = MakeBackEnd();
  auto result = backend.Process(ZPrimeRequest(550.0));
  ASSERT_TRUE(result.ok());
  const RegionResult* low = nullptr;
  for (const RegionResult& region : result->regions) {
    if (region.region == "SR_mll_400") low = &region;
  }
  ASSERT_NE(low, nullptr);
  EXPECT_GT(low->efficiency, 0.05);
}

TEST(BackEndTest, LargerCrossSectionExcludedSmallerNot) {
  RecastBackEnd backend = MakeBackEnd();
  auto big = backend.Process(ZPrimeRequest(1000.0, /*xsec_pb=*/0.5));
  auto tiny = backend.Process(ZPrimeRequest(1000.0, /*xsec_pb=*/1e-5));
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(tiny.ok());
  EXPECT_TRUE(big->Excluded());
  EXPECT_FALSE(tiny->Excluded());
  EXPECT_LT(big->BestUpperLimit(), tiny->BestUpperLimit());
}

TEST(BackEndTest, ResultJsonShape) {
  RecastBackEnd backend = MakeBackEnd();
  auto result = backend.Process(ZPrimeRequest(900.0));
  ASSERT_TRUE(result.ok());
  Json json = result->ToJson();
  EXPECT_EQ(json.Get("search").as_string(), "DASPOS_EXO_14_001");
  EXPECT_EQ(json.Get("regions").size(), 2u);
  EXPECT_TRUE(json.Has("excluded_at_nominal"));
}

TEST(BackEndTest, ExpectedLimitsAccompanyObserved) {
  RecastBackEnd backend = MakeBackEnd();
  auto result = backend.Process(ZPrimeRequest(1000.0));
  ASSERT_TRUE(result.ok());
  for (const RegionResult& region : result->regions) {
    if (region.signal_per_mu <= 0.0) continue;
    EXPECT_GT(region.expected_limit_mu, 0.0) << region.region;
    // The preserved counts have mild excesses (24 vs 22.5, 3 vs 2.4), so
    // observed limits are slightly weaker than expected ones.
    EXPECT_GE(region.upper_limit_mu, region.expected_limit_mu * 0.9)
        << region.region;
  }
}

TEST(RequestJsonTest, RequestRoundTrip) {
  RecastRequest request = ZPrimeRequest(900.0, 0.07, 123);
  auto restored = RecastRequest::FromJson(request.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->search_name, request.search_name);
  EXPECT_EQ(restored->requester, request.requester);
  EXPECT_DOUBLE_EQ(restored->model_cross_section_pb, 0.07);
  EXPECT_EQ(restored->event_count, 123u);
  // The embedded model survives and still drives the generator.
  auto model = GeneratorConfigFromJson(restored->model);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->zprime_mass, 900.0);
}

TEST(RequestJsonTest, RequestValidation) {
  EXPECT_FALSE(RecastRequest::FromJson(Json::Object()).ok());
  Json wrong_api = Json::Object();
  wrong_api["api"] = "something-else";
  EXPECT_FALSE(RecastRequest::FromJson(wrong_api).ok());
}

TEST(RequestJsonTest, ResultRoundTripThroughWire) {
  // Full wire loop: request JSON -> backend -> result JSON -> parse.
  RecastBackEnd backend = MakeBackEnd();
  Json wire_request = ZPrimeRequest(1000.0).ToJson();
  // Re-parse as the server would.
  auto request = RecastRequest::FromJson(wire_request);
  ASSERT_TRUE(request.ok());
  auto result = backend.Process(*request);
  ASSERT_TRUE(result.ok());
  std::string wire_result = result->ToJson().Dump();
  auto parsed_json = Json::Parse(wire_result);
  ASSERT_TRUE(parsed_json.ok());
  auto restored = RecastResult::FromJson(*parsed_json);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->search_name, result->search_name);
  ASSERT_EQ(restored->regions.size(), result->regions.size());
  EXPECT_DOUBLE_EQ(restored->BestUpperLimit(), result->BestUpperLimit());
  EXPECT_EQ(restored->Excluded(), result->Excluded());
}

TEST(BackEndTest, ProcessDatasetReRunsOnNewData) {
  // The §2.4 extension: apply the preserved selections to a new dataset.
  RecastBackEnd backend = MakeBackEnd();

  // Build a small "new data" AOD set: generate the Z' model through the
  // same preserved chain, so some events land in the signal regions.
  PreservedSearch search = DileptonResonanceSearch();
  GeneratorConfig model;
  model.process = Process::kZPrimeToLL;
  model.zprime_mass = 1000.0;
  model.zprime_width = 30.0;
  model.lepton_flavor = pdg::kMuon;
  model.seed = 555;
  EventGenerator generator(model);
  DetectorSimulation simulation(search.sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = search.sim_config.geometry;
  reco_config.calib = search.sim_config.calib;
  Reconstructor reconstructor(reco_config);
  std::vector<AodEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(AodEvent::FromReco(
        reconstructor.Reconstruct(simulation.Simulate(generator.Generate(), 1))));
  }
  DatasetInfo info;
  info.tier = DataTier::kAod;
  info.name = "new_data";
  std::string blob = WriteAodDataset(info, events);

  auto counts = backend.ProcessDataset("DASPOS_EXO_14_001", blob);
  ASSERT_TRUE(counts.ok()) << counts.status();
  ASSERT_EQ(counts->size(), 2u);
  uint64_t total_passed = 0;
  for (const auto& region : *counts) {
    EXPECT_GT(region.preserved_background, 0.0);
    total_passed += region.passed;
  }
  EXPECT_GT(total_passed, 10u);  // a 1 TeV signal populates the regions

  EXPECT_TRUE(
      backend.ProcessDataset("NOPE", blob).status().IsNotFound());
  EXPECT_FALSE(backend.ProcessDataset("DASPOS_EXO_14_001", "junk").ok());
}

TEST(GridScanTest, ProducesAcceptanceAndLimitGrids) {
  // The §2.3 SUSY-style grid, on the truth bridge for speed semantics are
  // identical across back ends.
  RecastBackEnd backend = MakeBackEnd();
  GridScanConfig config;
  config.mass_lo = 600.0;
  config.mass_hi = 1400.0;
  config.mass_points = 4;
  config.width_frac_lo = 0.02;
  config.width_frac_hi = 0.06;
  config.width_points = 2;
  config.events_per_point = 80;
  config.region = "SR_mll_800";
  config.seed = 77;

  auto scan = ScanZPrimeGrid(&backend, "DASPOS_EXO_14_001", config);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->events_processed, 80u * 4 * 2);
  EXPECT_EQ(scan->efficiency.xaxis().nbins(), 4);
  EXPECT_EQ(scan->efficiency.yaxis().nbins(), 2);

  // Efficiency into the high-mass region rises from threshold.
  double eff_low = scan->efficiency.BinContent(0, 0);   // ~700 GeV
  double eff_high = scan->efficiency.BinContent(3, 0);  // ~1300 GeV
  EXPECT_GT(eff_high, eff_low);
  EXPECT_GT(eff_high, 0.2);
  // Limits are positive where efficiency is nonzero, and tighter (smaller)
  // at higher efficiency.
  double mu_high = scan->upper_limit.BinContent(3, 0);
  EXPECT_GT(mu_high, 0.0);
  if (eff_low > 0.0) {
    EXPECT_LE(mu_high, scan->upper_limit.BinContent(0, 0));
  }
}

TEST(GridScanTest, Validation) {
  RecastBackEnd backend = MakeBackEnd();
  GridScanConfig config;
  config.region = "";
  EXPECT_TRUE(ScanZPrimeGrid(&backend, "DASPOS_EXO_14_001", config)
                  .status()
                  .IsInvalidArgument());
  config.region = "NOPE";
  config.mass_points = 1;
  config.width_points = 1;
  config.events_per_point = 5;
  EXPECT_TRUE(ScanZPrimeGrid(&backend, "DASPOS_EXO_14_001", config)
                  .status()
                  .IsNotFound());
  config.region = "SR_mll_800";
  config.mass_hi = config.mass_lo;
  EXPECT_TRUE(ScanZPrimeGrid(&backend, "DASPOS_EXO_14_001", config)
                  .status()
                  .IsInvalidArgument());
}

TEST(GridScanTest, GridSurvivesYodaPreservation) {
  // The grid is preservable as a YODA document — the §2.3 "information
  // needed to replicate a new particle search" travelling as plain text.
  RecastBackEnd backend = MakeBackEnd();
  GridScanConfig config;
  config.mass_points = 2;
  config.width_points = 1;
  config.events_per_point = 40;
  config.region = "SR_mll_800";
  auto scan = ScanZPrimeGrid(&backend, "DASPOS_EXO_14_001", config);
  ASSERT_TRUE(scan.ok());

  YodaDocument document;
  document.histos2d.push_back(scan->efficiency);
  document.histos2d.push_back(scan->upper_limit);
  auto restored = ReadYodaDocument(WriteYodaDocument(document));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->histos2d.size(), 2u);
  EXPECT_DOUBLE_EQ(restored->histos2d[0].BinContent(1, 0),
                   scan->efficiency.BinContent(1, 0));
}

// --------------------------------------------------------------- FrontEnd

TEST(FrontEndTest, FullLifecycleWithApproval) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);

  EXPECT_EQ(frontend.Catalog().size(), 1u);
  auto id = frontend.Submit(ZPrimeRequest(800.0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*frontend.GetState(*id), RequestState::kQueued);

  // Results are withheld until processed AND approved.
  EXPECT_TRUE(frontend.GetResult(*id).status().IsPermissionDenied());
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  EXPECT_EQ(*frontend.GetState(*id), RequestState::kProcessed);
  EXPECT_TRUE(frontend.GetResult(*id).status().IsPermissionDenied());

  ASSERT_TRUE(frontend.Approve(*id).ok());
  auto result = frontend.GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->search_name, "DASPOS_EXO_14_001");
}

TEST(FrontEndTest, RejectionWithholdsResult) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);
  auto id = frontend.Submit(ZPrimeRequest(800.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  ASSERT_TRUE(frontend.Reject(*id, "request conflicts with ongoing analysis")
                  .ok());
  EXPECT_TRUE(frontend.GetResult(*id).status().IsPermissionDenied());
  auto reason = frontend.GetRejectionReason(*id);
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason->find("conflicts"), std::string::npos);
}

TEST(FrontEndTest, SubmitValidation) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);
  RecastRequest unknown = ZPrimeRequest(800.0);
  unknown.search_name = "NOPE";
  EXPECT_TRUE(frontend.Submit(unknown).status().IsNotFound());
  RecastRequest anonymous = ZPrimeRequest(800.0);
  anonymous.requester.clear();
  EXPECT_TRUE(frontend.Submit(anonymous).status().IsInvalidArgument());
}

TEST(FrontEndTest, ProcessingFailureBecomesRejection) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);
  RecastRequest bad_model = ZPrimeRequest(800.0);
  bad_model.model = Json::Object();  // unparseable model
  auto id = frontend.Submit(bad_model);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  EXPECT_EQ(*frontend.GetState(*id), RequestState::kRejected);
  auto reason = frontend.GetRejectionReason(*id);
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason->find("processing failed"), std::string::npos);
}

TEST(FrontEndTest, ApprovalStateMachine) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);
  auto id = frontend.Submit(ZPrimeRequest(800.0));
  ASSERT_TRUE(id.ok());
  // Cannot approve an unprocessed request.
  EXPECT_TRUE(frontend.Approve(*id).IsFailedPrecondition());
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  ASSERT_TRUE(frontend.Approve(*id).ok());
  // Cannot reject a released result.
  EXPECT_TRUE(frontend.Reject(*id, "too late").IsFailedPrecondition());
  EXPECT_TRUE(frontend.Approve("REQ-999").IsNotFound());
  EXPECT_TRUE(frontend.GetState("REQ-999").status().IsNotFound());
}

TEST(FrontEndTest, MultipleRequestsIndependent) {
  RecastBackEnd backend = MakeBackEnd();
  RecastFrontEnd frontend(&backend);
  auto id1 = frontend.Submit(ZPrimeRequest(600.0, 0.05, 100));
  auto id2 = frontend.Submit(ZPrimeRequest(1200.0, 0.05, 100));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  ASSERT_TRUE(frontend.ProcessQueue().ok());
  ASSERT_TRUE(frontend.Approve(*id1).ok());
  EXPECT_TRUE(frontend.GetResult(*id1).ok());
  EXPECT_TRUE(frontend.GetResult(*id2).status().IsPermissionDenied());
  EXPECT_EQ(frontend.RequestIds().size(), 2u);
}

}  // namespace
}  // namespace recast
}  // namespace daspos
