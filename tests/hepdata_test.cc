// Tests for the HepData-analog: data tables, record validation, search,
// INSPIRE links, and histogram round-trips.
#include <gtest/gtest.h>

#include "hepdata/record.h"
#include "support/rng.h"

namespace daspos {
namespace hepdata {
namespace {

DataTable MakeTable(int points = 5) {
  DataTable table;
  table.name = "Table 1";
  table.independent_variable = "M(mu+mu-) [GeV]";
  table.dependent_variable = "dsigma/dM [pb/GeV]";
  for (int i = 0; i < points; ++i) {
    table.points.push_back({60.0 + i * 10.0, 70.0 + i * 10.0,
                            100.0 / (i + 1), 5.0 / (i + 1)});
  }
  return table;
}

HepDataRecord MakeRecord(const std::string& id = "ins1234567") {
  HepDataRecord record;
  record.id = id;
  record.title = "Measurement of the Z boson production cross section";
  record.experiment = "CMS";
  record.year = 2014;
  record.reaction = "P P --> Z0 < MU+ MU- > X";
  record.keywords = {"Z boson", "cross section", "dimuon"};
  record.tables = {MakeTable()};
  return record;
}

TEST(DataTableTest, HistogramRoundTrip) {
  Histo1D histogram("/h", 20, 0.0, 100.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) histogram.Fill(rng.Exponential(25.0));
  DataTable table =
      DataTable::FromHistogram(histogram, "pt", "pT [GeV]", "entries");
  ASSERT_EQ(table.points.size(), 20u);
  auto restored = table.ToHistogram("/restored");
  ASSERT_TRUE(restored.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(restored->BinContent(i), histogram.BinContent(i));
    EXPECT_NEAR(restored->BinError(i), histogram.BinError(i), 1e-9);
  }
}

TEST(DataTableTest, NonUniformBinningRejected) {
  DataTable table = MakeTable();
  table.points[2].x_hi += 5.0;
  EXPECT_FALSE(table.ToHistogram("/x").ok());
  DataTable empty;
  EXPECT_FALSE(empty.ToHistogram("/x").ok());
}

TEST(DataTableTest, JsonRoundTrip) {
  DataTable table = MakeTable();
  auto restored = DataTable::FromJson(table.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->name, table.name);
  EXPECT_EQ(restored->independent_variable, table.independent_variable);
  ASSERT_EQ(restored->points.size(), table.points.size());
  EXPECT_DOUBLE_EQ(restored->points[3].y, table.points[3].y);
}

TEST(RecordTest, JsonRoundTrip) {
  HepDataRecord record = MakeRecord();
  auto restored = HepDataRecord::FromJson(record.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->id, record.id);
  EXPECT_EQ(restored->year, 2014);
  EXPECT_EQ(restored->keywords.size(), 3u);
  ASSERT_EQ(restored->tables.size(), 1u);
  EXPECT_EQ(restored->tables[0].points.size(), 5u);
}

TEST(ArchiveTest, SubmitAndGet) {
  HepDataArchive archive;
  ASSERT_TRUE(archive.Submit(MakeRecord()).ok());
  EXPECT_TRUE(archive.Has("ins1234567"));
  EXPECT_EQ(archive.size(), 1u);
  auto record = archive.Get("ins1234567");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->experiment, "CMS");
  EXPECT_TRUE(archive.Get("ins999").status().IsNotFound());
}

TEST(ArchiveTest, SubmissionValidation) {
  HepDataArchive archive;
  HepDataRecord no_id = MakeRecord("");
  EXPECT_TRUE(archive.Submit(no_id).IsInvalidArgument());

  HepDataRecord no_tables = MakeRecord();
  no_tables.tables.clear();
  EXPECT_TRUE(archive.Submit(no_tables).IsInvalidArgument());

  HepDataRecord empty_table = MakeRecord();
  empty_table.tables[0].points.clear();
  EXPECT_TRUE(archive.Submit(empty_table).IsInvalidArgument());

  HepDataRecord inverted_bin = MakeRecord();
  inverted_bin.tables[0].points[0] = {70.0, 60.0, 1.0, 0.1};
  EXPECT_TRUE(archive.Submit(inverted_bin).IsInvalidArgument());

  HepDataRecord negative_error = MakeRecord();
  negative_error.tables[0].points[0].y_err = -1.0;
  EXPECT_TRUE(archive.Submit(negative_error).IsInvalidArgument());

  ASSERT_TRUE(archive.Submit(MakeRecord()).ok());
  EXPECT_TRUE(archive.Submit(MakeRecord()).IsAlreadyExists());
}

TEST(ArchiveTest, SearchOverFields) {
  HepDataArchive archive;
  ASSERT_TRUE(archive.Submit(MakeRecord("ins1")).ok());
  HepDataRecord susy = MakeRecord("ins2");
  susy.title = "Search for supersymmetry in hadronic final states";
  susy.experiment = "ATLAS";
  susy.reaction = "P P --> SQUARK SQUARK X";
  susy.keywords = {"SUSY", "acceptance grid"};
  ASSERT_TRUE(archive.Submit(susy).ok());

  EXPECT_EQ(archive.Search("z boson").size(), 1u);      // title, case-insens.
  EXPECT_EQ(archive.Search("SQUARK").size(), 1u);       // reaction
  EXPECT_EQ(archive.Search("atlas").size(), 1u);        // experiment
  EXPECT_EQ(archive.Search("acceptance").size(), 1u);   // keyword
  EXPECT_EQ(archive.Search("measurement").size(), 1u);
  EXPECT_TRUE(archive.Search("neutrino").empty());
  // Empty query matches everything.
  EXPECT_EQ(archive.Search("").size(), 2u);
}

TEST(ArchiveTest, InspireLinks) {
  HepDataArchive archive;
  ASSERT_TRUE(archive.Submit(MakeRecord("ins1")).ok());
  ASSERT_TRUE(archive.Submit(MakeRecord("ins2")).ok());
  ASSERT_TRUE(archive.LinkInspire("1234567", "ins1").ok());
  ASSERT_TRUE(archive.LinkInspire("1234567", "ins2").ok());
  ASSERT_TRUE(archive.LinkInspire("1234567", "ins1").ok());  // idempotent
  EXPECT_TRUE(archive.LinkInspire("1234567", "ins9").IsNotFound());
  auto linked = archive.RecordsForInspire("1234567");
  ASSERT_EQ(linked.size(), 2u);
  EXPECT_TRUE(archive.RecordsForInspire("0000").empty());
}

TEST(ArchiveTest, SusySearchUploadUseCase) {
  // The §2.3 aside: an ATLAS search uploading acceptance grids — far from
  // HepData's original cross-section intent, but accommodated.
  HepDataArchive archive;
  HepDataRecord record;
  record.id = "ins_atlas_susy";
  record.title = "ATLAS SUSY search: acceptance x efficiency grids";
  record.experiment = "ATLAS";
  record.year = 2013;
  record.reaction = "P P --> GLUINO GLUINO X";
  DataTable grid;
  grid.name = "acceptance vs m_gluino";
  grid.independent_variable = "m_gluino [GeV]";
  grid.dependent_variable = "acceptance x efficiency";
  for (int i = 0; i < 10; ++i) {
    grid.points.push_back(
        {400.0 + 100.0 * i, 500.0 + 100.0 * i, 0.05 + 0.02 * i, 0.005});
  }
  record.tables = {grid};
  ASSERT_TRUE(archive.Submit(record).ok());
  EXPECT_EQ(archive.Search("gluino").size(), 1u);
}

}  // namespace
}  // namespace hepdata
}  // namespace daspos
