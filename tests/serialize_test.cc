// Unit + property tests for JSON, binary primitives, and the
// self-describing container (including corruption injection).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serialize/binary.h"
#include "serialize/container.h"
#include "serialize/json.h"

namespace daspos {
namespace {

// ------------------------------------------------------------------ JSON --

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-3.5).Dump(), "-3.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::Object();
  j["z"] = 1;
  j["a"] = 2;
  j["m"] = 3;
  EXPECT_EQ(j.Dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(JsonTest, ArrayPushBack) {
  Json j = Json::Array();
  j.push_back(1);
  j.push_back("two");
  j.push_back(Json());
  EXPECT_EQ(j.Dump(), "[1,\"two\",null]");
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.at(1).as_string(), "two");
  EXPECT_TRUE(j.at(99).is_null());
}

TEST(JsonTest, GetAndHas) {
  Json j = Json::Object();
  j["key"] = "value";
  EXPECT_TRUE(j.Has("key"));
  EXPECT_FALSE(j.Has("other"));
  EXPECT_EQ(j.Get("key").as_string(), "value");
  EXPECT_TRUE(j.Get("other").is_null());
}

TEST(JsonTest, StringEscaping) {
  Json j(std::string("a\"b\\c\nd\te\x01"));
  std::string dumped = j.Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), j.as_string());
}

TEST(JsonTest, ParseBasicDocument) {
  auto r = Json::Parse(R"({"name":"AOD","n":3,"ok":true,"list":[1,2.5,null]})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get("name").as_string(), "AOD");
  EXPECT_EQ(r->Get("n").as_int(), 3);
  EXPECT_TRUE(r->Get("ok").as_bool());
  EXPECT_EQ(r->Get("list").size(), 3u);
  EXPECT_DOUBLE_EQ(r->Get("list").at(1).as_number(), 2.5);
  EXPECT_TRUE(r->Get("list").at(2).is_null());
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto r = Json::Parse("  {\n \"a\" : [ 1 , 2 ] \n}  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get("a").size(), 2u);
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto r = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_string(), "A\xc3\xa9");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
}

TEST(JsonTest, DeepNestingRejected) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, PrettyDumpParsesBack) {
  Json j = Json::Object();
  j["schema"] = "aod";
  j["parents"] = Json::Array();
  j["parents"].push_back("file1");
  j["nested"] = Json::Object();
  j["nested"]["k"] = 1.25;
  std::string pretty = j.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = Json::Parse(pretty);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == j);
}

// Round-trip property over a sweep of doubles.
class JsonNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, ExactThroughDumpParse) {
  double v = GetParam();
  auto parsed = Json::Parse(Json(v).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->as_number(), v);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JsonNumberRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.0, 0.1, -0.1, 1e-12,
                                           3.141592653589793, 91.1876, 1e15,
                                           -2.5e-7, 12345678.9));

// ---------------------------------------------------------------- Binary --

TEST(BinaryTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutDouble(91.1876);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 91.1876);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\x00\x01", 2));
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), std::string("\x00\x01", 2));
}

TEST(BinaryTest, TruncationDetected) {
  BinaryWriter w;
  w.PutU64(7);
  std::string data = w.buffer().substr(0, 4);
  BinaryReader r(data);
  EXPECT_TRUE(r.GetU64().status().IsCorruption());
}

TEST(BinaryTest, VarintTruncationDetected) {
  std::string bad("\xff\xff", 2);  // continuation bits with no terminator
  BinaryReader r(bad);
  EXPECT_TRUE(r.GetVarint().status().IsCorruption());
}

TEST(BinaryTest, StringLengthBeyondBufferDetected) {
  BinaryWriter w;
  w.PutVarint(100);  // claims 100 bytes
  w.PutRaw("short");
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(BinaryTest, SkipAdvances) {
  BinaryWriter w;
  w.PutRaw("abcdef");
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(*r.GetRaw(2), "ef");
  EXPECT_TRUE(r.Skip(1).IsCorruption());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  BinaryWriter w;
  w.PutVarint(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetVarint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 32), (1ull << 56) + 5,
                      std::numeric_limits<uint64_t>::max()));

class SVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SVarintRoundTrip, Signed) {
  BinaryWriter w;
  w.PutSVarint(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetSVarint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SVarintRoundTrip,
    ::testing::Values(int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63},
                      int64_t{-64}, int64_t{1000000}, int64_t{-1000000},
                      std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

// ------------------------------------------------------------- Container --

Json TestMetadata() {
  Json m = Json::Object();
  m["schema"] = "test-records";
  m["schema_version"] = 1;
  m["producer"] = "serialize_test";
  return m;
}

TEST(ContainerTest, RoundTrip) {
  ContainerWriter w(TestMetadata());
  w.AddRecord("first record");
  w.AddRecord("");
  w.AddRecord(std::string("\x00\x01\x02", 3));
  std::string blob = w.Finish();

  auto reader = ContainerReader::Open(blob);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 3u);
  EXPECT_EQ(reader->metadata().Get("schema").as_string(), "test-records");
  ASSERT_EQ(reader->records().size(), 3u);
  EXPECT_EQ(reader->records()[0], "first record");
  EXPECT_EQ(reader->records()[1], "");
  EXPECT_EQ(reader->records()[2], std::string("\x00\x01\x02", 3));
}

TEST(ContainerTest, EmptyContainer) {
  ContainerWriter w(TestMetadata());
  std::string blob = w.Finish();
  auto reader = ContainerReader::Open(blob);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 0u);
}

TEST(ContainerTest, BitFlipDetectedByFixity) {
  ContainerWriter w(TestMetadata());
  w.AddRecord("payload payload payload");
  std::string blob = w.Finish();
  // Flip one bit in the record region.
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  auto reader = ContainerReader::Open(blob);
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(ContainerTest, TruncationDetected) {
  ContainerWriter w(TestMetadata());
  w.AddRecord("payload");
  std::string blob = w.Finish();
  auto reader = ContainerReader::Open(blob.substr(0, blob.size() - 10));
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(ContainerTest, BadMagicDetected) {
  ContainerWriter w(TestMetadata());
  std::string blob = w.Finish();
  blob[0] = 'X';
  EXPECT_TRUE(ContainerReader::Open(blob).status().IsCorruption());
}

TEST(ContainerTest, OpenUnverifiedSkipsFixity) {
  ContainerWriter w(TestMetadata());
  w.AddRecord("abcdefghij");
  std::string blob = w.Finish();
  // Corrupt a byte inside the record payload only.
  size_t pos = blob.find("abcdefghij");
  ASSERT_NE(pos, std::string::npos);
  blob[pos] = 'X';
  EXPECT_TRUE(ContainerReader::Open(blob).status().IsCorruption());
  auto reader = ContainerReader::OpenUnverified(blob);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->records()[0], "Xbcdefghij");
}

TEST(ContainerTest, ManyRecords) {
  ContainerWriter w(TestMetadata());
  const int n = 1000;
  for (int i = 0; i < n; ++i) w.AddRecord("record-" + std::to_string(i));
  std::string blob = w.Finish();
  auto reader = ContainerReader::Open(blob);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->record_count(), static_cast<uint64_t>(n));
  EXPECT_EQ(reader->records()[999], "record-999");
}

}  // namespace
}  // namespace daspos
