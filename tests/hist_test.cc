// Unit + property tests for the histogram library: axis arithmetic, weighted
// filling, moments, comparisons, and the YODA-like text round-trip.
#include <gtest/gtest.h>

#include <cmath>

#include "hist/axis.h"
#include "hist/compare.h"
#include "hist/histo1d.h"
#include "hist/histo2d.h"
#include "hist/profile1d.h"
#include "hist/yoda_io.h"
#include "support/rng.h"

namespace daspos {
namespace {

// ------------------------------------------------------------------ Axis --

TEST(AxisTest, IndexMapping) {
  Axis a(10, 0.0, 10.0);
  EXPECT_EQ(a.Index(0.0), 0);
  EXPECT_EQ(a.Index(0.999), 0);
  EXPECT_EQ(a.Index(5.0), 5);
  EXPECT_EQ(a.Index(9.9999), 9);
  EXPECT_EQ(a.Index(10.0), Axis::kOverflow);
  EXPECT_EQ(a.Index(-0.1), Axis::kUnderflow);
  EXPECT_EQ(a.Index(std::nan("")), Axis::kOverflow);
}

TEST(AxisTest, Edges) {
  Axis a(4, -2.0, 2.0);
  EXPECT_DOUBLE_EQ(a.width(), 1.0);
  EXPECT_DOUBLE_EQ(a.BinLow(0), -2.0);
  EXPECT_DOUBLE_EQ(a.BinCenter(1), -0.5);
  EXPECT_DOUBLE_EQ(a.BinHigh(3), 2.0);
}

class AxisCoverage : public ::testing::TestWithParam<int> {};

TEST_P(AxisCoverage, EveryBinCenterMapsToItsBin) {
  int nbins = GetParam();
  Axis a(nbins, -3.7, 11.3);
  for (int i = 0; i < nbins; ++i) {
    EXPECT_EQ(a.Index(a.BinCenter(i)), i) << "bin " << i;
    // Computed low edges may round to either side of the mathematical edge;
    // they must land in bin i or its lower neighbour, never further away.
    int edge_bin = a.Index(a.BinLow(i));
    EXPECT_TRUE(edge_bin == i || edge_bin == i - 1 ||
                (i == 0 && edge_bin == 0))
        << "low edge of bin " << i << " mapped to " << edge_bin;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AxisCoverage,
                         ::testing::Values(1, 2, 7, 50, 1000));

// --------------------------------------------------------------- Histo1D --

TEST(Histo1DTest, FillAndContent) {
  Histo1D h("/t/h", 10, 0.0, 10.0);
  h.Fill(0.5);
  h.Fill(0.6, 2.0);
  h.Fill(5.5);
  EXPECT_DOUBLE_EQ(h.BinContent(0), 3.0);
  EXPECT_DOUBLE_EQ(h.BinContent(5), 1.0);
  EXPECT_EQ(h.entries(), 3u);
  EXPECT_DOUBLE_EQ(h.Integral(), 4.0);
}

TEST(Histo1DTest, OutOfRangeTracked) {
  Histo1D h("/t/h", 5, 0.0, 5.0);
  h.Fill(-1.0, 2.0);
  h.Fill(7.0, 3.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 3.0);
  EXPECT_DOUBLE_EQ(h.Integral(), 0.0);
  EXPECT_EQ(h.entries(), 2u);
}

TEST(Histo1DTest, BinErrorIsSqrtSumW2) {
  Histo1D h("/t/h", 1, 0.0, 1.0);
  h.Fill(0.5, 2.0);
  h.Fill(0.5, 2.0);
  EXPECT_DOUBLE_EQ(h.BinError(0), std::sqrt(8.0));
}

TEST(Histo1DTest, MeanAndStdDev) {
  Histo1D h("/t/h", 100, -10.0, 10.0);
  Rng rng(77);
  for (int i = 0; i < 100000; ++i) h.Fill(rng.Gauss(1.5, 2.0));
  EXPECT_NEAR(h.Mean(), 1.5, 0.05);
  EXPECT_NEAR(h.StdDev(), 2.0, 0.05);
}

TEST(Histo1DTest, ScalePreservesRelativeError) {
  Histo1D h("/t/h", 1, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) h.Fill(0.5);
  double rel_before = h.BinError(0) / h.BinContent(0);
  h.Scale(0.25);
  EXPECT_DOUBLE_EQ(h.BinContent(0), 25.0);
  EXPECT_NEAR(h.BinError(0) / h.BinContent(0), rel_before, 1e-12);
}

TEST(Histo1DTest, NormalizeUnitIntegral) {
  Histo1D h("/t/h", 20, 0.0, 4.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.Fill(rng.Uniform(0.0, 4.0));
  h.Normalize();
  EXPECT_NEAR(h.Integral(true), 1.0, 1e-12);
}

TEST(Histo1DTest, NormalizeEmptyIsNoOp) {
  Histo1D h("/t/h", 5, 0.0, 1.0);
  h.Normalize();
  EXPECT_DOUBLE_EQ(h.Integral(), 0.0);
}

TEST(Histo1DTest, AddMergesAndChecksBinning) {
  Histo1D a("/t/a", 10, 0.0, 1.0);
  Histo1D b("/t/b", 10, 0.0, 1.0);
  a.Fill(0.15);
  b.Fill(0.15);
  b.Fill(0.85);
  ASSERT_TRUE(a.Add(b).ok());
  EXPECT_DOUBLE_EQ(a.BinContent(1), 2.0);
  EXPECT_DOUBLE_EQ(a.BinContent(8), 1.0);
  EXPECT_EQ(a.entries(), 3u);

  Histo1D c("/t/c", 5, 0.0, 1.0);
  EXPECT_TRUE(a.Add(c).IsInvalidArgument());
}

TEST(Histo1DTest, ResetClearsContentKeepsBinning) {
  Histo1D h("/t/h", 10, 0.0, 1.0);
  h.Fill(0.5);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Integral(), 0.0);
  EXPECT_EQ(h.entries(), 0u);
  EXPECT_EQ(h.axis().nbins(), 10);
}

// --------------------------------------------------------------- Histo2D --

TEST(Histo2DTest, FillAndProjection) {
  Histo2D h("/t/h2", 4, 0.0, 4.0, 2, 0.0, 2.0);
  h.Fill(0.5, 0.5);
  h.Fill(0.5, 1.5, 2.0);
  h.Fill(3.5, 0.5);
  EXPECT_DOUBLE_EQ(h.BinContent(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinContent(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(h.Integral(), 4.0);
  Histo1D px = h.ProjectionX();
  EXPECT_DOUBLE_EQ(px.BinContent(0), 3.0);
  EXPECT_DOUBLE_EQ(px.BinContent(3), 1.0);
}

TEST(Histo2DTest, OutsideCounted) {
  Histo2D h("/t/h2", 2, 0.0, 1.0, 2, 0.0, 1.0);
  h.Fill(-1.0, 0.5);
  h.Fill(0.5, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(h.outside(), 4.0);
  EXPECT_DOUBLE_EQ(h.Integral(), 0.0);
}

TEST(Histo2DTest, AddChecksBothAxes) {
  Histo2D a("/a", 2, 0.0, 1.0, 2, 0.0, 1.0);
  Histo2D b("/b", 2, 0.0, 1.0, 3, 0.0, 1.0);
  EXPECT_TRUE(a.Add(b).IsInvalidArgument());
}

// ------------------------------------------------------------- Profile1D --

TEST(Profile1DTest, BinMeans) {
  Profile1D p("/t/p", 2, 0.0, 2.0);
  p.Fill(0.5, 10.0);
  p.Fill(0.5, 20.0);
  p.Fill(1.5, 5.0);
  EXPECT_DOUBLE_EQ(p.BinMean(0), 15.0);
  EXPECT_DOUBLE_EQ(p.BinMean(1), 5.0);
  EXPECT_DOUBLE_EQ(p.BinRms(0), 5.0);
  EXPECT_DOUBLE_EQ(p.BinRms(1), 0.0);
}

TEST(Profile1DTest, EmptyBinIsZero) {
  Profile1D p("/t/p", 3, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(p.BinMean(1), 0.0);
  EXPECT_DOUBLE_EQ(p.BinMeanError(1), 0.0);
}

TEST(Profile1DTest, MeanErrorShrinksWithStatistics) {
  Profile1D p("/t/p", 1, 0.0, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) p.Fill(0.5, rng.Gauss(0.0, 1.0));
  double err100 = p.BinMeanError(0);
  for (int i = 0; i < 9900; ++i) p.Fill(0.5, rng.Gauss(0.0, 1.0));
  EXPECT_LT(p.BinMeanError(0), err100);
}

// --------------------------------------------------------------- Compare --

TEST(CompareTest, IdenticalHistosHaveZeroChi2) {
  Histo1D a("/a", 10, 0.0, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) a.Fill(rng.Uniform());
  Histo1D b = a;
  auto r = Chi2Test(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->chi2, 0.0);
  EXPECT_GT(r->ndof, 0);
}

TEST(CompareTest, SameDistributionIsCompatible) {
  Histo1D a("/a", 20, -4.0, 4.0);
  Histo1D b("/b", 20, -4.0, 4.0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) a.Fill(rng.Gauss());
  for (int i = 0; i < 20000; ++i) b.Fill(rng.Gauss());
  auto r = Chi2Test(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->reduced(), 2.5);
  auto ks = KolmogorovDistance(a, b);
  ASSERT_TRUE(ks.ok());
  EXPECT_LT(*ks, 0.03);
}

TEST(CompareTest, ShiftedDistributionIsIncompatible) {
  Histo1D a("/a", 20, -4.0, 4.0);
  Histo1D b("/b", 20, -4.0, 4.0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) a.Fill(rng.Gauss(0.0, 1.0));
  for (int i = 0; i < 20000; ++i) b.Fill(rng.Gauss(1.0, 1.0));
  auto r = Chi2Test(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->reduced(), 10.0);
  auto ks = KolmogorovDistance(a, b);
  ASSERT_TRUE(ks.ok());
  EXPECT_GT(*ks, 0.2);
}

TEST(CompareTest, BinningMismatchIsError) {
  Histo1D a("/a", 10, 0.0, 1.0);
  Histo1D b("/b", 11, 0.0, 1.0);
  EXPECT_FALSE(Chi2Test(a, b).ok());
  EXPECT_FALSE(KolmogorovDistance(a, b).ok());
  EXPECT_FALSE(CompatibleWithin(a, b, 3.0).ok());
}

TEST(CompareTest, KsOnEmptyIsError) {
  Histo1D a("/a", 10, 0.0, 1.0);
  Histo1D b("/b", 10, 0.0, 1.0);
  EXPECT_FALSE(KolmogorovDistance(a, b).ok());
}

TEST(CompareTest, CompatibleWithinSigma) {
  Histo1D a("/a", 5, 0.0, 5.0);
  Histo1D b("/b", 5, 0.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    a.Fill(2.5);
    b.Fill(2.5);
  }
  b.Fill(2.5);  // one extra entry, well within sqrt(100) errors
  auto ok = CompatibleWithin(a, b, 3.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

// ---------------------------------------------------------------- YodaIO --

TEST(YodaIoTest, RoundTrip) {
  Histo1D h1("/ANALYSIS/mll", 30, 60.0, 120.0);
  Histo1D h2("/ANALYSIS/pt", 10, 0.0, 100.0);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    h1.Fill(rng.BreitWigner(91.2, 2.5), 0.7);
    h2.Fill(rng.Exponential(20.0));
  }
  h1.Fill(-999.0);  // underflow
  h1.Fill(999.0);   // overflow

  std::string text = WriteYoda({h1, h2});
  auto parsed = ReadYoda(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);

  const Histo1D& r1 = (*parsed)[0];
  EXPECT_EQ(r1.path(), "/ANALYSIS/mll");
  EXPECT_EQ(r1.axis().nbins(), 30);
  EXPECT_DOUBLE_EQ(r1.axis().lo(), 60.0);
  EXPECT_EQ(r1.entries(), h1.entries());
  EXPECT_DOUBLE_EQ(r1.underflow(), h1.underflow());
  for (int i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(r1.BinContent(i), h1.BinContent(i)) << "bin " << i;
    EXPECT_DOUBLE_EQ(r1.BinError(i), h1.BinError(i)) << "bin " << i;
  }
}

TEST(YodaIoTest, CommentsAndBlankLinesTolerated) {
  Histo1D h("/x", 2, 0.0, 1.0);
  h.Fill(0.25);
  std::string text = "# preserved reference data\n\n" + WriteYoda({h});
  auto parsed = ReadYoda(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(YodaIoTest, StructuralErrorsRejected) {
  EXPECT_FALSE(ReadYoda("garbage\n").ok());
  EXPECT_FALSE(ReadYoda("BEGIN HISTO1D /x\nbinning: 0 0 1\n").ok());
  EXPECT_FALSE(ReadYoda("BEGIN HISTO1D /x\nbinning: 2 0 1\n").ok());
  // Missing END.
  Histo1D h("/x", 1, 0.0, 1.0);
  std::string text = WriteYoda({h});
  text = text.substr(0, text.find("END"));
  EXPECT_FALSE(ReadYoda(text).ok());
}

TEST(YodaIoTest, MixedDocumentRoundTrip) {
  YodaDocument document;
  Histo1D h1("/doc/h1", 10, 0.0, 10.0);
  Histo2D h2("/doc/grid", 4, 100.0, 500.0, 3, 0.0, 30.0);
  Profile1D profile("/doc/response", 5, -2.5, 2.5);
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    h1.Fill(rng.Uniform(0.0, 10.0));
    h2.Fill(rng.Uniform(100.0, 500.0), rng.Uniform(0.0, 30.0), 0.3);
    profile.Fill(rng.Uniform(-2.5, 2.5), rng.Gauss(1.0, 0.1));
  }
  h2.Fill(-5.0, 1.0);  // outside
  document.histos1d.push_back(h1);
  document.histos2d.push_back(h2);
  document.profiles.push_back(profile);

  std::string text = WriteYodaDocument(document);
  auto restored = ReadYodaDocument(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->histos1d.size(), 1u);
  ASSERT_EQ(restored->histos2d.size(), 1u);
  ASSERT_EQ(restored->profiles.size(), 1u);

  const Histo2D& r2 = restored->histos2d[0];
  EXPECT_EQ(r2.path(), "/doc/grid");
  EXPECT_DOUBLE_EQ(r2.outside(), h2.outside());
  EXPECT_EQ(r2.entries(), h2.entries());
  for (int ix = 0; ix < 4; ++ix) {
    for (int iy = 0; iy < 3; ++iy) {
      EXPECT_DOUBLE_EQ(r2.BinContent(ix, iy), h2.BinContent(ix, iy));
      EXPECT_DOUBLE_EQ(r2.BinError(ix, iy), h2.BinError(ix, iy));
    }
  }
  const Profile1D& rp = restored->profiles[0];
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(rp.BinMean(i), profile.BinMean(i));
    EXPECT_DOUBLE_EQ(rp.BinRms(i), profile.BinRms(i));
  }
  // 1D content also survives via the document path.
  EXPECT_DOUBLE_EQ(restored->histos1d[0].Integral(), h1.Integral());
}

TEST(YodaIoTest, DocumentReaderAcceptsPlain1DOutput) {
  Histo1D h("/x", 3, 0.0, 3.0);
  h.Fill(1.5);
  auto document = ReadYodaDocument(WriteYoda({h}));
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->histos1d.size(), 1u);
  EXPECT_TRUE(document->histos2d.empty());
}

TEST(YodaIoTest, Plain1DReaderRejects2DBlocks) {
  YodaDocument document;
  document.histos2d.emplace_back("/g", 2, 0.0, 1.0, 2, 0.0, 1.0);
  std::string text = WriteYodaDocument(document);
  EXPECT_FALSE(ReadYoda(text).ok());
  EXPECT_TRUE(ReadYodaDocument(text).ok());
}

TEST(YodaIoTest, DocumentStructuralErrors) {
  EXPECT_FALSE(ReadYodaDocument("BEGIN HISTO2D /x\n").ok());
  EXPECT_FALSE(ReadYodaDocument("BEGIN PROFILE1D /x\nbinning: 1 0 1\n").ok());
  EXPECT_FALSE(ReadYodaDocument("nonsense\n").ok());
}

TEST(YodaIoTest, EmptyDocumentYieldsNoHistograms) {
  auto parsed = ReadYoda("  \n# only comments\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace daspos
