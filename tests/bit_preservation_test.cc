// Tests for the PR-8 bit-preservation layer: the replicated self-healing
// store (quorum writes, fixity-gated reads, read-repair, degraded mode), the
// incremental scrubber (repair-from-replica, persistent cursor, rate limit),
// and copy-verify-swap generation migration (resume after crash, refuse the
// swap on verification failure).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "archive/migrate.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "archive/replicated_store.h"
#include "archive/resilient_store.h"
#include "archive/scrub.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/metrics_registry.h"
#include "support/sha256.h"
#include "support/threadpool.h"

namespace daspos {
namespace {

namespace fs = std::filesystem;

/// Fresh temp workspace per test; each replica/state dir is a subdirectory.
class BitPreservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("daspos_bitpres_" + std::string(
                                      ::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()) +
              "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::string Dir(const std::string& name) const { return base_ + "/" + name; }

  static std::string BlobPath(const std::string& root, const std::string& id) {
    return root + "/" + id.substr(0, 2) + "/" + id.substr(2);
  }

  static void Rot(const std::string& root, const std::string& id) {
    std::ofstream(BlobPath(root, id), std::ios::binary) << "bit rot";
  }

  std::string base_;
};

// ------------------------------------------------ ReplicatedObjectStore --

TEST_F(BitPreservationTest, QuorumPutSucceedsPastMinorityFailures) {
  MemoryObjectStore a, b, c;
  auto spec = FaultSpec::Parse("nth=1");  // the replica's only Put fails
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  FaultyObjectStore broken(&c, &plan);
  ReplicatedObjectStore store({&a, &b, &broken});
  EXPECT_EQ(store.quorum(), 2u);

  auto id = store.Put("replicated payload");
  ASSERT_TRUE(id.ok());  // 2/3 accepted >= quorum
  EXPECT_TRUE(a.Has(*id));
  EXPECT_TRUE(b.Has(*id));
  EXPECT_FALSE(c.Has(*id));
}

TEST_F(BitPreservationTest, PutFailsBelowQuorum) {
  MemoryObjectStore a, b, c;
  auto spec = FaultSpec::Parse("nth=1");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan_b(*spec), plan_c(*spec);
  FaultyObjectStore broken_b(&b, &plan_b);
  FaultyObjectStore broken_c(&c, &plan_c);
  ReplicatedObjectStore store({&a, &broken_b, &broken_c});
  auto id = store.Put("cannot reach quorum");
  EXPECT_TRUE(id.status().IsIOError());
  EXPECT_NE(id.status().message().find("quorum"), std::string::npos);
}

// The PR-8 acceptance test: rot one replica's bytes on disk; Get must
// return the correct bytes, repair the rotted copy in place, and leave a
// subsequent serial fixity audit over every replica clean.
TEST_F(BitPreservationTest, SelfHealingReadRepairsRottedReplica) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1")), r2(Dir("r2"));
  ReplicatedObjectStore store({&r0, &r1, &r2});
  auto id = store.Put("decades-scale custody");
  ASSERT_TRUE(id.ok());

  // Rot replica 0 behind the store's back (earlier in read order than the
  // healthy copies, so the falling-back Get can heal it).
  Rot(Dir("r0"), *id);

  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t repairs_before =
      registry.CounterValue(metric_names::kArchiveReadRepairsTotal);
  auto got = store.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "decades-scale custody");
  EXPECT_EQ(registry.CounterValue(metric_names::kArchiveReadRepairsTotal),
            repairs_before + 1);

  // Every replica now verifies clean, serially, one by one.
  for (FileObjectStore* replica : {&r0, &r1, &r2}) {
    EXPECT_TRUE(replica->Verify(*id).ok());
    EXPECT_EQ(*replica->Get(*id), "decades-scale custody");
  }
  // Replica 0 kept the forensic copy of the rot it suffered.
  EXPECT_EQ(r0.QuarantinedIds(), std::vector<std::string>{*id});
}

TEST_F(BitPreservationTest, DegradedReadServesWithWarningCounter) {
  // Object lives only on the last replica: the read falls past a majority
  // of unhealthy replicas and must count a degraded read — but still serve.
  MemoryObjectStore a, b, c;
  auto id = c.Put("minority copy");
  ASSERT_TRUE(id.ok());
  ReplicatedObjectStore store({&a, &b, &c});

  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t degraded_before =
      registry.CounterValue(metric_names::kArchiveDegradedReadsTotal);
  auto got = store.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "minority copy");
  EXPECT_EQ(registry.CounterValue(metric_names::kArchiveDegradedReadsTotal),
            degraded_before + 1);
  // Read-repair backfilled the two replicas the read fell past.
  EXPECT_TRUE(a.Has(*id));
  EXPECT_TRUE(b.Has(*id));
}

TEST_F(BitPreservationTest, ReplicationFixityGateBlocksMemoryStoreRot) {
  // MemoryObjectStore has no fixity gate on Get; the replication layer must
  // supply one so rot can never leak through a replica set.
  MemoryObjectStore a, b;
  auto id = a.Put("gated bytes");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(b.Put("gated bytes").ok());
  ASSERT_TRUE(a.CorruptForTesting(*id, 0).ok());
  ReplicatedObjectStore store({&a, &b});
  auto got = store.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "gated bytes");
  // Read-repair re-put the healthy bytes into the rotted replica.
  EXPECT_TRUE(a.Verify(*id).ok());
}

TEST_F(BitPreservationTest, VerifyIsAuditNotRepair) {
  MemoryObjectStore a, b;
  auto id = a.Put("audited");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(b.Put("audited").ok());
  ASSERT_TRUE(a.CorruptForTesting(*id, 1).ok());
  ReplicatedObjectStore store({&a, &b});
  // One replica verifies -> the object survives; the rotted copy is NOT
  // healed (that is Get's and the scrubber's job).
  EXPECT_TRUE(store.Verify(*id).ok());
  EXPECT_TRUE(a.Verify(*id).IsCorruption());
  // No replica verifying -> the audit fails.
  ASSERT_TRUE(b.CorruptForTesting(*id, 1).ok());
  EXPECT_FALSE(store.Verify(*id).ok());
}

TEST_F(BitPreservationTest, ReplicatedPutBatchReachesEveryReplica) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1")), r2(Dir("r2"));
  ReplicatedObjectStore store({&r0, &r1, &r2});
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back("batched replica payload " + std::to_string(i));
  }
  std::vector<std::string_view> blobs(payloads.begin(), payloads.end());
  ThreadPool pool(4);
  auto ids = store.PutBatch(blobs, &pool);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ((*ids)[i], Sha256::HashHex(payloads[i]));
    for (FileObjectStore* replica : {&r0, &r1, &r2}) {
      EXPECT_TRUE(replica->Verify((*ids)[i]).ok());
    }
  }
  // Enumeration views the union, deduped.
  EXPECT_EQ(store.Ids().size(), payloads.size());
  EXPECT_EQ(store.TotalBytes(), r0.TotalBytes());
}

// ----------------------------------------------------------- Scrub farm --

TEST_F(BitPreservationTest, ScrubRepairsRotAtAnyReplicaPosition) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1")), r2(Dir("r2"));
  ReplicatedObjectStore store({&r0, &r1, &r2});
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = store.Put("scrubbed object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Rot the LAST replica's copy of one object — a position read-repair can
  // never reach (reads stop at the first healthy replica).
  Rot(Dir("r2"), ids[3]);

  ScrubOptions options;
  auto report = ScrubReplicas({&r0, &r1, &r2}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_checked, 6u);
  EXPECT_EQ(report->replicas_checked, 18u);
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_TRUE(report->unrepairable.empty());
  EXPECT_TRUE(report->complete);
  EXPECT_EQ(report->Verdict(), ScrubVerdict::kPass);
  for (const std::string& id : ids) {
    for (FileObjectStore* replica : {&r0, &r1, &r2}) {
      EXPECT_TRUE(replica->Verify(id).ok());
    }
  }
}

TEST_F(BitPreservationTest, ScrubBackfillsMissingCopies) {
  // An object present on only one replica (e.g. after a degraded-mode
  // write) is under-replicated; the scrubber must backfill the holes.
  FileObjectStore r0(Dir("r0")), r1(Dir("r1")), r2(Dir("r2"));
  auto id = r1.Put("only on one replica");
  ASSERT_TRUE(id.ok());
  auto report = ScrubReplicas({&r0, &r1, &r2}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->repaired, 2u);
  EXPECT_EQ(report->Verdict(), ScrubVerdict::kPass);
  for (FileObjectStore* replica : {&r0, &r1, &r2}) {
    EXPECT_TRUE(replica->Verify(*id).ok());
  }
}

TEST_F(BitPreservationTest, ScrubQuarantinesOnlyWhenUnrepairable) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore store({&r0, &r1});
  auto id = store.Put("doomed object");
  ASSERT_TRUE(id.ok());
  Rot(Dir("r0"), *id);
  Rot(Dir("r1"), *id);

  auto report = ScrubReplicas({&r0, &r1}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->repaired, 0u);
  ASSERT_EQ(report->unrepairable.size(), 1u);
  EXPECT_EQ(report->unrepairable[0].id, *id);
  EXPECT_EQ(report->Verdict(), ScrubVerdict::kFail);
  // Both rotted copies were quarantined (by their stores' Verify) — the
  // forensic evidence survives for an operator restore.
  EXPECT_EQ(r0.QuarantinedIds(), std::vector<std::string>{*id});
  EXPECT_EQ(r1.QuarantinedIds(), std::vector<std::string>{*id});
}

TEST_F(BitPreservationTest, ScrubCursorResumesInterruptedPass) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore store({&r0, &r1});
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(store.Put("cursor object " + std::to_string(i)).ok());
  }
  ScrubOptions options;
  options.cursor_dir = Dir("cursor");
  options.max_objects = 3;
  options.batch_size = 2;

  // First invocation: truncated after 3 objects -> warn, incomplete.
  auto first = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->pass_number, 1u);
  EXPECT_EQ(first->objects_checked, 3u);
  EXPECT_FALSE(first->complete);
  EXPECT_EQ(first->Verdict(), ScrubVerdict::kWarn);

  // Second invocation resumes the same pass and finishes the remaining 4.
  options.max_objects = 0;
  auto second = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pass_number, 1u);
  EXPECT_EQ(second->objects_checked, 4u);
  EXPECT_TRUE(second->complete);
  EXPECT_EQ(second->Verdict(), ScrubVerdict::kPass);

  // Third invocation starts pass 2 from the top.
  auto third = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->pass_number, 2u);
  EXPECT_EQ(third->objects_checked, 7u);
}

TEST_F(BitPreservationTest, ScrubRateLimiterSleepsBetweenBatches) {
  MemoryObjectStore a, b;
  ReplicatedObjectStore store({&a, &b});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Put("throttled " + std::to_string(i)).ok());
  }
  double slept_ms = 0.0;
  int sleeps = 0;
  ScrubOptions options;
  options.batch_size = 2;
  options.rate_limit_per_s = 1000.0;  // 2 ms per 2-object batch
  options.sleeper = [&](double ms) {
    slept_ms += ms;
    ++sleeps;
  };
  auto report = ScrubReplicas({&a, &b}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(sleeps, 0);
  EXPECT_GT(slept_ms, 0.0);
  EXPECT_EQ(report->objects_checked, 8u);
}

TEST_F(BitPreservationTest, ScrubSerialAndParallelAgree) {
  auto fill = [&](const std::string& tag, FileObjectStore* r0,
                  FileObjectStore* r1) {
    ReplicatedObjectStore store({r0, r1});
    std::vector<std::string> ids;
    for (int i = 0; i < 12; ++i) {
      auto id = store.Put(tag + " object " + std::to_string(i));
      ids.push_back(*id);
    }
    return ids;
  };
  FileObjectStore s0(Dir("s0")), s1(Dir("s1"));
  FileObjectStore p0(Dir("p0")), p1(Dir("p1"));
  auto serial_ids = fill("same", &s0, &s1);
  auto parallel_ids = fill("same", &p0, &p1);
  Rot(Dir("s1"), serial_ids[5]);
  Rot(Dir("p1"), parallel_ids[5]);

  ScrubOptions serial_options;
  auto serial = ScrubReplicas({&s0, &s1}, serial_options);
  ThreadPool pool(4);
  ScrubOptions parallel_options;
  parallel_options.pool = &pool;
  auto parallel = ScrubReplicas({&p0, &p1}, parallel_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->objects_checked, parallel->objects_checked);
  EXPECT_EQ(serial->repaired, parallel->repaired);
  EXPECT_EQ(serial->Verdict(), parallel->Verdict());
}

// ------------------------------------------------- Generation migration --

TEST_F(BitPreservationTest, MigrateCopiesVerifiesAndSwapsGeneration) {
  FileObjectStore source(Dir("gen1"));
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = source.Put("generation payload " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  FileObjectStore target(Dir("gen2"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  auto report = MigrateGeneration(source, target, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(report->copied, 10u);
  EXPECT_EQ(report->skipped, 0u);
  EXPECT_EQ(report->verified, 10u);
  EXPECT_FALSE(report->resumed);
  EXPECT_EQ(ReadGeneration(Dir("state")), 1u);
  for (const std::string& id : ids) {
    EXPECT_TRUE(target.Verify(id).ok());
    EXPECT_TRUE(source.Verify(id).ok());  // source retained, untouched
  }
  // A second migration (same holdings) skips everything and bumps the
  // generation again.
  auto again = MigrateGeneration(source, target, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->generation, 2u);
  EXPECT_EQ(again->copied, 0u);
  EXPECT_EQ(again->skipped, 10u);
  EXPECT_EQ(again->verified, 10u);
}

// The PR-8 acceptance test: fault injection kills the migration mid-copy; a
// resumed run completes with every target object re-hashed byte-identical.
TEST_F(BitPreservationTest, MigrateResumesAfterMidCopyCrash) {
  FileObjectStore source(Dir("old"));
  std::vector<std::string> ids;
  for (int i = 0; i < 9; ++i) {
    auto id = source.Put("survives the crash " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  FileObjectStore target(Dir("new"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  options.batch_size = 2;

  // Inject a fault on the 5th copy operation — the run dies mid-copy.
  auto spec = FaultSpec::Parse("nth=5");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  options.faults = &plan;
  auto crashed = MigrateGeneration(source, target, options);
  EXPECT_FALSE(crashed.ok());
  EXPECT_EQ(ReadGeneration(Dir("state")), 0u);  // no swap

  // The resumed run (no faults) completes: already-copied objects skip,
  // the rest copy, and EVERY object is re-hashed on the target.
  options.faults = nullptr;
  auto resumed = MigrateGeneration(source, target, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->resumed);
  EXPECT_GT(resumed->skipped, 0u);
  EXPECT_EQ(resumed->skipped + resumed->copied, 9u);
  EXPECT_EQ(resumed->verified, 9u);
  EXPECT_EQ(resumed->generation, 1u);
  EXPECT_EQ(ReadGeneration(Dir("state")), 1u);
  for (const std::string& id : ids) {
    auto bytes = target.Get(id);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(Sha256::HashHex(*bytes), id);
  }
}

TEST_F(BitPreservationTest, MigrateRefusesSwapWhenFinalVerifyFails) {
  FileObjectStore source(Dir("src"));
  ASSERT_TRUE(source.Put("will not certify").ok());
  FileObjectStore target(Dir("dst"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  // Fault the final verification sweep: the copy phase passed one "copy"
  // op, so the 2nd consulted op is the verify.
  auto spec = FaultSpec::Parse("nth=2");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  options.faults = &plan;
  auto report = MigrateGeneration(source, target, options);
  EXPECT_FALSE(report.ok());
  // No generation marker: the swap never happened.
  EXPECT_EQ(ReadGeneration(Dir("state")), 0u);
}

TEST_F(BitPreservationTest, MigrateFromReplicatedSourceHealsWhileMoving) {
  // Migration composes with replication: the source can be a replica set,
  // and a rotted copy on the first replica is healed by the migration read.
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore source({&r0, &r1});
  auto id = source.Put("replicated source object");
  ASSERT_TRUE(id.ok());
  Rot(Dir("r0"), *id);

  FileObjectStore target(Dir("next-gen"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  auto report = MigrateGeneration(source, target, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->copied, 1u);
  EXPECT_TRUE(target.Verify(*id).ok());
  EXPECT_TRUE(r0.Verify(*id).ok());  // read-repair healed the source too
}

// ------------------------------------------- Pack backend in the fleet --

/// Flips a payload byte of the first record in a pack store's first
/// segment (simulated media rot on the packed copy).
void RotPack(const std::string& root) {
  const std::string path = root + "/segments/000000.seg";
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  const std::streamoff payload =
      static_cast<std::streamoff>(kPackSegmentHeaderSize) +
      static_cast<std::streamoff>(kPackRecordHeaderSize);
  file.seekg(payload);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(payload);
  file.write(&byte, 1);
}

TEST_F(BitPreservationTest, ReadRepairHealsRottedPackReplica) {
  // Mixed-backend replica set: the packfile replica rots, the loose
  // replicas stay healthy, and the falling-back Get heals the packed copy
  // by re-putting (a superseding record in the pack).
  PackObjectStore r0(Dir("pack0"));
  FileObjectStore r1(Dir("r1")), r2(Dir("r2"));
  ReplicatedObjectStore store({&r0, &r1, &r2});
  auto id = store.Put("packed custody");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(r0.Flush().ok());  // seal: the rot is read through the mmap
  RotPack(Dir("pack0"));

  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t repairs_before =
      registry.CounterValue(metric_names::kArchiveReadRepairsTotal);
  auto got = store.Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "packed custody");
  EXPECT_EQ(registry.CounterValue(metric_names::kArchiveReadRepairsTotal),
            repairs_before + 1);
  EXPECT_TRUE(r0.Verify(*id).ok());
  EXPECT_EQ(r0.QuarantinedIds(), std::vector<std::string>{*id});
}

TEST_F(BitPreservationTest, ScrubHealsRotOnPackReplica) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  PackObjectStore r2(Dir("pack2"));
  ReplicatedObjectStore store({&r0, &r1, &r2});
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = store.Put("mixed fleet object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(r2.Flush().ok());
  RotPack(Dir("pack2"));  // rots whichever object sits first in segment 0

  auto report = ScrubReplicas({&r0, &r1, &r2}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects_checked, 4u);
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_TRUE(report->unrepairable.empty());
  EXPECT_EQ(report->Verdict(), ScrubVerdict::kPass);
  for (const std::string& id : ids) {
    EXPECT_TRUE(r2.Verify(id).ok());
  }
}

TEST_F(BitPreservationTest, ScrubBackfillsEmptyPackReplica) {
  // Promote a loose replica set to include a brand-new pack replica: the
  // scrubber backfills every object into the packfiles.
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore loose({&r0, &r1});
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = loose.Put("backfill object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  PackObjectStore pack(Dir("pack"));
  auto report = ScrubReplicas({&r0, &r1, &pack}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->repaired, 5u);
  EXPECT_EQ(report->Verdict(), ScrubVerdict::kPass);
  for (const std::string& id : ids) {
    EXPECT_TRUE(pack.Verify(id).ok());
  }
}

TEST_F(BitPreservationTest, RepackMigrationResumesAfterFaultAbort) {
  // The `daspos repack` path: loose source, pack target, fault-aborted
  // mid-copy, resumed from durable state — every digest byte-identical.
  FileObjectStore source(Dir("loose"));
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = source.Put("repacked object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  PackObjectStore target(Dir("pack"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  options.batch_size = 2;
  auto spec = FaultSpec::Parse("nth=4");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  options.faults = &plan;
  auto crashed = MigrateGeneration(source, target, options);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(ReadGeneration(Dir("state")), 0u);

  options.faults = nullptr;
  auto resumed = MigrateGeneration(source, target, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->verified, 6u);
  EXPECT_GT(resumed->skipped, 0u);  // the pre-crash copies were reused
  EXPECT_EQ(ReadGeneration(Dir("state")), 1u);
  ASSERT_TRUE(target.Flush().ok());

  PackObjectStore reopened(Dir("pack"));
  for (size_t i = 0; i < ids.size(); ++i) {
    auto bytes = reopened.Get(ids[i]);
    ASSERT_TRUE(bytes.ok()) << ids[i];
    EXPECT_EQ(*bytes, "repacked object " + std::to_string(i));
    EXPECT_EQ(Sha256::HashHex(*bytes), ids[i]);
  }
}

}  // namespace
}  // namespace daspos
