// Tests for data tiers: dataset containers per tier, schema checks, and the
// skim/slim derivation engine with its reduction accounting.
#include <gtest/gtest.h>

#include "detsim/simulation.h"
#include "event/pdg.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "tiers/dataset.h"
#include "tiers/skimslim.h"
#include "tiers/tier.h"

namespace daspos {
namespace {

TEST(TierTest, NamesAndSchemas) {
  EXPECT_EQ(TierName(DataTier::kRaw), "RAW");
  EXPECT_EQ(TierName(DataTier::kAod), "AOD");
  EXPECT_EQ(TierSchema(DataTier::kGen), "daspos.gen.v1");
  EXPECT_EQ(TierSchema(DataTier::kDerived), "daspos.derived.v1");
}

// ----------------------------------------------------------------- Dataset

std::vector<GenEvent> SmallSample(int n) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.seed = 71;
  EventGenerator gen(config);
  return gen.GenerateMany(static_cast<size_t>(n));
}

TEST(DatasetTest, GenRoundTripWithMetadata) {
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "zmm_gen";
  info.producer = "generation v1.0";
  info.description = "test sample";
  std::vector<GenEvent> events = SmallSample(20);
  std::string blob = WriteGenDataset(info, events);

  DatasetInfo restored_info;
  auto restored = ReadGenDataset(blob, &restored_info);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 20u);
  EXPECT_EQ(restored_info.name, "zmm_gen");
  EXPECT_EQ(restored_info.tier, DataTier::kGen);
  EXPECT_EQ((*restored)[7].event_number, events[7].event_number);
  EXPECT_EQ((*restored)[7].particles.size(), events[7].particles.size());
}

TEST(DatasetTest, TierMismatchRejected) {
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "x";
  std::string blob = WriteGenDataset(info, SmallSample(1));
  EXPECT_TRUE(ReadRawDataset(blob).status().IsInvalidArgument());
  EXPECT_TRUE(ReadAodDataset(blob).status().IsInvalidArgument());
}

TEST(DatasetTest, CorruptionDetectedOnRead) {
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "x";
  std::string blob = WriteGenDataset(info, SmallSample(3));
  blob[blob.size() / 2] ^= 0x02;
  EXPECT_TRUE(ReadGenDataset(blob).status().IsCorruption());
}

TEST(DatasetTest, ReadDatasetInfoOnly) {
  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = "peek";
  info.parents = {"parent_a", "parent_b"};
  std::string blob = WriteGenDataset(info, SmallSample(2));
  auto peeked = ReadDatasetInfo(blob);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked->name, "peek");
  ASSERT_EQ(peeked->parents.size(), 2u);
  EXPECT_EQ(peeked->parents[1], "parent_b");
}

// ------------------------------------------------------ full-chain fixture

/// Builds a small AOD dataset through the real chain once per suite.
class SkimSlimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig gen_config;
    gen_config.process = Process::kZToLL;
    gen_config.lepton_flavor = pdg::kMuon;
    gen_config.seed = 72;
    EventGenerator gen(gen_config);

    SimulationConfig sim_config;
    sim_config.seed = 73;
    sim_config.noise_cells_mean = 5.0;
    DetectorSimulation sim(sim_config);

    ReconstructionConfig reco_config;
    reco_config.geometry = sim_config.geometry;
    reco_config.calib = sim_config.calib;
    Reconstructor reco(reco_config);

    std::vector<AodEvent> aod;
    for (int i = 0; i < 120; ++i) {
      aod.push_back(AodEvent::FromReco(
          reco.Reconstruct(sim.Simulate(gen.Generate(), 1))));
    }
    DatasetInfo info;
    info.tier = DataTier::kAod;
    info.name = "zmm_aod";
    info.producer = "test-chain";
    aod_blob_ = new std::string(WriteAodDataset(info, aod));
  }
  static void TearDownTestSuite() {
    delete aod_blob_;
    aod_blob_ = nullptr;
  }

  static const std::string& aod_blob() { return *aod_blob_; }

 private:
  static const std::string* aod_blob_;
};

const std::string* SkimSlimTest::aod_blob_ = nullptr;

// ---------------------------------------------------------------- SkimSpec

TEST_F(SkimSlimTest, SkimAllKeepsEverything) {
  DerivationStats stats;
  auto blob = DeriveDataset(aod_blob(), "derived_all", SkimSpec::All(),
                            SlimSpec::None(), &stats);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(stats.input_events, 120u);
  EXPECT_EQ(stats.output_events, 120u);
}

TEST_F(SkimSlimTest, RequireObjectsSelects) {
  DerivationStats stats;
  auto blob = DeriveDataset(aod_blob(), "derived_dimuon",
                            SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0),
                            SlimSpec::None(), &stats);
  ASSERT_TRUE(blob.ok());
  // Z->mumu with acceptance: a fraction survives, but not all, not none.
  EXPECT_GT(stats.output_events, 10u);
  EXPECT_LT(stats.output_events, 120u);
  // Every surviving event really has two such muons.
  auto events = ReadAodDataset(*blob);
  ASSERT_TRUE(events.ok());
  for (const AodEvent& event : *events) {
    int muons = 0;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kMuon && obj.momentum.Pt() > 10.0) ++muons;
    }
    EXPECT_GE(muons, 2);
  }
}

TEST_F(SkimSlimTest, SkimIsMonotonic) {
  // Tighter cuts can only reduce the yield.
  DerivationStats loose, tight;
  ASSERT_TRUE(DeriveDataset(aod_blob(), "d1",
                            SkimSpec::RequireObjects(ObjectType::kMuon, 1, 5.0),
                            SlimSpec::None(), &loose)
                  .ok());
  ASSERT_TRUE(
      DeriveDataset(aod_blob(), "d2",
                    SkimSpec::RequireObjects(ObjectType::kMuon, 2, 20.0),
                    SlimSpec::None(), &tight)
          .ok());
  EXPECT_GE(loose.output_events, tight.output_events);
}

TEST_F(SkimSlimTest, TriggerSkim) {
  DerivationStats stats;
  ASSERT_TRUE(DeriveDataset(aod_blob(), "d_trig",
                            SkimSpec::RequireTrigger(TriggerBits::kMuon),
                            SlimSpec::None(), &stats)
                  .ok());
  EXPECT_GT(stats.output_events, 0u);
  EXPECT_LE(stats.output_events, stats.input_events);
}

// ---------------------------------------------------------------- SlimSpec

TEST_F(SkimSlimTest, SlimDropsObjectTypesButKeepsMet) {
  DerivationStats stats;
  auto blob = DeriveDataset(aod_blob(), "d_slim", SkimSpec::All(),
                            SlimSpec::LeptonsOnly(5.0), &stats);
  ASSERT_TRUE(blob.ok());
  auto events = ReadAodDataset(*blob);
  ASSERT_TRUE(events.ok());
  for (const AodEvent& event : *events) {
    int met = 0;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == ObjectType::kMet) {
        ++met;
        continue;
      }
      EXPECT_TRUE(obj.type == ObjectType::kElectron ||
                  obj.type == ObjectType::kMuon);
      EXPECT_GE(obj.momentum.Pt(), 5.0);
    }
    EXPECT_EQ(met, 1);
  }
}

TEST_F(SkimSlimTest, SlimReducesBytes) {
  DerivationStats stats;
  ASSERT_TRUE(DeriveDataset(aod_blob(), "d_small", SkimSpec::All(),
                            SlimSpec::LeptonsOnly(5.0), &stats)
                  .ok());
  EXPECT_LT(stats.output_bytes, stats.input_bytes);
  EXPECT_LT(stats.SizeReduction(), 1.0);
  EXPECT_DOUBLE_EQ(stats.EventReduction(), 1.0);
}

TEST_F(SkimSlimTest, DerivedMetadataRecordsLogicalDescription) {
  auto blob = DeriveDataset(aod_blob(), "d_meta",
                            SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0),
                            SlimSpec::LeptonsOnly(10.0));
  ASSERT_TRUE(blob.ok());
  DatasetInfo info;
  auto events = ReadAodDataset(*blob, &info);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(info.tier, DataTier::kDerived);
  ASSERT_EQ(info.parents.size(), 1u);
  EXPECT_EQ(info.parents[0], "zmm_aod");
  EXPECT_NE(info.producer.find("skim="), std::string::npos);
  EXPECT_NE(info.producer.find("slim="), std::string::npos);
}

TEST(SlimSpecTest, ApplyOnEmptyEvent) {
  AodEvent event;
  AodEvent slimmed = SlimSpec::LeptonsOnly(10.0).Apply(event);
  EXPECT_TRUE(slimmed.objects.empty());
}

TEST(DerivationStatsTest, ZeroDenominators) {
  DerivationStats stats;
  EXPECT_DOUBLE_EQ(stats.EventReduction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.SizeReduction(), 0.0);
}

}  // namespace
}  // namespace daspos
