#!/bin/sh
# End-to-end smoke test of the daspos CLI. First argument: path to the
# binary; optional second argument: path to the dasposd daemon (enables the
# network-service lifecycle section). Exercises generate (gen + aod tiers),
# inspect, lhada-check, lhada-run, and display; any non-zero exit fails the
# test.
set -e
DASPOS="$1"
DASPOSD="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$DASPOS" generate z_ll 30 42 "$WORK/z_gen.dspc"
"$DASPOS" inspect "$WORK/z_gen.dspc" | grep -q "tier    : GEN"

"$DASPOS" generate z_ll 30 42 "$WORK/z_aod.dspc" aod
"$DASPOS" inspect "$WORK/z_aod.dspc" | grep -q "tier    : AOD"

"$DASPOS" generate z_ll 10 42 "$WORK/z_reco.dspc" reco
"$DASPOS" display "$WORK/z_reco.dspc" 0 | grep -q '"tracks"'

cat > "$WORK/dimuon.lhada" <<'LHADA'
analysis smoke
object muons
  take muon
  select pt > 15
cut dimuon
  select count(muons) >= 2
LHADA
"$DASPOS" lhada-check "$WORK/dimuon.lhada" | grep -q "analysis smoke"
"$DASPOS" lhada-run "$WORK/dimuon.lhada" "$WORK/z_aod.dspc" | grep -q "dimuon"


# Parallel workflow engine: the standard chain prints a per-step timing
# table, and the JSON report carries per-step metrics.
"$DASPOS" chain z_ll 10 7 2 | grep -q "reconstruction"
"$DASPOS" chain z_ll 10 7 2 --json | grep -q '"wall_ms"'

# Thread control: --threads and DASPOS_THREADS are equivalent to the
# positional count; the JSON report carries pool utilization; --threads=1
# forces strictly serial execution; identical outputs are implied by the
# byte-identical provenance (covered in parallel_test) so here we only
# check the plumbing.
"$DASPOS" chain z_ll 10 7 --threads=4 --json | grep -q '"pool"'
"$DASPOS" chain z_ll 10 7 --threads=1 | grep -q "1 thread(s)"
DASPOS_THREADS=2 "$DASPOS" chain z_ll 10 7 | grep -q "2 thread(s)"
if "$DASPOS" chain z_ll 10 7 --threads=bogus 2>/dev/null; then
  echo "chain accepted a malformed --threads value" >&2
  exit 1
fi

# Batched archive ingest: deposit files in parallel, then audit and
# retrieve them; digest-cache counters are reported.
"$DASPOS" ingest "$WORK/archive" "smoke package" \
  "$WORK/z_gen.dspc" "$WORK/z_aod.dspc" "$WORK/z_reco.dspc" --threads=4 \
  | grep -q "digest cache:"
"$DASPOS" holdings "$WORK/archive" | grep -q "smoke package"
"$DASPOS" audit "$WORK/archive" --threads=2 | grep -q "verdict: CLEAN"

# Fault tolerance: retries and a step timeout are accepted; a journaled run
# checkpoints every step, and resuming it re-executes nothing.
"$DASPOS" chain z_ll 10 7 2 --retries=2 --step-timeout=60 >/dev/null
"$DASPOS" chain z_ll 10 7 2 --journal="$WORK/run1" >/dev/null
grep -q '"step"' "$WORK/run1/journal.jsonl"
"$DASPOS" chain z_ll 10 7 2 --resume="$WORK/run1" | grep -q "resumed 5 step(s)"
# Chaos mode: injected faults are reported, and with retries the chain
# still completes.
"$DASPOS" chain z_ll 10 7 2 --retries=50 --inject-faults=seed=3,rate=0.2 \
  | grep -q "fault injection:"

# Observability: --trace-out writes a Chrome trace_event JSON with one span
# per workflow step; the JSON report carries the registry snapshot; and the
# metrics command emits Prometheus text exposition (with and without a
# workload, including the archive cache counters at zero).
"$DASPOS" chain z_ll 10 7 2 --trace-out="$WORK/trace.json" \
  | grep -q "span(s) written to"
grep -q '"displayTimeUnit":"ms"' "$WORK/trace.json"
grep -qF '"name":"step:reconstruction[reco]"' "$WORK/trace.json"
grep -q '"name":"workflow:execute"' "$WORK/trace.json"
"$DASPOS" chain z_ll 10 7 2 --json | grep -q '"metrics"'
if "$DASPOS" chain z_ll 10 7 2 --trace-out= 2>/dev/null; then
  echo "chain accepted an empty --trace-out path" >&2
  exit 1
fi
"$DASPOS" metrics | grep -q "daspos_archive_digest_cache_hits_total 0"
"$DASPOS" metrics | grep -q "# TYPE daspos_workflow_step_wall_ms histogram"
"$DASPOS" metrics z_ll 10 7 | grep -q "daspos_workflow_steps_total 5"

"$DASPOS" export "$WORK/z_reco.dspc" Atlas "$WORK/z_atlas.xml"
grep -q "JiveEvent" "$WORK/z_atlas.xml"
"$DASPOS" convert "$WORK/z_atlas.xml" Atlas CMS "$WORK/z_cms.ig"
grep -q "ig_file_version" "$WORK/z_cms.ig"

# Preservation linter: a clean description passes, warnings show up as
# findings (JSON included) without failing the default error threshold,
# and --fail-on=warning turns them into a non-zero exit for CI.
"$DASPOS" lint "$WORK/dimuon.lhada" | grep -q "1 artifact(s) clean"
cat > "$WORK/unused.lhada" <<'LHADA'
analysis smoke
object muons
  take muon
object jets
  take jet
cut dimuon
  select count(muons) >= 2
LHADA
"$DASPOS" lint "$WORK/unused.lhada" | grep -q "L005"
"$DASPOS" lint --json "$WORK/unused.lhada" | grep -q '"code": "L005"'
if "$DASPOS" lint --fail-on=warning "$WORK/unused.lhada" >/dev/null; then
  echo "lint --fail-on=warning ignored a warning finding" >&2
  exit 1
fi

# Continuous-validation farm: capture a campaign into an archive, then
# re-execute the matrix (clean, with a journal, and under fault injection).
"$DASPOS" validate "$WORK/farm" --capture=smoke25 --process=z_ll \
  --events=25 --seed=9 --analyses=DASPOS_2014_ZLL \
  | grep -q "captured campaign 'smoke25'"
"$DASPOS" validate "$WORK/farm" | grep -q "verdict: PASS (1 pass, 0 warn, 0 fail)"
"$DASPOS" validate "$WORK/farm" --json --report="$WORK/vreport.json" \
  | grep -q '"verdict": "pass"'
grep -q '"chain_identical": true' "$WORK/vreport.json"
"$DASPOS" validate "$WORK/farm" --journal="$WORK/vjournal" >/dev/null
grep -q '"step"' "$WORK/vjournal/smoke25/journal.jsonl"
"$DASPOS" validate "$WORK/farm" --retries=50 --inject-faults=seed=3,rate=0.2 \
  | grep -q "fault injection:"
# An injected fault with no retry budget must fail the matrix (exit 1).
if "$DASPOS" validate "$WORK/farm" --inject-faults=nth=1 >/dev/null; then
  echo "validate passed despite an unretried injected fault" >&2
  exit 1
fi
"$DASPOS" validate "$WORK/farm" --prometheus="$WORK/vprom.txt" >/dev/null
grep -q "daspos_validation_pass_total" "$WORK/vprom.txt"
# An unreadable store must fail the audit, not pass vacuously.
echo "not a store" > "$WORK/notastore"
if "$DASPOS" audit "$WORK/notastore" >/dev/null 2>&1; then
  echo "audit passed over an unreadable store" >&2
  exit 1
fi

# Bit preservation: replicate an archive store across three roots, rot one
# replica on disk, and scrub — the pass must repair the rot and exit 0.
"$DASPOS" ingest "$WORK/rep0" "bit preservation" "$WORK/z_gen.dspc" >/dev/null
cp -r "$WORK/rep0" "$WORK/rep1"
cp -r "$WORK/rep0" "$WORK/rep2"
ROTTED=$(find "$WORK/rep1" -type f | head -1)
echo "bit rot" > "$ROTTED"
"$DASPOS" scrub "$WORK/rep0" "$WORK/rep1" "$WORK/rep2" \
  --cursor="$WORK/scrub-cursor" --report="$WORK/scrub.json" \
  | grep -q "1 repaired"
grep -q '"verdict": "pass"' "$WORK/scrub.json"
# A second pass over the healed replicas is clean and advances the pass
# counter (the cursor survived the first invocation).
"$DASPOS" scrub "$WORK/rep0" "$WORK/rep1" "$WORK/rep2" \
  --cursor="$WORK/scrub-cursor" | grep -q "scrub pass 2"
# A truncated pass exits 2 (warn) per the validate exit-code contract.
if "$DASPOS" scrub "$WORK/rep0" --max-objects=1 >/dev/null; then
  echo "truncated scrub exited 0 instead of warning" >&2
  exit 1
fi

# Generation migration: a fault-injected run dies mid-copy and preserves its
# state; the resumed run completes with every object verified and swaps the
# generation marker.
if "$DASPOS" migrate "$WORK/rep0" "$WORK/gen2" --batch=1 \
  --inject-faults=nth=2 >/dev/null 2>&1; then
  echo "fault-injected migrate claimed success" >&2
  exit 1
fi
"$DASPOS" migrate "$WORK/rep0" "$WORK/gen2" | grep -q "(resumed)"
grep -q '"generation": 1' "$WORK/gen2/migrate-state/GENERATION"
"$DASPOS" audit "$WORK/gen2" | grep -q "verdict: CLEAN"

# Packfile backend: repack the loose archive into (compressed) packfiles,
# audit it CLEAN through an explicit pack: spec AND through bare-path
# sniffing, and check retrieval is byte-identical to the loose original.
"$DASPOS" repack "$WORK/rep0" "$WORK/packed" --compress \
  | grep -q "packed .* object(s) into .* segment(s)"
test -f "$WORK/packed/segments/000000.seg"
test -f "$WORK/packed/segments/000000.idx"
"$DASPOS" audit "pack:$WORK/packed" | grep -q "verdict: CLEAN"
"$DASPOS" audit "$WORK/packed" | grep -q "verdict: CLEAN"  # sniffed
"$DASPOS" holdings "$WORK/packed" | grep -q "bit preservation"
mkdir -p "$WORK/outloose" "$WORK/outpack"
# Package ids are content-addressed, so re-ingesting the same title+file
# into a scratch store reveals the id to retrieve from both backends.
PKGID=$("$DASPOS" ingest "$WORK/idprobe" "bit preservation" \
  "$WORK/z_gen.dspc" | sed -n 's/.*as package \([0-9a-f]*\)$/\1/p')
"$DASPOS" retrieve "$WORK/rep0" "$PKGID" "$WORK/outloose" >/dev/null
"$DASPOS" retrieve "pack:$WORK/packed" "$PKGID" "$WORK/outpack" >/dev/null
cmp "$WORK/outloose/z_gen.dspc" "$WORK/outpack/z_gen.dspc"
# Torn-tail crash recovery: chop bytes off the segment log, drop the
# sidecar (as an interrupted append would), and the store must reopen,
# scrub back to health from a loose replica, and audit CLEAN again.
SEG="$WORK/packed/segments/000000.seg"
SIZE=$(wc -c < "$SEG")
dd if=/dev/null of="$SEG" bs=1 seek=$((SIZE - 7)) 2>/dev/null
rm -f "$WORK/packed/segments/000000.idx"
"$DASPOS" scrub "$WORK/rep0" "pack:$WORK/packed" | grep -q "repaired"
"$DASPOS" audit "pack:$WORK/packed" | grep -q "verdict: CLEAN"
# A typo'd backend scheme fails loudly instead of creating a directory.
if "$DASPOS" audit "pakc:$WORK/packed" >/dev/null 2>&1; then
  echo "audit accepted an unknown backend scheme" >&2
  exit 1
fi

# Corrupt the dataset: inspect must refuse.
head -c 1000 "$WORK/z_gen.dspc" > "$WORK/broken.dspc"
if "$DASPOS" inspect "$WORK/broken.dspc" 2>/dev/null; then
  echo "inspect accepted a truncated container" >&2
  exit 1
fi

# Network service lifecycle (docs/OPERATIONS.md): start dasposd on an
# ephemeral port against a pack backend, round-trip put/get/verify
# byte-identically through `daspos connect`, then SIGTERM and assert a
# clean drain — exit 0 and no orphaned temp files left behind.
if [ -n "$DASPOSD" ]; then
  "$DASPOSD" "pack:$WORK/netstore" --port-file="$WORK/port.txt" \
    > "$WORK/dasposd.log" 2>&1 &
  DPID=$!
  i=0
  while [ ! -s "$WORK/port.txt" ] && [ $i -lt 100 ]; do
    i=$((i + 1)); sleep 0.1
  done
  PORT=$(cat "$WORK/port.txt")
  ADDR="127.0.0.1:$PORT"
  grep -q "listening on $ADDR" "$WORK/dasposd.log"
  "$DASPOS" connect "$ADDR" ping | grep -q "pong"
  NETID=$("$DASPOS" connect "$ADDR" put "$WORK/z_gen.dspc" \
    | sed -n 's/^\([0-9a-f]\{64\}\).*/\1/p')
  test -n "$NETID"
  "$DASPOS" connect "$ADDR" get "$NETID" "$WORK/z_gen_back.dspc" >/dev/null
  cmp "$WORK/z_gen.dspc" "$WORK/z_gen_back.dspc"
  "$DASPOS" connect "$ADDR" verify "$NETID" | grep -q "verified"
  "$DASPOS" connect "$ADDR" stat | grep -q '"backend": "pack"'
  kill -TERM "$DPID"
  DRAIN_RC=0
  wait "$DPID" || DRAIN_RC=$?
  if [ "$DRAIN_RC" -ne 0 ]; then
    echo "dasposd did not drain cleanly (exit $DRAIN_RC)" >&2
    cat "$WORK/dasposd.log" >&2
    exit 1
  fi
  grep -q "drained after" "$WORK/dasposd.log"
  if find "$WORK/netstore" -name '*.tmp' | grep -q .; then
    echo "dasposd drain left orphaned temp files in the store" >&2
    exit 1
  fi
fi

echo "cli smoke: OK"
