// MUST NOT COMPILE under -Werror=thread-safety: returns with a mutex
// still held on one path (every later caller deadlocks). Verified by
// compile_fail/run.sh (phase 1 proves it is otherwise valid C++).
#include "support/sync.h"

namespace {

daspos::Mutex g_mu;
int g_value DASPOS_GUARDED_BY(g_mu) = 0;

}  // namespace

int TakeIfPositive() {
  g_mu.Lock();
  int value = g_value;
  if (value > 0) {
    g_value = 0;
    // BUG: early return leaks the lock; the function never unlocks here.
    return value;
  }
  g_mu.Unlock();
  return 0;
}
