// MUST NOT COMPILE under -Werror=thread-safety: reads a guarded field
// without holding its mutex. Verified by compile_fail/run.sh (phase 1
// proves it is otherwise valid C++).
#include "support/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    daspos::MutexLock lock(mu_);
    ++value_;
  }

  // BUG: value_ is guarded by mu_, but this read takes no lock.
  int UnguardedRead() const { return value_; }

 private:
  mutable daspos::Mutex mu_;
  int value_ DASPOS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int Use() {
  Counter counter;
  counter.Increment();
  return counter.UnguardedRead();
}
