// MUST NOT COMPILE under -Werror=thread-safety: acquires a mutex it
// already holds (self-deadlock on a non-recursive lock). Verified by
// compile_fail/run.sh (phase 1 proves it is otherwise valid C++).
#include "support/sync.h"

namespace {

daspos::Mutex g_mu;
int g_value DASPOS_GUARDED_BY(g_mu) = 0;

}  // namespace

void DoubleLock() {
  g_mu.Lock();
  // BUG: g_mu is already held; this second acquisition deadlocks.
  g_mu.Lock();
  ++g_value;
  g_mu.Unlock();
  g_mu.Unlock();
}
