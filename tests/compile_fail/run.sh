#!/usr/bin/env bash
# Negative compile test driver for the thread-safety annotations in
# src/support/sync.h. Each fixture encodes one lock-discipline mistake that
# Clang's analysis must reject:
#
#   phase 1: the fixture COMPILES CLEANLY without the analysis flags
#            (proves the fixture is valid C++, not just broken code), then
#   phase 2: the same fixture FAILS with -Wthread-safety promoted to an
#            error, and the diagnostic names a thread-safety warning
#            (proves the failure comes from the analysis, not a typo).
#
# Exit codes: 0 = fixture behaves as required, 1 = it does not,
# 125 = no Clang available (ctest SKIP_RETURN_CODE; the analysis is a
# Clang-only feature and the annotations are inert elsewhere).
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <fixture.cc> <src-include-dir>" >&2
  exit 1
fi
fixture="$1"
include_dir="$2"

# Honor an explicit compiler first (the build passes its own when it is
# Clang), then fall back to whatever clang++ is on PATH.
clangxx="${DASPOS_CLANGXX:-}"
if [ -z "$clangxx" ] || ! "$clangxx" --version 2>/dev/null | grep -qi clang; then
  clangxx="$(command -v clang++ || true)"
fi
if [ -z "$clangxx" ]; then
  echo "SKIP: no clang++ available; thread-safety analysis is Clang-only" >&2
  exit 125
fi

common=(-std=c++20 -fsyntax-only "-I$include_dir")

# Unique stderr captures so fixtures can run in parallel under ctest.
errdir="$(mktemp -d)"
trap 'rm -rf "$errdir"' EXIT

# Phase 1: valid C++ without the analysis.
if ! "$clangxx" "${common[@]}" "$fixture" 2>"$errdir/phase1.err"; then
  echo "FAIL: $fixture does not compile even without -Wthread-safety:" >&2
  cat "$errdir/phase1.err" >&2
  exit 1
fi

# Phase 2: the analysis must reject it, for a thread-safety reason.
if "$clangxx" "${common[@]}" -Wthread-safety -Wthread-safety-beta \
    -Werror=thread-safety -Werror=thread-safety-beta \
    "$fixture" 2>"$errdir/phase2.err"; then
  echo "FAIL: $fixture compiled despite its lock-discipline bug" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$errdir/phase2.err"; then
  echo "FAIL: $fixture failed to compile, but not for a thread-safety" \
       "reason:" >&2
  cat "$errdir/phase2.err" >&2
  exit 1
fi

echo "PASS: $fixture rejected by the thread-safety analysis"
