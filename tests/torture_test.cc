// Crash-consistency torture tests for the bit-preservation layer: every
// durable artifact (atomic file writes, journals, scrub cursors, migration
// state) is attacked at its weakest moments — stale temp files, truncated
// tails, aborts at every possible fault point — and must either present the
// old state or the new state, never a torn one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "archive/migrate.h"
#include "archive/object_store.h"
#include "archive/pack_store.h"
#include "archive/replicated_store.h"
#include "archive/scrub.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/sha256.h"
#include "workflow/journal.h"

namespace daspos {
namespace {

namespace fs = std::filesystem;

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("daspos_torture_" + std::string(
                                      ::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()) +
              "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::string Dir(const std::string& name) const { return base_ + "/" + name; }

  std::string base_;
};

// ------------------------------------------------------- AtomicWriteFile --

TEST_F(TortureTest, AtomicWriteSurvivesStaleTempFiles) {
  const std::string path = base_ + "/state.json";
  ASSERT_TRUE(AtomicWriteFile(path, "old state").ok());
  // Simulate a crash that left torn temp files from an earlier writer.
  std::ofstream(path + ".tmp.999.0", std::ios::binary) << "torn gar";
  std::ofstream(path + ".tmp.999.1", std::ios::binary) << "";
  ASSERT_TRUE(AtomicWriteFile(path, "new state").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new state");  // never a blend of old/new/garbage
}

// ---------------------------------------------------------- Run journal --

TEST_F(TortureTest, JournalToleratesCrashTruncatedTail) {
  const std::string dir = Dir("journal");
  {
    auto journal = RunJournal::Open(dir);
    ASSERT_TRUE(journal.ok());
    RunJournal::Record record;
    record.step = "generation";
    record.output = "gen.dat";
    record.config_hash = "cfg1";
    ASSERT_TRUE((*journal)->Append(record, "blob one").ok());
    record.step = "simulation";
    record.output = "sim.dat";
    ASSERT_TRUE((*journal)->Append(record, "blob two").ok());
  }
  // Crash mid-append: keep the first line intact and tear the second a few
  // bytes in.
  const std::string lines_path = RunJournal::LinesPath(dir);
  auto text = ReadFileToString(lines_path);
  ASSERT_TRUE(text.ok());
  const size_t first_newline = text->find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  ASSERT_TRUE(
      WriteStringToFile(lines_path, text->substr(0, first_newline + 15)).ok());

  auto reopened = RunJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  // The first record survives intact — blob durable before line — and the
  // torn tail is ignored rather than poisoning the load.
  auto found = (*reopened)->Find("generation");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*(*reopened)->LoadBlob(found->digest), "blob one");
  EXPECT_FALSE((*reopened)->Find("simulation").has_value());
}

// ---------------------------------------------------------- Scrub cursor --

TEST_F(TortureTest, ScrubResumesPastTruncatedCursorTail) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore store({&r0, &r1});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Put("cursored " + std::to_string(i)).ok());
  }
  ScrubOptions options;
  options.cursor_dir = Dir("cursor");
  options.batch_size = 2;
  options.max_objects = 6;  // stop mid-pass with three checkpoint lines
  auto first = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->complete);

  // Crash mid-append: tear the final cursor line.
  const std::string cursor_path = Dir("cursor") + "/scrub_cursor.jsonl";
  auto text = ReadFileToString(cursor_path);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(
      WriteStringToFile(cursor_path, text->substr(0, text->size() - 10)).ok());

  // The rerun falls back to the last intact checkpoint (objects 1-4) and
  // re-scrubs from there; total coverage is still every object, exactly
  // once per surviving checkpoint boundary.
  options.max_objects = 0;
  auto second = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pass_number, 1u);
  EXPECT_EQ(second->objects_checked, 4u);  // objects 5-8: torn batch redone
  EXPECT_TRUE(second->complete);
  EXPECT_EQ(second->Verdict(), ScrubVerdict::kPass);
}

TEST_F(TortureTest, ScrubCursorGarbageFallsBackToFreshPass) {
  FileObjectStore r0(Dir("r0")), r1(Dir("r1"));
  ReplicatedObjectStore store({&r0, &r1});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Put("fresh " + std::to_string(i)).ok());
  }
  fs::create_directories(Dir("cursor"));
  ASSERT_TRUE(WriteStringToFile(Dir("cursor") + "/scrub_cursor.jsonl",
                                "not json at all\n{{{\n")
                  .ok());
  ScrubOptions options;
  options.cursor_dir = Dir("cursor");
  auto report = ScrubReplicas({&r0, &r1}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pass_number, 1u);
  EXPECT_EQ(report->objects_checked, 3u);
  EXPECT_TRUE(report->complete);
}

// ------------------------------------------------- Migration fault sweep --

// Abort the migration at EVERY possible copy/verify fault point in turn;
// after each simulated crash a clean rerun must converge: every object
// re-hashed byte-identical on the target, generation marker swapped once.
TEST_F(TortureTest, MigrationRecoversFromAbortAtEveryFaultPoint) {
  const int kObjects = 5;
  FileObjectStore source(Dir("source"));
  std::vector<std::string> ids;
  for (int i = 0; i < kObjects; ++i) {
    auto id = source.Put("torture object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  // kObjects copy ops + kObjects verify ops is the worst-case op count of a
  // single clean run; aborting at each ordinal covers both phases.
  for (int nth = 1; nth <= 2 * kObjects; ++nth) {
    const std::string tag = std::to_string(nth);
    FileObjectStore target(Dir("target" + tag));
    MigrateOptions options;
    options.state_dir = Dir("state" + tag);
    options.batch_size = 2;

    auto spec = FaultSpec::Parse("nth=" + tag);
    ASSERT_TRUE(spec.ok());
    FaultPlan plan(*spec);
    options.faults = &plan;
    auto crashed = MigrateGeneration(source, target, options);
    if (crashed.ok()) {
      // The fault ordinal was past the ops this run needed — a clean first
      // run; the swap must have happened.
      EXPECT_EQ(ReadGeneration(options.state_dir), 1u) << "nth=" << nth;
    } else {
      EXPECT_EQ(ReadGeneration(options.state_dir), 0u) << "nth=" << nth;
      options.faults = nullptr;
      auto resumed = MigrateGeneration(source, target, options);
      ASSERT_TRUE(resumed.ok()) << "nth=" << nth << ": "
                                << resumed.status().ToString();
      EXPECT_EQ(resumed->verified, static_cast<uint64_t>(kObjects))
          << "nth=" << nth;
      EXPECT_EQ(ReadGeneration(options.state_dir), 1u) << "nth=" << nth;
    }
    for (const std::string& id : ids) {
      auto bytes = target.Get(id);
      ASSERT_TRUE(bytes.ok()) << "nth=" << nth;
      EXPECT_EQ(Sha256::HashHex(*bytes), id) << "nth=" << nth;
    }
  }
}

// The repack path under the same torture: loose source, PACKFILE target,
// aborted at every copy/verify fault point. The pack store's append-fsync
// and supersede-on-re-put semantics must make every resume converge to
// byte-identical digests, exactly like the loose target.
TEST_F(TortureTest, PackMigrationRecoversFromAbortAtEveryFaultPoint) {
  const int kObjects = 5;
  FileObjectStore source(Dir("source"));
  std::vector<std::string> ids;
  for (int i = 0; i < kObjects; ++i) {
    auto id = source.Put("pack torture object " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  for (int nth = 1; nth <= 2 * kObjects; ++nth) {
    const std::string tag = std::to_string(nth);
    PackObjectStore target(Dir("pack" + tag));
    MigrateOptions options;
    options.state_dir = Dir("state" + tag);
    options.batch_size = 2;

    auto spec = FaultSpec::Parse("nth=" + tag);
    ASSERT_TRUE(spec.ok());
    FaultPlan plan(*spec);
    options.faults = &plan;
    auto crashed = MigrateGeneration(source, target, options);
    if (crashed.ok()) {
      EXPECT_EQ(ReadGeneration(options.state_dir), 1u) << "nth=" << nth;
    } else {
      EXPECT_EQ(ReadGeneration(options.state_dir), 0u) << "nth=" << nth;
      options.faults = nullptr;
      auto resumed = MigrateGeneration(source, target, options);
      ASSERT_TRUE(resumed.ok()) << "nth=" << nth << ": "
                                << resumed.status().ToString();
      EXPECT_EQ(resumed->verified, static_cast<uint64_t>(kObjects))
          << "nth=" << nth;
      EXPECT_EQ(ReadGeneration(options.state_dir), 1u) << "nth=" << nth;
    }
    for (const std::string& id : ids) {
      auto bytes = target.Get(id);
      ASSERT_TRUE(bytes.ok()) << "nth=" << nth;
      EXPECT_EQ(Sha256::HashHex(*bytes), id) << "nth=" << nth;
    }
  }
}

// Tear the pack segment log at EVERY byte offset in turn: each truncation
// simulates a crash mid-append. Reopening must never fail, must serve
// exactly the records whose bytes fully survived, and must accept new
// appends afterwards — the segment log's crash contract.
TEST_F(TortureTest, PackStoreSurvivesSegmentTornAtEveryOffset) {
  const int kObjects = 3;
  const std::string pristine = Dir("pristine");
  std::vector<std::string> ids;
  std::vector<std::string> payloads;
  {
    PackObjectStore store(pristine);
    for (int i = 0; i < kObjects; ++i) {
      payloads.push_back("torn-tail record " + std::to_string(i));
      auto id = store.Put(payloads.back());
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    // No Flush: the crash happens before any seal, like a real torn append.
  }
  const std::string seg = "/segments/000000.seg";
  const uint64_t full_size = fs::file_size(pristine + seg);
  // Record boundaries, to predict which records survive a cut at `offset`.
  std::vector<uint64_t> ends;
  {
    uint64_t end = kPackSegmentHeaderSize;
    for (const std::string& payload : payloads) {
      end += kPackRecordHeaderSize + payload.size();
      ends.push_back(end);
    }
    ASSERT_EQ(ends.back(), full_size);
  }

  for (uint64_t cut = 0; cut < full_size; cut += 7) {
    const std::string root = Dir("cut" + std::to_string(cut));
    fs::create_directories(root + "/segments");
    fs::copy_file(pristine + seg, root + seg);
    fs::resize_file(root + seg, cut);

    PackObjectStore store(root);
    for (int i = 0; i < kObjects; ++i) {
      const bool survives = cut >= ends[static_cast<size_t>(i)];
      auto bytes = store.Get(ids[static_cast<size_t>(i)]);
      if (survives) {
        ASSERT_TRUE(bytes.ok()) << "cut=" << cut << " record=" << i;
        EXPECT_EQ(*bytes, payloads[static_cast<size_t>(i)]);
      } else {
        EXPECT_TRUE(bytes.status().IsNotFound())
            << "cut=" << cut << " record=" << i;
      }
    }
    // The store stays writable after every tear, and a re-put restores the
    // torn object.
    auto healed = store.Put(payloads[kObjects - 1]);
    ASSERT_TRUE(healed.ok()) << "cut=" << cut;
    EXPECT_EQ(*healed, ids[kObjects - 1]);
    EXPECT_EQ(*store.Get(ids[kObjects - 1]), payloads[kObjects - 1]);
  }
}

// Generation marker swap is atomic: a crash cannot leave a half-written
// marker that misreports the archive's generation.
TEST_F(TortureTest, GenerationMarkerIsNeverTorn) {
  FileObjectStore source(Dir("src"));
  ASSERT_TRUE(source.Put("single object").ok());
  FileObjectStore target(Dir("dst"));
  MigrateOptions options;
  options.state_dir = Dir("state");
  ASSERT_TRUE(MigrateGeneration(source, target, options).ok());
  EXPECT_EQ(ReadGeneration(Dir("state")), 1u);
  // Leave a torn temp file where a crashed swap would have left one; the
  // marker read and the next swap must both ignore it.
  std::ofstream(Dir("state") + "/GENERATION.tmp.123.0", std::ios::binary)
      << "{\"generation\": 99";
  EXPECT_EQ(ReadGeneration(Dir("state")), 1u);
  ASSERT_TRUE(MigrateGeneration(source, target, options).ok());
  EXPECT_EQ(ReadGeneration(Dir("state")), 2u);
}

}  // namespace
}  // namespace daspos
