// Unit tests for the support library: Status/Result, SHA-256, RNG,
// string utilities, table rendering, and file IO.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/result.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/sha256.h"
#include "support/status.h"
#include "support/strings.h"
#include "support/table.h"

namespace daspos {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("run 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "run 42");
  EXPECT_EQ(s.ToString(), "NotFound: run 42");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    DASPOS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<std::string> { return std::string("ok"); };
  auto consume = [&]() -> Result<int> {
    DASPOS_ASSIGN_OR_RETURN(std::string v, produce());
    return static_cast<int>(v.size());
  };
  ASSERT_TRUE(consume().ok());
  EXPECT_EQ(*consume(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<std::string> {
    return Status::Corruption("bad");
  };
  auto consume = [&]() -> Result<int> {
    DASPOS_ASSIGN_OR_RETURN(std::string v, produce());
    return static_cast<int>(v.size());
  };
  EXPECT_TRUE(consume().status().IsCorruption());
}

// ---------------------------------------------------------------- SHA256 --

// NIST FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HashHex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.HexDigest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "data and software preservation for open science";
  Sha256 h;
  for (char c : data) h.Update(&c, 1);
  EXPECT_EQ(h.HexDigest(), Sha256::HashHex(data));
}

TEST(Sha256Test, ExactBlockBoundary) {
  std::string block(64, 'x');
  std::string double_block(128, 'x');
  EXPECT_NE(Sha256::HashHex(block), Sha256::HashHex(double_block));
  // 55/56/57 bytes straddle the padding boundary.
  for (size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    std::string msg(n, 'q');
    Sha256 h;
    h.Update(msg);
    EXPECT_EQ(h.HexDigest(), Sha256::HashHex(msg)) << "length " << n;
  }
}

TEST(Sha256Test, ResetReusesHasher) {
  Sha256 h;
  h.Update("first");
  (void)h.HexDigest();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(h.HexDigest(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------- Checksum --

// Golden XXH64 vectors. These digests are persisted in pack record headers
// and sidecar indexes, so Checksum64 must produce the canonical
// little-endian XXH64 value on EVERY host — a byte-order drift here would
// mass-quarantine a pack written on the other endianness. The first three
// are the published reference values; the rest pin the stripe loop, the
// 8/4/1-byte tails, and seeding.
TEST(ChecksumTest, MatchesXxh64ReferenceVectorsOnAnyHost) {
  EXPECT_EQ(Checksum64(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(Checksum64("a"), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(Checksum64("abc"), 0x44BC2CF5AD770999ull);
  EXPECT_EQ(Checksum64("abc", 1), 0xBEA9CA8199328908ull);
  std::string forty(40, '\0');
  for (size_t i = 0; i < forty.size(); ++i) {
    forty[i] = static_cast<char>('A' + i % 26);
  }
  EXPECT_EQ(Checksum64(forty), 0x37523D26107DD78Dull);
  std::string big(1031, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 131 % 251);
  }
  EXPECT_EQ(Checksum64(big), 0x54C585C45BC60226ull);
}

// ------------------------------------------------------------------- RNG --

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedCoverage) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  for (uint64_t v : seen) EXPECT_LT(v, 10u);
}

TEST(RngTest, GaussMoments) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gauss();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(9);
  for (double mean : {0.5, 3.0, 20.0, 80.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, 5.0 * std::sqrt(mean / n) + 0.05)
        << "mean " << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
  EXPECT_EQ(rng.Poisson(-1.0), 0u);
}

TEST(RngTest, BreitWignerMedianAtPeak) {
  Rng rng(13);
  const int n = 100000;
  int below = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.BreitWigner(91.2, 2.5) < 91.2) ++below;
  }
  // Median of a Cauchy is its location parameter.
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngTest, AcceptEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.Accept(0.0));
  EXPECT_FALSE(rng.Accept(-0.5));
  EXPECT_TRUE(rng.Accept(1.0));
  EXPECT_TRUE(rng.Accept(2.0));
}

TEST(RngTest, AcceptProbability) {
  Rng rng(17);
  int accepted = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Accept(0.3)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(21);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.NextU64() == f2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkDeterministicGivenSeedAndLabels) {
  Rng p1(33);
  Rng p2(33);
  Rng f1 = p1.Fork(5);
  Rng f2 = p2.Fork(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f1.NextU64(), f2.NextU64());
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmpty) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("BEGIN HISTO1D /x", "BEGIN"));
  EXPECT_FALSE(StartsWith("BEG", "BEGIN"));
}

TEST(StringsTest, JoinAndToLower) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(ToLower("AoD Tier"), "aod tier");
}

TEST(StringsTest, HexRoundTrip) {
  std::string bytes("\x00\x7f\xff\x10", 4);
  std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex, "007fff10");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
}

TEST(StringsTest, HexDecodeErrors) {
  EXPECT_TRUE(HexDecode("abc").status().IsInvalidArgument());
  EXPECT_TRUE(HexDecode("zz").status().IsInvalidArgument());
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024ull), "3.00 MiB");
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(*ParseU64("42"), 42u);
  EXPECT_EQ(*ParseU64("  7 "), 7u);
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("4x").ok());
  EXPECT_FALSE(ParseU64("-3").ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, RendersAlignedColumns) {
  TextTable t;
  t.SetHeader({"experiment", "format"});
  t.AddRow({"CMS", "ig"});
  t.AddRow({"ATLAS", "JiveXML"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| experiment | format  |"), std::string::npos);
  EXPECT_NE(out.find("| ATLAS      | JiveXML |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ShortRowsRenderEmptyCells) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(TableTest, TitleIsPrinted) {
  TextTable t;
  t.SetTitle("Table 1");
  t.SetHeader({"x"});
  EXPECT_EQ(t.Render().rfind("Table 1\n", 0), 0u);
}

// -------------------------------------------------------------------- IO --

TEST(IoTest, WriteReadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "daspos_io_test.bin").string();
  std::string payload("binary\0payload", 14);
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(IoTest, ReadMissingFileFails) {
  auto read = ReadFileToString("/nonexistent/daspos/file");
  EXPECT_TRUE(read.status().IsIOError());
}

TEST(IoTest, WriteCreatesParentDirectories) {
  auto dir = std::filesystem::temp_directory_path() / "daspos_io_nested";
  std::string path = (dir / "a" / "b" / "file.txt").string();
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  std::filesystem::remove_all(dir);
}

TEST(IoTest, AtomicWriteRoundTripAndOverwrite) {
  auto dir = std::filesystem::temp_directory_path() / "daspos_io_atomic";
  std::string path = (dir / "sub" / "blob.bin").string();
  std::string payload("atomic\0bytes", 12);
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // Overwrite replaces the content wholesale; no temp files survive.
  ASSERT_TRUE(AtomicWriteFile(path, "v2").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2");
  size_t entries = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++entries;
  }
  EXPECT_EQ(entries, 1u);  // only blob.bin, no tmp.* leftovers
  std::filesystem::remove_all(dir);
}

TEST(IoTest, FsyncDirSucceedsOnDirFailsOnMissingOrFile) {
  auto dir = std::filesystem::temp_directory_path() / "daspos_io_fsyncdir";
  std::filesystem::create_directories(dir);
  EXPECT_TRUE(FsyncDir(dir.string()).ok());
  EXPECT_TRUE(FsyncDir((dir / "absent").string()).IsIOError());
  std::string file = (dir / "plain.txt").string();
  ASSERT_TRUE(WriteStringToFile(file, "x").ok());
  // O_DIRECTORY rejects non-directories instead of fsyncing the wrong node.
  EXPECT_TRUE(FsyncDir(file).IsIOError());
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------------- Retry --

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.backoff_ms = 0.0;
  policy.sleeper = [](double) {};
  return policy;
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 4;
  int calls = 0;
  Status status = RetryCall(
      policy,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::IOError("blip") : Status::OK();
      },
      "flaky op");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 3;
  int calls = 0;
  Status status = RetryCall(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::IOError("still down");
      },
      "doomed op");
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonRetryableStopsImmediately) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 5;
  int calls = 0;
  Status status = RetryCall(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::NotFound("gone for good");
      },
      "lookup");
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, DeadlineTripsBeforeAttemptsExhaust) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff_ms = 50.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.0;
  policy.deadline_ms = 120.0;  // room for two backoffs, not three
  policy.sleeper = [](double) {};
  int calls = 0;
  Status status = RetryCall(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::IOError("slow outage");
      },
      "deadline op");
  EXPECT_TRUE(status.IsDeadlineExceeded());
  EXPECT_LT(calls, 100);
  // The final status names the underlying error for post-mortems.
  EXPECT_NE(status.message().find("slow outage"), std::string::npos);
}

TEST(RetryTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 35.0;
  policy.jitter = 0.25;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    double a = RetryBackoffMillis(policy, attempt, /*jitter_seed=*/7);
    double b = RetryBackoffMillis(policy, attempt, /*jitter_seed=*/7);
    EXPECT_EQ(a, b);  // same seed, same schedule
    EXPECT_LE(a, 35.0 * 1.25);
    EXPECT_GE(a, 0.0);
  }
  // Without jitter the schedule is exactly exponential-with-cap.
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(RetryBackoffMillis(policy, 1, 0), 10.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMillis(policy, 2, 0), 20.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMillis(policy, 3, 0), 35.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMillis(policy, 4, 0), 35.0);
}

TEST(RetryTest, SleeperReceivesEachBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_ms = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  std::vector<double> slept;
  policy.sleeper = [&](double ms) { slept.push_back(ms); };
  Status status = RetryCall(
      policy, []() -> Status { return Status::IOError("down"); }, "op");
  EXPECT_TRUE(status.IsIOError());
  ASSERT_EQ(slept.size(), 3u);  // 4 attempts -> 3 sleeps between them
  EXPECT_DOUBLE_EQ(slept[0], 5.0);
  EXPECT_DOUBLE_EQ(slept[1], 10.0);
  EXPECT_DOUBLE_EQ(slept[2], 20.0);
}

TEST(RetryTest, RetryResultReturnsValueOnEventualSuccess) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 3;
  int calls = 0;
  Result<std::string> result = RetryResult<std::string>(
      policy,
      [&]() -> Result<std::string> {
        ++calls;
        if (calls < 2) return Status::IOError("blip");
        return std::string("payload");
      },
      "fetch");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "payload");
  EXPECT_EQ(calls, 2);
}

// ----------------------------------------------------------------- Fault --

TEST(FaultSpecTest, ParsesRateAndSeed) {
  auto spec = FaultSpec::Parse("seed=42,rate=0.3");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_DOUBLE_EQ(spec->rate, 0.3);
  EXPECT_TRUE(spec->nth.empty());
}

TEST(FaultSpecTest, ParsesScriptedOrdinals) {
  auto spec = FaultSpec::Parse("nth=3,7");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->nth.size(), 2u);
  EXPECT_EQ(spec->nth[0], 3u);
  EXPECT_EQ(spec->nth[1], 7u);
}

TEST(FaultSpecTest, RejectsBadSpecs) {
  EXPECT_TRUE(FaultSpec::Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(FaultSpec::Parse("rate=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(FaultSpec::Parse("rate=-0.1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultSpec::Parse("banana=1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultSpec::Parse("nth=0").status().IsInvalidArgument());
  // A seed alone injects nothing; that is a spec error, not a silent no-op.
  EXPECT_TRUE(FaultSpec::Parse("seed=9").status().IsInvalidArgument());
}

TEST(FaultPlanTest, ScriptedOrdinalsFailExactlyThoseOps) {
  auto spec = FaultSpec::Parse("nth=2,4");
  ASSERT_TRUE(spec.ok());
  FaultPlan plan(*spec);
  std::vector<bool> failed;
  for (int i = 0; i < 5; ++i) failed.push_back(!plan.Next("op").ok());
  EXPECT_EQ(failed, (std::vector<bool>{false, true, false, true, false}));
  EXPECT_EQ(plan.operations(), 5u);
  EXPECT_EQ(plan.injected(), 2u);
}

TEST(FaultPlanTest, RateModeIsDeterministicPerSeed) {
  auto spec = FaultSpec::Parse("seed=123,rate=0.5");
  ASSERT_TRUE(spec.ok());
  FaultPlan a(*spec);
  FaultPlan b(*spec);
  int injected = 0;
  for (int i = 0; i < 200; ++i) {
    Status sa = a.Next("op");
    Status sb = b.Next("op");
    EXPECT_EQ(sa.ok(), sb.ok());  // same seed, same fate per op
    if (!sa.ok()) {
      EXPECT_TRUE(sa.IsIOError());  // injected faults look transient
      ++injected;
    }
  }
  // With rate 0.5 over 200 ops, both extremes would mean a broken RNG.
  EXPECT_GT(injected, 50);
  EXPECT_LT(injected, 150);
  EXPECT_EQ(a.injected(), static_cast<uint64_t>(injected));
}

}  // namespace
}  // namespace daspos
