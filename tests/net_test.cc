// Tests for the dasposd network layer: wire-protocol codecs, the reactor
// server end to end (byte-identical archive round trips, 16 concurrent
// clients), malformed-frame fuzzing (the daemon must survive anything a
// hostile or broken client sends), backpressure, graceful drain, and
// client-side torn-frame handling against a fake server.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "archive/backend.h"
#include "archive/object_store.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serialize/json.h"
#include "support/metrics_registry.h"

namespace daspos {
namespace net {
namespace {

uint64_t NetCounter(const char* name) {
  return MetricsRegistry::Global().CounterValue(name);
}

// ---------------------------------------------------------------------------
// Protocol codecs (no sockets).

TEST(ProtocolTest, FrameRoundTrip) {
  const std::string payload = std::string("abc\0def", 7);
  std::string frame = EncodeFrame(MessageType::kGet, 42, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->type, static_cast<uint8_t>(MessageType::kGet));
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->payload_len, payload.size());
  EXPECT_EQ(frame.substr(kFrameHeaderSize), payload);
}

TEST(ProtocolTest, DecodeRejectsShortBadMagicBadVersionReserved) {
  EXPECT_FALSE(DecodeFrameHeader("DPN1").ok());

  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[0] = 'X';
  EXPECT_FALSE(DecodeFrameHeader(frame).ok());

  frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[4] = 9;  // version
  EXPECT_FALSE(DecodeFrameHeader(frame).ok());

  frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[6] = 1;  // reserved byte must be zero
  EXPECT_FALSE(DecodeFrameHeader(frame).ok());
}

TEST(ProtocolTest, RequestTypeRegistry) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kGet)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MessageType::kStat)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MessageType::kGetOk)));
  EXPECT_FALSE(IsRequestType(0x7E));
  EXPECT_FALSE(IsRequestType(0x00));
  EXPECT_EQ(ResponseTypeFor(MessageType::kPutBatch),
            MessageType::kPutBatchOk);
  EXPECT_EQ(MessageTypeName(MessageType::kPutBatch), "PUT_BATCH");
}

TEST(ProtocolTest, ErrorPayloadRoundTripsEveryStatusCode) {
  const Status statuses[] = {
      Status::NotFound("a"),          Status::AlreadyExists("b"),
      Status::InvalidArgument("c"),   Status::Corruption("d"),
      Status::IOError("e"),           Status::FailedPrecondition("f"),
      Status::PermissionDenied("g"),  Status::Unimplemented("h"),
      Status::OutOfRange("i"),        Status::DeadlineExceeded("j"),
  };
  for (const Status& status : statuses) {
    Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
    EXPECT_EQ(decoded.code(), status.code()) << status.ToString();
    EXPECT_EQ(decoded.message(), status.message());
  }
  // The two codes with no Status mapping decode to something non-OK.
  EXPECT_FALSE(
      DecodeErrorPayload(EncodeErrorPayloadWithCode(kWireProtocolError, "x"))
          .ok());
  EXPECT_FALSE(
      DecodeErrorPayload(EncodeErrorPayloadWithCode(kWireUnavailable, "y"))
          .ok());
  // A malformed error payload is itself an error, never OK.
  EXPECT_FALSE(DecodeErrorPayload("").ok());
}

TEST(ProtocolTest, StringListRejectsHostileCountAndTrailing) {
  std::string encoded = EncodePutBatchRequest({"aa", "bb"});
  auto decoded = DecodePutBatchRequest(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<std::string>{"aa", "bb"}));

  // Varint count of ~2^60 in a 3-byte payload must fail before reserving.
  std::string hostile = "\xff\xff\xff\xff\xff\xff\xff\xff\x0f";
  EXPECT_FALSE(DecodePutBatchRequest(hostile).ok());

  encoded.push_back('Z');
  EXPECT_FALSE(DecodePutBatchRequest(encoded).ok());
}

TEST(ProtocolTest, ChainAndLintCodecsRoundTrip) {
  ChainRequest chain;
  chain.process = "minbias";
  chain.events = 123;
  chain.seed = 456;
  auto chain2 = DecodeChainRequest(EncodeChainRequest(chain));
  ASSERT_TRUE(chain2.ok());
  EXPECT_EQ(chain2->process, "minbias");
  EXPECT_EQ(chain2->events, 123u);
  EXPECT_EQ(chain2->seed, 456u);

  std::vector<LintArtifact> artifacts(2);
  artifacts[0].name = "a.json";
  artifacts[0].bytes = std::string("\x00\x01\x02", 3);
  artifacts[1].name = "b.txt";
  artifacts[1].bytes = "text";
  auto back = DecodeLintRequest(EncodeLintRequest(artifacts));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].bytes, artifacts[0].bytes);
  EXPECT_EQ((*back)[1].name, "b.txt");
}

// ---------------------------------------------------------------------------
// Server fixture: a real dasposd core on an ephemeral port, loop on its own
// thread, pack backend in a fresh temp dir.

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("net_test_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    auto store = OpenObjectStore("pack:" + root_.string());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    options.backend_name = "pack";
    server_ = std::make_unique<Server>(store_.get(), options);
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    loop_thread_ = std::thread([this] { run_status_ = server_->Run(); });
  }

  void StopServer() {
    if (!server_) return;
    server_->TriggerDrain();
    loop_thread_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
    server_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  void TearDown() override { StopServer(); }

  std::string Address() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }

  Result<Client> Connect() { return Client::Connect(Address()); }

  std::filesystem::path root_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<Server> server_;
  std::thread loop_thread_;
  Status run_status_ = Status::OK();
};

/// A raw TCP connection for speaking deliberately broken bytes.
class RawConn {
 public:
  /// `rcvbuf` > 0 pins a small receive window BEFORE connect, so the
  /// server's writes back up quickly (how the backpressure test forces the
  /// outbox cap without depending on kernel buffer autotuning).
  explicit RawConn(uint16_t port, int rcvbuf = 0) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf > 0) {
      setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{5, 0};  // reads time out instead of hanging a broken test
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }

  bool connected() const { return connected_; }

  void Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads up to `n` bytes once; <= 0 on EOF/timeout/error.
  ssize_t ReadSome(char* buffer, size_t n) { return read(fd_, buffer, n); }

  /// Reads until EOF or timeout; returns everything received.
  std::string ReadAll() {
    std::string out;
    char buffer[4096];
    for (;;) {
      ssize_t n = read(fd_, buffer, sizeof(buffer));
      if (n <= 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST_F(ServerTest, PingEchoesPayload) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping("hello dasposd").ok());
  EXPECT_TRUE(client->Ping(std::string("\x00\xff\x7f", 3)).ok());
}

TEST_F(ServerTest, PutGetVerifyByteIdentical) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Every byte value, with embedded NULs, long enough to span read chunks.
  std::string blob;
  blob.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    blob.push_back(static_cast<char>(i % 256));
  }
  auto id = client->Put(blob);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id->size(), 64u);

  auto back = client->Get(*id);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == blob) << "round-tripped bytes differ";

  EXPECT_TRUE(client->Verify(*id).ok());
  // The store behind the wire saw the same object.
  EXPECT_TRUE(store_->Has(*id));
}

TEST_F(ServerTest, MissingObjectMapsToNotFoundAcrossTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string missing(64, '0');
  auto got = client->Get(missing);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
      << got.status().ToString();
  EXPECT_EQ(client->Verify(missing).code(), StatusCode::kNotFound);
  // And a bad id maps to InvalidArgument, not a dropped connection.
  EXPECT_EQ(client->Get("../../etc/passwd").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, PutBatchStoresAllBlobsInOrder) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<std::string> blobs;
  for (int i = 0; i < 16; ++i) {
    blobs.push_back("blob-" + std::to_string(i) + std::string(1000, 'x'));
  }
  auto ids = client->PutBatch(blobs);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    auto back = client->Get((*ids)[i]);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, blobs[i]);
  }
}

TEST_F(ServerTest, RemoteLintReturnsReportAndRejectsHostileNames) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<LintArtifact> artifacts(1);
  artifacts[0].name = "conds.json";
  artifacts[0].bytes = "{\"tags\": {}}";
  auto report = client->Lint(artifacts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto json = Json::Parse(*report);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(json->Has("findings"));

  artifacts[0].name = "../escape";
  EXPECT_EQ(client->Lint(artifacts).status().code(),
            StatusCode::kInvalidArgument);
  artifacts[0].name = "a/b";
  EXPECT_EQ(client->Lint(artifacts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ChainSubmissionRunsTheStandardChain) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto report = client->Chain("minbias", 20, 7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto json = Json::Parse(*report);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(json->Has("steps"));

  EXPECT_EQ(client->Chain("no_such_process", 10, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Chain("minbias", 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Chain("minbias", 1u << 30, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, StatReportsBackendAndCounts) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());
  auto stat = client->Stat();
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  auto json = Json::Parse(*stat);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Get("backend").as_string(), "pack");
  EXPECT_EQ(json->Get("protocol_version").as_int(), 1);
  EXPECT_GE(json->Get("requests_served").as_int(), 2);
}

TEST_F(ServerTest, SixteenConcurrentClientsGetTheirOwnBytesBack) {
  StartServer();
  constexpr int kClients = 16;
  constexpr int kRounds = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      auto client = Client::Connect(Address());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        std::string blob = "client-" + std::to_string(c) + "-round-" +
                           std::to_string(round) + "-";
        blob.resize(20000 + static_cast<size_t>(c) * 1000,
                    static_cast<char>('A' + c));
        auto id = client->Put(blob);
        if (!id.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto back = client->Get(*id);
        if (!back.ok() || *back != blob) {
          failures.fetch_add(1);
          return;
        }
        if (!client->Verify(*id).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Malformed-frame fuzzing: every case must (a) close that client with a
// counted protocol error and (b) leave the daemon serving new clients.

TEST_F(ServerTest, FuzzBadMagicClosesClientCountsErrorDaemonSurvives) {
  StartServer();
  const uint64_t before = NetCounter(metric_names::kNetProtocolErrorsTotal);
  {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    raw.Send(std::string(64, 'Q'));  // 64 bytes of not-a-frame
    std::string reply = raw.ReadAll();  // server answers ERROR then closes
    if (!reply.empty()) {
      auto header = DecodeFrameHeader(reply);
      ASSERT_TRUE(header.ok());
      EXPECT_EQ(header->type, static_cast<uint8_t>(MessageType::kError));
    }
  }
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GT(NetCounter(metric_names::kNetProtocolErrorsTotal), before);
}

TEST_F(ServerTest, FuzzOversizedDeclaredLengthIsRejectedBeforeAllocation) {
  ServerOptions options;
  options.max_frame_bytes = 1 << 20;
  StartServer(options);
  const uint64_t before = NetCounter(metric_names::kNetProtocolErrorsTotal);
  {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    // Valid header declaring a 3 GiB payload that never arrives.
    std::string frame = EncodeFrame(MessageType::kPut, 9, "");
    const uint32_t huge = 3u << 30;
    std::memcpy(&frame[kFrameHeaderSize - 4], &huge, 4);
    raw.Send(frame);
    std::string reply = raw.ReadAll();
    ASSERT_GE(reply.size(), kFrameHeaderSize);
    auto header = DecodeFrameHeader(reply);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->type, static_cast<uint8_t>(MessageType::kError));
    EXPECT_EQ(header->request_id, 9u);
  }
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GT(NetCounter(metric_names::kNetProtocolErrorsTotal), before);
}

TEST_F(ServerTest, FuzzUnknownMessageTypeGetsErrorFrameThenClose) {
  StartServer();
  const uint64_t before = NetCounter(metric_names::kNetProtocolErrorsTotal);
  {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    std::string frame = EncodeFrame(MessageType::kPing, 77, "x");
    frame[5] = 0x7E;  // a type the registry does not know
    raw.Send(frame);
    std::string reply = raw.ReadAll();
    ASSERT_GE(reply.size(), kFrameHeaderSize);
    auto header = DecodeFrameHeader(reply);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->type, static_cast<uint8_t>(MessageType::kError));
    EXPECT_EQ(header->request_id, 77u);
    Status decoded = DecodeErrorPayload(reply.substr(kFrameHeaderSize));
    EXPECT_FALSE(decoded.ok());
  }
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GT(NetCounter(metric_names::kNetProtocolErrorsTotal), before);
}

TEST_F(ServerTest, FuzzMidFrameDisconnectIsCountedDaemonSurvives) {
  StartServer();
  const uint64_t before = NetCounter(metric_names::kNetProtocolErrorsTotal);
  {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    std::string frame = EncodeFrame(MessageType::kPut, 5, std::string(4096, 'p'));
    raw.Send(frame.substr(0, frame.size() / 2));  // half a frame, then gone
  }
  // The close is processed asynchronously by the loop; poll the counter.
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 100; ++i) {
    if (NetCounter(metric_names::kNetProtocolErrorsTotal) > before) break;
    ASSERT_TRUE(client->Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(NetCounter(metric_names::kNetProtocolErrorsTotal), before);
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, FuzzTruncatedHeaderDisconnectCounted) {
  StartServer();
  const uint64_t before = NetCounter(metric_names::kNetProtocolErrorsTotal);
  {
    RawConn raw(server_->port());
    ASSERT_TRUE(raw.connected());
    raw.Send("DPN1\x01");  // 5 of 20 header bytes
  }
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 100; ++i) {
    if (NetCounter(metric_names::kNetProtocolErrorsTotal) > before) break;
    ASSERT_TRUE(client->Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(NetCounter(metric_names::kNetProtocolErrorsTotal), before);
}

// ---------------------------------------------------------------------------
// Backpressure: a client that pipelines hard but reads slowly must stall
// itself (reads paused past the outbox cap), never the daemon.

TEST_F(ServerTest, BackpressurePausesReadsUntilSlowClientCatchesUp) {
  ServerOptions options;
  options.max_outbox_bytes = 16 << 10;  // tiny cap so the test can hit it
  StartServer(options);
  const uint64_t before =
      NetCounter(metric_names::kNetBackpressureStallsTotal);

  RawConn raw(server_->port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(raw.connected());
  constexpr int kFrames = 64;
  const std::string payload(64 << 10, 'b');
  // Writer thread pipelines 4 MiB of pings; the main thread starts reading
  // only after a beat, so responses pile up behind the tiny receive window
  // and the outbox blows past its cap. Two threads because a paused server
  // would otherwise deadlock against a blocked writer — exactly the
  // scenario backpressure creates on purpose.
  std::thread writer([&raw, &payload] {
    for (int i = 0; i < kFrames; ++i) {
      raw.Send(EncodeFrame(MessageType::kPing,
                           static_cast<uint64_t>(i), payload));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::string all;
  const size_t want =
      static_cast<size_t>(kFrames) * (kFrameHeaderSize + payload.size());
  char buffer[64 << 10];
  while (all.size() < want) {
    ssize_t n = raw.ReadSome(buffer, sizeof(buffer));
    if (n <= 0) break;
    all.append(buffer, static_cast<size_t>(n));
  }
  writer.join();
  ASSERT_EQ(all.size(), want) << "missing response bytes";
  // Every response echoes its payload, in order.
  for (int i = 0; i < kFrames; ++i) {
    const size_t offset =
        static_cast<size_t>(i) * (kFrameHeaderSize + payload.size());
    auto header = DecodeFrameHeader(
        std::string_view(all).substr(offset, kFrameHeaderSize));
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->type, static_cast<uint8_t>(MessageType::kPingOk));
    EXPECT_EQ(header->request_id, static_cast<uint64_t>(i));
  }
  EXPECT_GT(NetCounter(metric_names::kNetBackpressureStallsTotal), before)
      << "the outbox cap was never hit; lower it or pipeline more";
}

// ---------------------------------------------------------------------------
// Drain.

TEST_F(ServerTest, DrainAnswersBufferedWorkThenExitsRunOk) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());
  const uint64_t drains_before = NetCounter(metric_names::kNetDrainsTotal);

  server_->TriggerDrain();
  loop_thread_.join();
  EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  EXPECT_EQ(NetCounter(metric_names::kNetDrainsTotal), drains_before + 1);
  EXPECT_GE(server_->requests_served(), 1u);

  // The listener is gone: nobody new can connect.
  EXPECT_FALSE(Client::Connect(Address()).ok());
  server_.reset();
  store_.reset();
  std::filesystem::remove_all(root_);
}

// ---------------------------------------------------------------------------
// Client-side torn frames, against a fake server the test controls.

class FakeServer {
 public:
  FakeServer() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    listen(fd_, 1);
    socklen_t len = sizeof(addr);
    getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~FakeServer() {
    if (client_fd_ >= 0) close(client_fd_);
    if (fd_ >= 0) close(fd_);
  }

  uint16_t port() const { return port_; }

  void AcceptOne() { client_fd_ = accept(fd_, nullptr, nullptr); }

  /// Reads (and discards) one request frame from the connected client.
  void SwallowRequest() {
    std::string header(kFrameHeaderSize, '\0');
    size_t got = 0;
    while (got < header.size()) {
      ssize_t n = read(client_fd_, header.data() + got, header.size() - got);
      if (n <= 0) return;
      got += static_cast<size_t>(n);
    }
    auto decoded = DecodeFrameHeader(header);
    if (!decoded.ok()) return;
    size_t remaining = decoded->payload_len;
    char buffer[4096];
    while (remaining > 0) {
      ssize_t n = read(client_fd_, buffer,
                       std::min(remaining, sizeof(buffer)));
      if (n <= 0) return;
      remaining -= static_cast<size_t>(n);
    }
    last_request_id_ = decoded->request_id;
  }

  void SendRaw(std::string_view bytes) {
    ssize_t ignored = write(client_fd_, bytes.data(), bytes.size());
    (void)ignored;
  }

  void CloseClient() {
    if (client_fd_ >= 0) {
      close(client_fd_);
      client_fd_ = -1;
    }
  }

  uint64_t last_request_id() const { return last_request_id_; }

 private:
  int fd_ = -1;
  int client_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t last_request_id_ = 0;
};

TEST(ClientTornFrameTest, HeaderCutMidwayIsCorruption) {
  FakeServer fake;
  std::thread accept_thread([&fake] { fake.AcceptOne(); });
  auto client = Client::Connect("127.0.0.1:" + std::to_string(fake.port()));
  accept_thread.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::thread server_side([&fake] {
    fake.SwallowRequest();
    std::string frame =
        EncodeFrame(MessageType::kGetOk, fake.last_request_id(), "payload");
    fake.SendRaw(std::string_view(frame).substr(0, 7));  // 7 of 20+7 bytes
    fake.CloseClient();
  });
  auto got = client->Get(std::string(64, 'a'));
  server_side.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << got.status().ToString();
  EXPECT_FALSE(client->connected());  // a torn stream is never reused
}

TEST(ClientTornFrameTest, PayloadCutMidwayIsCorruption) {
  FakeServer fake;
  std::thread accept_thread([&fake] { fake.AcceptOne(); });
  auto client = Client::Connect("127.0.0.1:" + std::to_string(fake.port()));
  accept_thread.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::thread server_side([&fake] {
    fake.SwallowRequest();
    std::string frame = EncodeFrame(MessageType::kGetOk,
                                    fake.last_request_id(),
                                    std::string(1000, 'z'));
    fake.SendRaw(std::string_view(frame).substr(0, kFrameHeaderSize + 100));
    fake.CloseClient();
  });
  auto got = client->Get(std::string(64, 'a'));
  server_side.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(ClientTornFrameTest, MismatchedRequestIdIsCorruption) {
  FakeServer fake;
  std::thread accept_thread([&fake] { fake.AcceptOne(); });
  auto client = Client::Connect("127.0.0.1:" + std::to_string(fake.port()));
  accept_thread.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::thread server_side([&fake] {
    fake.SwallowRequest();
    fake.SendRaw(EncodeFrame(MessageType::kGetOk,
                             fake.last_request_id() + 999, "payload"));
    fake.CloseClient();
  });
  auto got = client->Get(std::string(64, 'a'));
  server_side.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(client->connected());
}

}  // namespace
}  // namespace net
}  // namespace daspos
