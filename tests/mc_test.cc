// Tests for the toy Monte-Carlo generator: kinematic helpers, per-process
// content, determinism, and physics sanity of generated ensembles.
#include <gtest/gtest.h>

#include <cmath>

#include "event/pdg.h"
#include "hist/histo1d.h"
#include "mc/generator.h"
#include "mc/kinematics.h"
#include "mc/process.h"
#include "support/rng.h"

namespace daspos {
namespace {

// ------------------------------------------------------------ Kinematics --

TEST(KinematicsTest, BoostToLabPreservesMass) {
  Rng rng(1);
  FourVector frame = FourVector::FromPtEtaPhiM(40.0, 1.2, 0.7, 91.2);
  FourVector rest(1.0, -2.0, 0.5, std::sqrt(1 + 4 + 0.25 + 25.0));  // m=5
  FourVector lab = BoostToLab(rest, frame);
  EXPECT_NEAR(lab.Mass(), rest.Mass(), 1e-9);
}

TEST(KinematicsTest, BoostOfRestFrameParticleGivesFrameVelocity) {
  FourVector frame = FourVector::FromPtEtaPhiM(30.0, 0.5, 1.0, 10.0);
  FourVector at_rest(0.0, 0.0, 0.0, 10.0);
  FourVector lab = BoostToLab(at_rest, frame);
  EXPECT_NEAR(lab.px(), frame.px(), 1e-9);
  EXPECT_NEAR(lab.py(), frame.py(), 1e-9);
  EXPECT_NEAR(lab.pz(), frame.pz(), 1e-9);
  EXPECT_NEAR(lab.e(), frame.e(), 1e-9);
}

TEST(KinematicsTest, TwoBodyDecayConservesFourMomentum) {
  Rng rng(2);
  FourVector parent = FourVector::FromPtEtaPhiM(25.0, -0.8, 2.0, 91.2);
  for (int i = 0; i < 100; ++i) {
    auto [d1, d2] = TwoBodyDecay(parent, 0.105, 0.105, &rng);
    FourVector sum = d1 + d2;
    EXPECT_NEAR(sum.px(), parent.px(), 1e-6);
    EXPECT_NEAR(sum.py(), parent.py(), 1e-6);
    EXPECT_NEAR(sum.pz(), parent.pz(), 1e-6);
    EXPECT_NEAR(sum.e(), parent.e(), 1e-6);
    EXPECT_NEAR(d1.Mass(), 0.105, 1e-6);
    EXPECT_NEAR(d2.Mass(), 0.105, 1e-6);
  }
}

TEST(KinematicsTest, TwoBodyDecayIsotropicInRestFrame) {
  Rng rng(3);
  // Parent at rest: daughter directions should average to zero.
  FourVector parent(0.0, 0.0, 0.0, 91.2);
  double sum_pz = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto [d1, d2] = TwoBodyDecay(parent, 0.0, 0.0, &rng);
    (void)d2;
    sum_pz += d1.pz();
  }
  EXPECT_NEAR(sum_pz / n / (91.2 / 2.0), 0.0, 0.02);
}

TEST(KinematicsTest, FragmentationConservesEnergyApproximately) {
  Rng rng(4);
  double energy = 80.0;
  auto fragments = FragmentParton(energy, 0.3, 1.0, 0.1, &rng);
  EXPECT_GT(fragments.size(), 3u);
  double total = 0.0;
  for (const Fragment& f : fragments) total += f.momentum.e();
  // Fragmentation rounds hadron energies up to their masses; allow slack.
  EXPECT_NEAR(total, energy, 0.15 * energy);
  for (const Fragment& f : fragments) {
    EXPECT_TRUE(pdg::IsHadron(f.pdg_id)) << f.pdg_id;
  }
}

// --------------------------------------------------------------- Process --

TEST(ProcessTest, CatalogComplete) {
  EXPECT_EQ(AllProcesses().size(), 7u);
  const ProcessInfo& z = GetProcessInfo(Process::kZToLL);
  EXPECT_EQ(z.name, "z_ll");
  EXPECT_GT(z.cross_section_pb, 0.0);
  // Background dwarfs signal: the structure E2 depends on.
  EXPECT_GT(GetProcessInfo(Process::kMinimumBias).cross_section_pb,
            1e6 * z.cross_section_pb);
  EXPECT_LT(GetProcessInfo(Process::kZPrimeToLL).cross_section_pb,
            GetProcessInfo(Process::kHiggsToGammaGamma).cross_section_pb *
                10.0);
}

// ------------------------------------------------------------- Generator --

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.seed = 99;
  EventGenerator g1(config);
  EventGenerator g2(config);
  for (int i = 0; i < 20; ++i) {
    GenEvent e1 = g1.Generate();
    GenEvent e2 = g2.Generate();
    ASSERT_EQ(e1.particles.size(), e2.particles.size());
    for (size_t p = 0; p < e1.particles.size(); ++p) {
      EXPECT_EQ(e1.particles[p].pdg_id, e2.particles[p].pdg_id);
      EXPECT_TRUE(e1.particles[p].momentum == e2.particles[p].momentum);
    }
  }
}

TEST(GeneratorTest, EventNumbersIncrease) {
  GeneratorConfig config;
  EventGenerator gen(config);
  EXPECT_EQ(gen.Generate().event_number, 1u);
  EXPECT_EQ(gen.Generate().event_number, 2u);
  EXPECT_EQ(gen.GenerateMany(3).back().event_number, 5u);
}

TEST(GeneratorTest, ZToMuMuContent) {
  GeneratorConfig config;
  config.process = Process::kZToLL;
  config.lepton_flavor = pdg::kMuon;
  config.seed = 5;
  EventGenerator gen(config);
  Histo1D mass("/mll", 60, 60.0, 120.0);
  for (int i = 0; i < 2000; ++i) {
    GenEvent event = gen.Generate();
    const GenParticle* mu_minus = nullptr;
    const GenParticle* mu_plus = nullptr;
    for (const GenParticle& p : event.particles) {
      if (p.pdg_id == pdg::kMuon && p.IsFinalState()) mu_minus = &p;
      if (p.pdg_id == -pdg::kMuon && p.IsFinalState()) mu_plus = &p;
    }
    ASSERT_NE(mu_minus, nullptr);
    ASSERT_NE(mu_plus, nullptr);
    mass.Fill(InvariantMass(mu_minus->momentum, mu_plus->momentum));
  }
  // Peak at the Z pole with the Breit-Wigner width.
  EXPECT_NEAR(mass.Mean(), 91.2, 1.0);
  EXPECT_GT(mass.Integral(), 1500.0);  // most events inside the window
}

TEST(GeneratorTest, WProductionChargeAsymmetry) {
  GeneratorConfig config;
  config.process = Process::kWToLNu;
  config.seed = 6;
  EventGenerator gen(config);
  int plus = 0;
  int minus = 0;
  for (int i = 0; i < 5000; ++i) {
    GenEvent event = gen.Generate();
    for (const GenParticle& p : event.particles) {
      if (p.pdg_id == pdg::kWPlus) ++plus;
      if (p.pdg_id == -pdg::kWPlus) ++minus;
    }
  }
  EXPECT_GT(plus, minus);
  EXPECT_NEAR(static_cast<double>(plus) / minus, 1.35, 0.15);
}

TEST(GeneratorTest, WEventHasLeptonAndNeutrino) {
  GeneratorConfig config;
  config.process = Process::kWToLNu;
  config.lepton_flavor = pdg::kElectron;
  EventGenerator gen(config);
  GenEvent event = gen.Generate();
  int leptons = 0;
  int neutrinos = 0;
  for (const GenParticle& p : event.FinalState()) {
    if (std::abs(p.pdg_id) == pdg::kElectron) ++leptons;
    if (std::abs(p.pdg_id) == pdg::kNuE) ++neutrinos;
  }
  EXPECT_EQ(leptons, 1);
  EXPECT_EQ(neutrinos, 1);
}

TEST(GeneratorTest, HiggsHasTwoPhotonsAtPole) {
  GeneratorConfig config;
  config.process = Process::kHiggsToGammaGamma;
  config.seed = 7;
  EventGenerator gen(config);
  for (int i = 0; i < 50; ++i) {
    GenEvent event = gen.Generate();
    std::vector<const GenParticle*> photons;
    for (const GenParticle& p : event.particles) {
      if (p.pdg_id == pdg::kPhoton && p.IsFinalState() && p.mother >= 0 &&
          event.particles[static_cast<size_t>(p.mother)].pdg_id ==
              pdg::kHiggs) {
        photons.push_back(&p);
      }
    }
    ASSERT_EQ(photons.size(), 2u);
    EXPECT_NEAR(InvariantMass(photons[0]->momentum, photons[1]->momentum),
                125.25, 0.5);
  }
}

TEST(GeneratorTest, DijetIsBackToBackInPhi) {
  GeneratorConfig config;
  config.process = Process::kQcdDijet;
  config.seed = 8;
  config.tune_activity = 0.0;  // hard process only
  EventGenerator gen(config);
  GenEvent event = gen.Generate();
  std::vector<const GenParticle*> partons;
  for (const GenParticle& p : event.particles) {
    if (p.status == 2) partons.push_back(&p);
  }
  ASSERT_EQ(partons.size(), 2u);
  EXPECT_NEAR(DeltaPhi(partons[0]->momentum, partons[1]->momentum),
              3.14159265358979, 1e-9);
  EXPECT_GE(partons[0]->momentum.Pt(), 20.0);
}

TEST(GeneratorTest, DMesonDaughtersShareDisplacedVertex) {
  GeneratorConfig config;
  config.process = Process::kDMeson;
  config.seed = 9;
  EventGenerator gen(config);
  double mean_displacement = 0.0;
  int count = 0;
  for (int i = 0; i < 500; ++i) {
    GenEvent event = gen.Generate();
    const GenParticle* kaon = nullptr;
    const GenParticle* pion = nullptr;
    for (const GenParticle& p : event.particles) {
      if (p.pdg_id == pdg::kKMinus && p.vertex_mm > 0.0) kaon = &p;
      if (p.pdg_id == pdg::kPiPlus && p.vertex_mm > 0.0) pion = &p;
    }
    ASSERT_NE(kaon, nullptr);
    ASSERT_NE(pion, nullptr);
    EXPECT_DOUBLE_EQ(kaon->vertex_mm, pion->vertex_mm);
    // K pi mass reconstructs the D0.
    EXPECT_NEAR(InvariantMass(kaon->momentum, pion->momentum), 1.86484, 1e-5);
    mean_displacement += kaon->vertex_mm;
    ++count;
  }
  // Mean lab decay length = c*tau * <p>/m ; with <p> ~ 6-7 GeV this is
  // several tenths of a millimetre.
  EXPECT_GT(mean_displacement / count, 0.1);
  EXPECT_LT(mean_displacement / count, 2.0);
}

TEST(GeneratorTest, ZPrimeMassConfigurable) {
  GeneratorConfig config;
  config.process = Process::kZPrimeToLL;
  config.zprime_mass = 750.0;
  config.zprime_width = 20.0;
  config.seed = 10;
  EventGenerator gen(config);
  Histo1D mass("/m", 100, 500.0, 1000.0);
  for (int i = 0; i < 500; ++i) {
    GenEvent event = gen.Generate();
    std::vector<const GenParticle*> leptons;
    for (const GenParticle& p : event.particles) {
      if (std::abs(p.pdg_id) == pdg::kMuon && p.IsFinalState() &&
          p.mother >= 0) {
        leptons.push_back(&p);
      }
    }
    ASSERT_EQ(leptons.size(), 2u);
    mass.Fill(InvariantMass(leptons[0]->momentum, leptons[1]->momentum));
  }
  EXPECT_NEAR(mass.Mean(), 750.0, 10.0);
}

TEST(GeneratorTest, PileupIncreasesMultiplicity) {
  GeneratorConfig no_pu;
  no_pu.process = Process::kZToLL;
  no_pu.seed = 11;
  GeneratorConfig with_pu = no_pu;
  with_pu.pileup_mean = 20.0;
  EventGenerator g0(no_pu);
  EventGenerator g20(with_pu);
  size_t n0 = 0;
  size_t n20 = 0;
  for (int i = 0; i < 50; ++i) {
    n0 += g0.Generate().particles.size();
    n20 += g20.Generate().particles.size();
  }
  EXPECT_GT(n20, 3 * n0);
}

TEST(GeneratorTest, TuneActivityScalesSoftMultiplicity) {
  GeneratorConfig low;
  low.process = Process::kMinimumBias;
  low.seed = 12;
  low.tune_activity = 0.5;
  GeneratorConfig high = low;
  high.tune_activity = 2.0;
  EventGenerator gl(low);
  EventGenerator gh(high);
  size_t nl = 0;
  size_t nh = 0;
  for (int i = 0; i < 200; ++i) {
    nl += gl.Generate().particles.size();
    nh += gh.Generate().particles.size();
  }
  EXPECT_GT(nh, 2 * nl);
}

}  // namespace
}  // namespace daspos
