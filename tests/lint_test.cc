// Tests for the preservation linter: the diagnostics framework, each
// domain check (workflow graphs, provenance chains, LHADA descriptions,
// archives, conditions), artifact detection in LintPath, and the
// Workflow::Execute pre-flight gate. Every check code has a seeded-defect
// fixture that triggers exactly it, plus one clean artifact per family.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "archive/archive.h"
#include "archive/object_store.h"
#include "conditions/store.h"
#include "lint/checks.h"
#include "lint/diagnostics.h"
#include "lint/linter.h"
#include "support/io.h"
#include "support/strings.h"
#include "workflow/engine.h"
#include "workflow/provenance.h"

namespace daspos {
namespace lint {
namespace {

std::vector<std::string> CodesOf(const LintReport& report) {
  return report.Codes();
}

bool HasCode(const LintReport& report, std::string_view code) {
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.code == code) return true;
  }
  return false;
}

const Diagnostic* FindDiagnostic(const LintReport& report,
                                 std::string_view code) {
  for (const Diagnostic& diagnostic : report.diagnostics()) {
    if (diagnostic.code == code) return &diagnostic;
  }
  return nullptr;
}

// ------------------------------------------------------------ diagnostics

TEST(DiagnosticsTest, RegistryCoversAllFamilies) {
  const std::vector<CheckInfo>& checks = AllChecks();
  ASSERT_GE(checks.size(), 10u);
  std::set<char> families;
  std::set<std::string_view> codes;
  for (const CheckInfo& check : checks) {
    EXPECT_TRUE(codes.insert(check.code).second)
        << "duplicate code " << check.code;
    EXPECT_FALSE(check.summary.empty()) << check.code;
    families.insert(check.code[0]);
  }
  // Workflow, LHADA, archive, conditions, general.
  EXPECT_EQ(families, (std::set<char>{'W', 'L', 'A', 'C', 'G'}));
}

TEST(DiagnosticsTest, FindCheckLooksUpCodes) {
  const CheckInfo* info = FindCheck("W001");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->default_severity, Severity::kError);
  EXPECT_EQ(FindCheck("Z999"), nullptr);
}

TEST(DiagnosticsTest, AddFromRegistryPicksDefaultSeverity) {
  LintReport report;
  report.Add("C006", "conds", "calib", "coverage ends");
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kInfo);
  report.Add("A002", "store", "abc", "digest mismatch");
  EXPECT_TRUE(report.HasErrors());
  EXPECT_EQ(report.CountAtLeast(Severity::kInfo), 2u);
  EXPECT_EQ(report.CountAtLeast(Severity::kError), 1u);
}

TEST(DiagnosticsTest, ParseSeverityRoundTrips) {
  Severity severity = Severity::kInfo;
  EXPECT_TRUE(ParseSeverity("error", &severity));
  EXPECT_EQ(severity, Severity::kError);
  EXPECT_TRUE(ParseSeverity("warning", &severity));
  EXPECT_EQ(severity, Severity::kWarning);
  EXPECT_TRUE(ParseSeverity("info", &severity));
  EXPECT_EQ(severity, Severity::kInfo);
  EXPECT_FALSE(ParseSeverity("fatal", &severity));
  EXPECT_EQ(SeverityName(Severity::kWarning), "warning");
}

TEST(DiagnosticsTest, RenderAndJsonCarryEveryField) {
  LintReport report;
  report.Add("L005", "a.lhada", "jets", "object never used", "remove it");
  std::string text = report.RenderText();
  EXPECT_NE(text.find("a.lhada"), std::string::npos);
  EXPECT_NE(text.find("L005"), std::string::npos);
  EXPECT_NE(text.find("jets"), std::string::npos);
  EXPECT_NE(text.find("remove it"), std::string::npos);

  Json json = report.ToJson();
  EXPECT_EQ(json.Get("counts").Get("warning").as_int(), 1);
  const Json& finding = json.Get("findings").at(0);
  EXPECT_EQ(finding.Get("code").as_string(), "L005");
  EXPECT_EQ(finding.Get("severity").as_string(), "warning");
  EXPECT_EQ(finding.Get("subject").as_string(), "jets");
}

TEST(DiagnosticsTest, MergeConcatenatesAndCodesDeduplicate) {
  LintReport a;
  a.Add("W002", "wf", "s1", "missing inputs: x");
  LintReport b;
  b.Add("W002", "wf", "s2", "missing inputs: y");
  b.Add("W004", "wf", "s3", "orphan");
  a.Merge(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(CodesOf(a), (std::vector<std::string>{"W002", "W004"}));
}

// --------------------------------------------------------- workflow graph

WorkflowGraphSpec::Step MakeStep(std::string name,
                                 std::vector<std::string> inputs,
                                 std::string output) {
  return {std::move(name), std::move(inputs), std::move(output)};
}

TEST(WorkflowGraphCheckTest, CleanChainHasNoFindings) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("gen", {}, "gen_out"));
  spec.steps.push_back(MakeStep("sim", {"gen_out"}, "raw"));
  spec.steps.push_back(MakeStep("reco", {"raw"}, "reco_out"));
  EXPECT_TRUE(CheckWorkflowGraph(spec).empty());
}

TEST(WorkflowGraphCheckTest, W001DependencyCycle) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("a", {"y"}, "x"));
  spec.steps.push_back(MakeStep("b", {"x"}, "y"));
  LintReport report = CheckWorkflowGraph(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W001"}));
  const Diagnostic* finding = FindDiagnostic(report, "W001");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, Severity::kError);
  EXPECT_NE(finding->message.find("dependency cycle"), std::string::npos);
}

TEST(WorkflowGraphCheckTest, W002MissingInput) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("tagger", {"ghost"}, "tags"));
  LintReport report = CheckWorkflowGraph(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W002"}));
  const Diagnostic* finding = FindDiagnostic(report, "W002");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->subject, "tagger");
  EXPECT_EQ(finding->message, "missing inputs: ghost");
}

TEST(WorkflowGraphCheckTest, ExternalInputSilencesW002) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("tagger", {"ghost"}, "tags"));
  spec.external_inputs.insert("ghost");
  EXPECT_TRUE(CheckWorkflowGraph(spec).empty());
}

TEST(WorkflowGraphCheckTest, W003TransitivelyBlockedStep) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("blocked", {"ghost"}, "x"));
  spec.steps.push_back(MakeStep("downstream", {"x"}, "y"));
  LintReport report = CheckWorkflowGraph(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W002", "W003"}));
  const Diagnostic* finding = FindDiagnostic(report, "W003");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->subject, "downstream");
  EXPECT_EQ(finding->message, "missing inputs: x");
}

TEST(WorkflowGraphCheckTest, W004OrphanStep) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("gen", {}, "gen_out"));
  spec.steps.push_back(MakeStep("sim", {"gen_out"}, "raw"));
  spec.steps.push_back(MakeStep("island", {}, "nowhere"));
  LintReport report = CheckWorkflowGraph(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W004"}));
  EXPECT_EQ(report.diagnostics()[0].subject, "island");
}

TEST(WorkflowGraphCheckTest, SingleStepIsNotAnOrphan) {
  WorkflowGraphSpec spec;
  spec.steps.push_back(MakeStep("solo", {}, "out"));
  EXPECT_TRUE(CheckWorkflowGraph(spec).empty());
}

// ------------------------------------------------------------- provenance

ProvenanceSpec::Record MakeRecord(std::string dataset,
                                  std::vector<std::string> parents) {
  ProvenanceSpec::Record record;
  record.dataset = std::move(dataset);
  record.parents = std::move(parents);
  record.config_hash = std::string(64, 'a');
  return record;
}

TEST(ProvenanceCheckTest, CleanChainHasNoFindings) {
  ProvenanceSpec spec;
  spec.records.push_back(MakeRecord("gen", {}));
  spec.records.push_back(MakeRecord("raw", {"gen"}));
  EXPECT_TRUE(CheckProvenance(spec).empty());
}

TEST(ProvenanceCheckTest, W101GapNamesEveryReferrer) {
  ProvenanceSpec spec;
  spec.records.push_back(MakeRecord("reco", {"raw"}));
  spec.records.push_back(MakeRecord("aod", {"raw"}));
  LintReport report = CheckProvenance(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W101"}));
  const Diagnostic* finding = FindDiagnostic(report, "W101");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->subject, "raw");
  EXPECT_NE(finding->message.find("reco, aod"), std::string::npos);
}

TEST(ProvenanceCheckTest, W102ParentageCycle) {
  ProvenanceSpec spec;
  spec.records.push_back(MakeRecord("a", {"b"}));
  spec.records.push_back(MakeRecord("b", {"a"}));
  LintReport report = CheckProvenance(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W102"}));
  EXPECT_EQ(report.size(), 2u);  // both datasets are their own ancestor
}

TEST(ProvenanceCheckTest, W103BadConfigHash) {
  ProvenanceSpec spec;
  spec.records.push_back(MakeRecord("gen", {}));
  spec.records.back().config_hash = "not-a-hash";
  LintReport report = CheckProvenance(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W103"}));
}

TEST(ProvenanceCheckTest, FromJsonReadsStoreSerialization) {
  ProvenanceStore store;
  ProvenanceRecord record;
  record.dataset = "gen";
  record.producer = "generator";
  record.config_hash = std::string(64, '0');
  ASSERT_TRUE(store.Add(std::move(record)).ok());
  auto json = Json::Parse(store.Serialize());
  ASSERT_TRUE(json.ok()) << json.status();
  auto spec = ProvenanceSpec::FromJson(*json);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->records.size(), 1u);
  EXPECT_EQ(spec->records[0].dataset, "gen");
  EXPECT_TRUE(CheckProvenance(*spec).empty());
}

TEST(ProvenanceCheckTest, FromJsonRejectsNonArray) {
  auto json = Json::Parse("{}");
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(ProvenanceSpec::FromJson(*json).ok());
}

// ------------------------------------------------------------------ LHADA

constexpr char kCleanLhada[] = R"(
analysis dimuon
object muons
  take muon
  select pt > 25
cut preselection
  select count(muons) >= 2
cut mass_window
  require preselection
  select mass(muons[0], muons[1]) > 60
  hist mll mass(muons[0],muons[1]) 40 0 200
)";

TEST(LhadaCheckTest, CleanDescriptionHasNoFindings) {
  LintReport report = CheckLhada(kCleanLhada);
  EXPECT_TRUE(report.empty()) << report.RenderText();
}

TEST(LhadaCheckTest, L000ParseFailure) {
  LintReport report = CheckLhada("object\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L000"}));
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);
}

TEST(LhadaCheckTest, L001UndefinedCollectionInCondition) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "cut sel\n"
      "  select count(ghosts) >= 1\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L001"}));
  EXPECT_EQ(report.diagnostics()[0].subject, "sel");
}

TEST(LhadaCheckTest, L002UndefinedRequire) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n"
      "cut sel\n"
      "  require phantom\n"
      "  select count(muons) >= 1\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L002"}));
}

TEST(LhadaCheckTest, L003ForwardRequire) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n"
      "cut first\n"
      "  require second\n"
      "  select count(muons) >= 1\n"
      "cut second\n"
      "  select count(muons) >= 2\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L003"}));
}

TEST(LhadaCheckTest, L004DuplicateName) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n"
      "object muons\n  take muon\n"
      "cut sel\n"
      "  select count(muons) >= 1\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L004"}));
}

TEST(LhadaCheckTest, L005UnusedObject) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n"
      "object jets\n  take jet\n"
      "cut sel\n"
      "  select count(muons) >= 1\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L005"}));
  EXPECT_EQ(report.diagnostics()[0].subject, "jets");
}

TEST(LhadaCheckTest, L006UndefinedCollectionInHist) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n"
      "cut sel\n"
      "  select count(muons) >= 1\n"
      "  hist lead_pt pt(ghosts[0]) 10 0 100\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L006"}));
  EXPECT_EQ(report.diagnostics()[0].subject, "sel/lead_pt");
}

TEST(LhadaCheckTest, L007VacuousCut) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "cut passthrough\n"
      "  hist met met 10 0 100\n");
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L007"}));
}

TEST(LhadaCheckTest, L008NoCuts) {
  LintReport report = CheckLhada(
      "analysis a\n"
      "object muons\n  take muon\n");
  // The unused object is also reported; the analysis-level finding is L008.
  EXPECT_TRUE(HasCode(report, "L008"));
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L005", "L008"}));
}

// ---------------------------------------------------------------- archive

SubmissionPackage MakeSubmission(const std::string& title) {
  SubmissionPackage submission;
  submission.title = title;
  submission.creator = "lint-test";
  submission.files.push_back(
      {"data.txt", "text/plain", "payload bytes for " + title});
  return submission;
}

TEST(ArchiveCheckTest, CleanArchiveHasNoFindings) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(archive.Deposit(MakeSubmission("clean package")).ok());
  EXPECT_TRUE(CheckArchive(store).empty());
}

// Builds a manifest by hand so each defect can be seeded precisely.
Json ManifestFor(const std::string& title, const std::string& object_id,
                 uint64_t bytes) {
  Json manifest = Json::Object();
  manifest["aip_version"] = 1;
  manifest["title"] = title;
  Json files = Json::Array();
  Json entry = Json::Object();
  entry["name"] = "data.txt";
  entry["sha256"] = object_id;
  entry["bytes"] = bytes;
  files.push_back(std::move(entry));
  manifest["files"] = std::move(files);
  return manifest;
}

TEST(ArchiveCheckTest, A001DanglingReference) {
  MemoryObjectStore store;
  Json manifest = ManifestFor("pkg", std::string(64, '0'), 4);
  ASSERT_TRUE(store.Put(manifest.Dump()).ok());
  LintReport report = CheckArchive(store);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"A001"}));
  EXPECT_EQ(report.diagnostics()[0].subject, std::string(64, '0'));
}

TEST(ArchiveCheckTest, A002DigestMismatch) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(archive.Deposit(MakeSubmission("pkg")).ok());
  // Corrupt the data blob (not the manifest, whose JSON must stay parsable).
  std::string data_id;
  for (const std::string& id : store.Ids()) {
    auto bytes = store.Get(id);
    if (bytes.ok() && !Json::Parse(*bytes).ok()) data_id = id;
  }
  ASSERT_FALSE(data_id.empty());
  ASSERT_TRUE(store.CorruptForTesting(data_id, 0).ok());
  LintReport report = CheckArchive(store);
  EXPECT_TRUE(HasCode(report, "A002"));
}

TEST(ArchiveCheckTest, A003UnreferencedBlob) {
  MemoryObjectStore store;
  Archive archive(&store);
  ASSERT_TRUE(archive.Deposit(MakeSubmission("pkg")).ok());
  ASSERT_TRUE(store.Put("stray blob nobody claims").ok());
  LintReport report = CheckArchive(store);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"A003"}));
}

TEST(ArchiveCheckTest, A004SizeDisagreement) {
  MemoryObjectStore store;
  auto data_id = store.Put("four");
  ASSERT_TRUE(data_id.ok());
  Json manifest = ManifestFor("pkg", *data_id, 4096);  // store holds 4
  ASSERT_TRUE(store.Put(manifest.Dump()).ok());
  LintReport report = CheckArchive(store);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"A004"}));
}

TEST(ArchiveCheckTest, A005UntitledManifest) {
  MemoryObjectStore store;
  auto data_id = store.Put("four");
  ASSERT_TRUE(data_id.ok());
  Json manifest = ManifestFor("", *data_id, 4);
  ASSERT_TRUE(store.Put(manifest.Dump()).ok());
  LintReport report = CheckArchive(store);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"A005"}));
}

TEST(ArchiveCheckTest, A006QuarantinedBlob) {
  // Seed the defect for real: deposit a blob on disk, rot its backing file,
  // and read it once so the store quarantines it.
  std::string root = (std::filesystem::temp_directory_path() /
                      ("daspos_lint_a006_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove_all(root);
  {
    FileObjectStore store(root);
    auto id = store.Put("healthy bytes");
    ASSERT_TRUE(id.ok());
    std::string path = root + "/" + id->substr(0, 2) + "/" + id->substr(2);
    ASSERT_TRUE(WriteStringToFile(path, "rotten").ok());
    ASSERT_TRUE(store.Get(*id).status().IsCorruption());

    LintReport report = CheckArchive(store);
    EXPECT_TRUE(HasCode(report, "A006"));
    const Diagnostic* diagnostic = FindDiagnostic(report, "A006");
    ASSERT_NE(diagnostic, nullptr);
    EXPECT_EQ(diagnostic->subject, *id);
    // The fix-hint tells the operator how to heal the store.
    EXPECT_NE(diagnostic->hint.find("re-Put"), std::string::npos);

    // Healing the store clears the finding's cause (the quarantined copy
    // remains as evidence, so A006 persists until it is deleted).
    ASSERT_TRUE(store.Put("healthy bytes").ok());
    EXPECT_TRUE(store.Verify(*id).ok());
  }
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------- run journal

TEST(JournalCheckTest, FromJsonLinesParsesRecordsAndStopsAtGarbage) {
  std::string text =
      "{\"step\": \"gen\", \"output\": \"gen_out\"}\n"
      "\n"
      "{\"step\": \"sim\", \"output\": \"raw\"}\n"
      "{\"step\": \"tr";  // crash-truncated tail
  JournalSpec spec = JournalSpec::FromJsonLines(text);
  ASSERT_EQ(spec.entries.size(), 2u);
  EXPECT_EQ(spec.entries[0].step, "gen");
  EXPECT_EQ(spec.entries[1].output, "raw");
}

TEST(JournalCheckTest, CleanJournalHasNoFindings) {
  WorkflowGraphSpec workflow;
  workflow.steps.push_back(MakeStep("gen", {}, "gen_out"));
  workflow.steps.push_back(MakeStep("sim", {"gen_out"}, "raw"));
  JournalSpec journal;
  journal.entries.push_back({"gen", "gen_out"});
  EXPECT_TRUE(CheckJournal(journal, workflow).empty());
}

TEST(JournalCheckTest, W104StaleCheckpoint) {
  WorkflowGraphSpec workflow;
  workflow.steps.push_back(MakeStep("gen", {}, "gen_out"));
  JournalSpec journal;
  journal.entries.push_back({"gen", "gen_out"});
  // "reco" was renamed or removed since this journal was written.
  journal.entries.push_back({"reco", "reco_out"});
  journal.entries.push_back({"reco", "reco_out"});  // duplicates dedupe
  LintReport report = CheckJournal(journal, workflow);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W104"}));
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].subject, "reco");
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kWarning);
}

// ------------------------------------------------------------- conditions

TEST(ConditionsCheckTest, CleanTagHasNoFindings) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 10}, RunRange::From(11)};
  EXPECT_TRUE(CheckConditions(spec).empty());
}

TEST(ConditionsCheckTest, C001Overlap) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 10}, {5, RunRange::kMaxRun}};
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C001"}));
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);
}

TEST(ConditionsCheckTest, C002Gap) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 10}, {20, RunRange::kMaxRun}};
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C002"}));
  EXPECT_NE(report.diagnostics()[0].message.find("[11,19]"),
            std::string::npos);
}

TEST(ConditionsCheckTest, C003InvertedRange) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{10, 5}, {1, RunRange::kMaxRun}};
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C003"}));
}

TEST(ConditionsCheckTest, C004DanglingGlobalTagRole) {
  ConditionsSpec spec;
  spec.tags["calib"] = {RunRange::From(1)};
  GlobalTag tag;
  tag.name = "GT_2026";
  tag.roles["calibration"] = "calib";
  tag.roles["alignment"] = "alignment_v2";  // never registered
  spec.global_tags.push_back(tag);
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C004"}));
  EXPECT_EQ(report.diagnostics()[0].subject, "GT_2026");
}

TEST(ConditionsCheckTest, C005EmptyTag) {
  ConditionsSpec spec;
  spec.tags["calib"] = {};
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C005"}));
}

TEST(ConditionsCheckTest, C006ClosedCoverageIsInfo) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 100}};
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C006"}));
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kInfo);
  EXPECT_EQ(report.CountAtLeast(Severity::kWarning), 0u);
}

TEST(ConditionsCheckTest, JsonRoundTrip) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 10}, RunRange::From(11)};
  GlobalTag tag;
  tag.name = "GT";
  tag.roles["calibration"] = "calib";
  spec.global_tags.push_back(tag);

  auto restored = ConditionsSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->tags.count("calib"), 1u);
  const std::vector<RunRange>& intervals = restored->tags.at("calib");
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].first_run, 1u);
  EXPECT_EQ(intervals[0].last_run, 10u);
  EXPECT_EQ(intervals[1].last_run, RunRange::kMaxRun);
  ASSERT_EQ(restored->global_tags.size(), 1u);
  EXPECT_EQ(restored->global_tags[0].roles.at("calibration"), "calib");
}

TEST(ConditionsCheckTest, DumpConditionsReflectsLiveDb) {
  ConditionsDb db;
  ASSERT_TRUE(db.Append("calib", 1, "payload-a").ok());
  ASSERT_TRUE(db.Append("calib", 50, "payload-b").ok());
  GlobalTagRegistry registry;
  GlobalTag tag;
  tag.name = "GT";
  tag.roles["calibration"] = "calib";
  tag.roles["alignment"] = "missing_tag";
  ASSERT_TRUE(registry.Define(tag).ok());

  ConditionsSpec spec = DumpConditions(db, &registry);
  ASSERT_EQ(spec.tags.count("calib"), 1u);
  EXPECT_EQ(spec.tags.at("calib").size(), 2u);
  LintReport report = CheckConditions(spec);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C004"}));
}

// ---------------------------------------------- LintPath artifact routing

class LintPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("daspos_lint_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string WriteArtifact(const std::string& name,
                            const std::string& bytes) {
    std::string path = (root_ / name).string();
    EXPECT_TRUE(WriteStringToFile(path, bytes).ok());
    return path;
  }

  std::filesystem::path root_;
};

TEST_F(LintPathTest, RoutesLhadaText) {
  std::string path = WriteArtifact("unused.lhada",
                                   "analysis a\n"
                                   "object muons\n  take muon\n"
                                   "cut sel\n  select count(muons) >= 1\n"
                                   "object jets\n  take jet\n");
  LintReport report = LintPath(path);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"L005"}));
  EXPECT_EQ(report.diagnostics()[0].artifact, path);
}

TEST_F(LintPathTest, RoutesProvenanceArray) {
  std::string path = WriteArtifact(
      "chain.json",
      "[{\"dataset\": \"reco\", \"config_hash\": \"zzz\", "
      "\"parents\": [\"raw\"]}]");
  LintReport report = LintPath(path);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"W101", "W103"}));
}

TEST_F(LintPathTest, RoutesConditionsDump) {
  ConditionsSpec spec;
  spec.tags["calib"] = {{1, 10}, {20, RunRange::kMaxRun}};
  std::string path = WriteArtifact("conds.json", spec.ToJson().Dump(2));
  LintReport report = LintPath(path);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"C002"}));
}

TEST_F(LintPathTest, RoutesArchiveDirectory) {
  FileObjectStore store(root_.string());
  Archive archive(&store);
  ASSERT_TRUE(archive.Deposit(MakeSubmission("pkg")).ok());
  ASSERT_TRUE(store.Put("stray blob").ok());
  LintReport report = LintPath(root_.string());
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"A003"}));
}

TEST_F(LintPathTest, G001UnrecognizedJson) {
  std::string path = WriteArtifact("mystery.json", "{\"foo\": 1}");
  LintReport report = LintPath(path);
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"G001"}));
}

TEST_F(LintPathTest, G002UnreadableArtifact) {
  LintReport report = LintPath((root_ / "does_not_exist").string());
  EXPECT_EQ(CodesOf(report), (std::vector<std::string>{"G002"}));
}

// The acceptance bar for the subsystem: across the four artifact families,
// seeded defects surface at least ten distinct check codes.
TEST_F(LintPathTest, SeededDefectsCoverTenDistinctCodes) {
  LintReport combined;
  {
    WorkflowGraphSpec spec;
    spec.steps.push_back(MakeStep("a", {"y"}, "x"));
    spec.steps.push_back(MakeStep("b", {"x"}, "y"));
    spec.steps.push_back(MakeStep("c", {"ghost"}, "z"));
    combined.Merge(CheckWorkflowGraph(spec));
  }
  {
    ProvenanceSpec spec;
    spec.records.push_back(MakeRecord("reco", {"raw"}));
    spec.records.back().config_hash = "bad";
    combined.Merge(CheckProvenance(spec));
  }
  combined.Merge(CheckLhada("analysis a\n"
                            "object jets\n  take jet\n"
                            "cut sel\n  select count(ghosts) >= 1\n"
                            "cut empty\n"));
  {
    MemoryObjectStore store;
    Json manifest = ManifestFor("", std::string(64, '0'), 4);
    ASSERT_TRUE(store.Put(manifest.Dump()).ok());
    ASSERT_TRUE(store.Put("stray").ok());
    combined.Merge(CheckArchive(store));
  }
  {
    ConditionsSpec spec;
    spec.tags["overlapping"] = {{1, 10}, {5, 20}};
    spec.tags["empty"] = {};
    combined.Merge(CheckConditions(spec));
  }
  std::vector<std::string> codes = combined.Codes();
  EXPECT_GE(codes.size(), 10u) << "codes: " << Join(codes, ", ");
}

// -------------------------------------------------- Workflow::Execute gate

class NamedStep : public WorkflowStep {
 public:
  explicit NamedStep(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string version() const override { return "1"; }
  Json Config() const override { return Json::Object(); }
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext*) const override {
    std::string out = name_ + ":";
    for (std::string_view input : inputs) out += std::string(input);
    return out;
  }

 private:
  std::string name_;
};

TEST(ExecuteGateTest, GraphSpecMirrorsBindingsAndContext) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<NamedStep>("consume"),
                           {"external", "produced"}, "final")
                  .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<NamedStep>("produce"), {},
                           "produced")
                  .ok());
  WorkflowContext context;
  ASSERT_TRUE(context.PutDataset("external", "bytes").ok());

  WorkflowGraphSpec spec = workflow.GraphSpec(&context);
  ASSERT_EQ(spec.steps.size(), 2u);
  EXPECT_EQ(spec.steps[0].name, "consume");
  EXPECT_EQ(spec.steps[0].inputs,
            (std::vector<std::string>{"external", "produced"}));
  EXPECT_EQ(spec.external_inputs, (std::set<std::string>{"external"}));
  EXPECT_TRUE(CheckWorkflowGraph(spec).empty());
}

TEST(ExecuteGateTest, RejectsBrokenGraphWithNamedDiagnostics) {
  Workflow workflow;
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<NamedStep>("tagger"), {"ghost"},
                           "tags")
                  .ok());
  WorkflowContext context;
  auto report = workflow.Execute(&context);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("tagger"), std::string::npos);
  EXPECT_NE(report.status().message().find("missing inputs: ghost"),
            std::string::npos);
  EXPECT_NE(report.status().message().find("[W002]"), std::string::npos);
  // Nothing executed: the gate fires before any step runs.
  EXPECT_TRUE(context.DatasetNames().empty());
}

TEST(ExecuteGateTest, CleanGraphStillExecutes) {
  Workflow workflow;
  ASSERT_TRUE(
      workflow.AddStep(std::make_shared<NamedStep>("gen"), {}, "gen_out")
          .ok());
  ASSERT_TRUE(workflow
                  .AddStep(std::make_shared<NamedStep>("sim"), {"gen_out"},
                           "raw")
                  .ok());
  WorkflowContext context;
  auto report = workflow.Execute(&context);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->steps.size(), 2u);
}

}  // namespace
}  // namespace lint
}  // namespace daspos
